"""Per-rule snippet tests for the API0xx RPC conformance family.

Each snippet declares its own export universe (the pass stands down with
no exports) and calls against it. Union semantics: a call conforms when
*any* exported interface accepts it.
"""

import textwrap

from repro.analysis import lint_source


def findings_for(code, rule=None):
    found = lint_source(textwrap.dedent(code))
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def assert_clean(code, rule):
    assert findings_for(code, rule) == []


SERVICE = """
    class Echo:
        REMOTE_METHODS = ("ping", "shout")

        def __init__(self, endpoint):
            self.ref = endpoint.export(self, "echo", methods=self.REMOTE_METHODS)

        def ping(self, payload):
            return payload

        def shout(self, payload, times=1):
            return payload * times
"""


# ---------------------------------------------------------------------------
# API001 — unknown selectors


def test_api001_unknown_selector_flagged():
    found = findings_for(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "pong", 1)
    """, rule="API001")
    assert [f.line for f in found] == [15]
    assert "selector 'pong' is not exported" in found[0].message


def test_api001_exported_selector_is_clean():
    assert_clean(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "ping", 1)
    """, rule="API001")


def test_api001_union_semantics_across_interfaces():
    # "status" lives on a different interface than "ping"; both calls
    # conform because the universe is the union of all exports.
    assert_clean(SERVICE + """
    class Node:
        def __init__(self, endpoint):
            self.ref = endpoint.export(self, "node", methods=("status",))

        def status(self):
            return "up"

    def client(endpoint, echo_ref, node_ref):
        yield endpoint.call(echo_ref, "ping", 1)
        yield endpoint.call(node_ref, "status")
    """, rule="API001")


def test_api001_stands_down_with_no_exports():
    # A pure-client snippet has no interface universe to check against.
    assert_clean("""
        def client(endpoint, ref):
            yield endpoint.call(ref, "anything_at_all", 1, 2, 3)
    """, rule="API001")


def test_api001_open_base_disables_the_pass():
    # An unrestricted export of a class with an unresolvable base could
    # export inherited methods the pass cannot see: it stands down.
    assert_clean("""
        class Echo(RemoteService):
            def __init__(self, endpoint):
                self.ref = endpoint.export(self, "echo")

            def ping(self, payload):
                return payload

        def client(endpoint, ref):
            yield endpoint.call(ref, "inherited_method")
    """, rule="API001")


def test_api001_infra_kwargs_are_ignored():
    assert_clean(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "ping", 1, kind="echo", timeout=3.0,
                            trace_parent="abc")
    """, rule="API001")


def test_api001_pragma_suppresses():
    assert_clean(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "pong", 1)  # repro: allow[API001] - exported by a plugin
    """, rule="API001")


# ---------------------------------------------------------------------------
# API002 — arity mismatches


def test_api002_too_few_positional_args():
    found = findings_for(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "ping")
    """, rule="API002")
    assert [f.line for f in found] == [15]
    assert "passes 0 positional arg(s) to 'ping'" in found[0].message
    assert "take 1" in found[0].message


def test_api002_too_many_positional_args():
    found = findings_for(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "shout", 1, 2, 3)
    """, rule="API002")
    assert [f.line for f in found] == [15]
    assert "1..2" in found[0].message


def test_api002_defaults_widen_the_accepted_range():
    assert_clean(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "shout", "hey")
        yield endpoint.call(ref, "shout", "hey", 3)
        yield endpoint.call(ref, "shout", "hey", times=3)
    """, rule="API002")


def test_api002_unknown_kwarg_is_a_mismatch():
    found = findings_for(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "ping", 1, volume=11)
    """, rule="API002")
    assert [f.line for f in found] == [15]


def test_api002_unknown_selector_is_not_its_department():
    # API001 reports unknown selectors; API002 must not double-report.
    found = findings_for(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "pong", 1, 2, 3, 4)
    """, rule="API002")
    assert found == []


def test_api002_pragma_suppresses():
    assert_clean(SERVICE + """
    def client(endpoint, ref):
        yield endpoint.call(ref, "ping")  # repro: allow[API002] - server patches the signature
    """, rule="API002")


# ---------------------------------------------------------------------------
# API003 — phantom exports


def test_api003_phantom_method_in_export_tuple():
    found = findings_for("""
        class Echo:
            def __init__(self, endpoint):
                self.ref = endpoint.export(self, "echo",
                                           methods=("ping", "vanish"))

            def ping(self, payload):
                return payload
    """, rule="API003")
    assert [f.line for f in found] == [4]
    assert "names 'vanish' but class Echo does not define it" \
        in found[0].message


def test_api003_inherited_method_is_not_phantom():
    assert_clean("""
        class Base:
            def ping(self, payload):
                return payload

        class Echo(Base):
            def __init__(self, endpoint):
                self.ref = endpoint.export(self, "echo", methods=("ping",))
    """, rule="API003")


def test_api003_class_attr_selector_table_resolves():
    found = findings_for("""
        class Echo:
            REMOTE_METHODS = ("ping", "vanish")

            def __init__(self, endpoint):
                self.ref = endpoint.export(self, "echo",
                                           methods=self.REMOTE_METHODS)

            def ping(self, payload):
                return payload
    """, rule="API003")
    assert [f.line for f in found] == [6]


def test_api003_open_base_stands_down():
    assert_clean("""
        class Echo(RemoteService):
            def __init__(self, endpoint):
                self.ref = endpoint.export(self, "echo",
                                           methods=("inherited_method",))
    """, rule="API003")


def test_api003_inline_constructor_export_resolves():
    found = findings_for("""
        class Slot:
            def notify(self, event):
                return event

        def attach(endpoint):
            return endpoint.export(Slot(), "slot", methods=("nudge",))
    """, rule="API003")
    assert [f.line for f in found] == [7]


def test_api003_pragma_suppresses():
    # The pragma goes on the line the finding is reported at: the export
    # call's first line.
    assert_clean("""
        class Echo:
            def __init__(self, endpoint):
                self.ref = endpoint.export(  # repro: allow[API003] - mixed in at runtime
                    self, "echo", methods=("ping", "vanish"))

            def ping(self, payload):
                return payload
    """, rule="API003")
