"""Runtime race sanitizer: same-(time, priority) events with conflicting
shared-state accesses must be flagged; causal chains and commutative
updates must not."""

import pytest

from repro.observability.registry import MetricsRegistry
from repro.sim import Environment, SanitizerViolation
from repro.sorcer.context import ServiceContext


def test_same_time_conflicting_writers_raise():
    env = Environment(sanitize=True)
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")

    def writer(value):
        yield env.timeout(1.0)
        gauge.set(value)

    env.process(writer(1))
    env.process(writer(2))
    with pytest.raises(SanitizerViolation) as excinfo:
        env.run()
    message = str(excinfo.value)
    assert "gauge 'depth'" in message
    assert "t=1" in message


def test_write_read_race_on_service_context():
    env = Environment(sanitize=True)
    ctx = ServiceContext("shared")

    def writer():
        yield env.timeout(2.0)
        ctx.put_value("in/value", 41)

    def reader():
        yield env.timeout(2.0)
        ctx.get_value("in/value", None)

    env.process(writer())
    env.process(reader())
    with pytest.raises(SanitizerViolation) as excinfo:
        env.run()
    assert "in/value" in str(excinfo.value)


def test_distinct_paths_do_not_conflict():
    env = Environment(sanitize=True)
    ctx = ServiceContext("shared")

    def writer(path):
        yield env.timeout(1.0)
        ctx.put_value(path, 1)

    env.process(writer("in/a"))
    env.process(writer("in/b"))
    env.run()  # no violation


def test_commutative_increments_do_not_conflict():
    env = Environment(sanitize=True)
    registry = MetricsRegistry()
    counter = registry.counter("hits")

    def bump():
        yield env.timeout(1.0)
        counter.inc()

    env.process(bump())
    env.process(bump())
    env.run()
    assert counter.value == 2.0


def test_causal_chain_at_same_time_is_not_a_race():
    env = Environment(sanitize=True)
    ctx = ServiceContext("shared")

    def parent():
        yield env.timeout(1.0)
        ctx.put_value("in/value", 1)
        # Triggered *during* this event: same (time, priority) tie group,
        # but causally ordered after us — the tie-breaker cannot reorder
        # it before, so the conflicting write is not a race.
        follow_up = env.event()
        follow_up.callbacks.append(lambda _ev: ctx.put_value("in/value", 2))
        follow_up.succeed()

    env.process(parent())
    env.run()  # no violation
    assert ctx.get_value("in/value") == 2


def test_sanitizer_off_by_default():
    env = Environment()
    assert env.sanitizer is None
    ctx = ServiceContext("shared")

    def writer(value):
        yield env.timeout(1.0)
        ctx.put_value("in/value", value)

    env.process(writer(1))
    env.process(writer(2))
    env.run()  # conflicting, but nobody is watching


def test_record_mode_collects_instead_of_raising():
    env = Environment(sanitize="record")
    ctx = ServiceContext("shared")

    def writer(value):
        yield env.timeout(1.0)
        ctx.put_value("in/value", value)

    env.process(writer(1))
    env.process(writer(2))
    env.run()
    assert len(env.sanitizer.violations) == 1
    violation = env.sanitizer.violations[0]
    assert violation.time == 1.0
    first_seq, first_name, first_kinds = violation.first
    second_seq, second_name, second_kinds = violation.second
    assert first_seq != second_seq
    assert "w" in first_kinds and "w" in second_kinds
