"""`repro lint` output contract: --json / --sarif goldens, --rule family
filters, and the baseline workflow.

The goldens are byte-exact: machine output feeds CI artifact uploads and
diff-based tooling, so a formatting change must show up as a test diff.
Regenerate with::

    cd tests/analysis/fixtures
    PYTHONPATH=../../../src python -m repro lint --json  seeded_bad.py \
        > ../../golden/lint_seeded.json
    PYTHONPATH=../../../src python -m repro lint --sarif seeded_bad.py \
        > ../../golden/lint_seeded.sarif
"""

import io
import json
import pathlib

from repro.cli import main

HERE = pathlib.Path(__file__).parent
FIXTURES = HERE / "fixtures"
GOLDEN = HERE.parent / "golden"


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def lint_seeded(monkeypatch, *flags):
    # The fixture is linted by relative path so the machine output (which
    # embeds the path) is location-independent and can be golden-tested.
    monkeypatch.chdir(FIXTURES)
    return run_cli("lint", *flags, "seeded_bad.py")


# ---------------------------------------------------------------------------
# Golden machine output


def test_json_output_matches_golden(monkeypatch):
    code, output = lint_seeded(monkeypatch, "--json")
    assert code == 1
    assert output == (GOLDEN / "lint_seeded.json").read_text()


def test_sarif_output_matches_golden(monkeypatch):
    code, output = lint_seeded(monkeypatch, "--sarif")
    assert code == 1
    assert output == (GOLDEN / "lint_seeded.sarif").read_text()


def test_machine_output_is_byte_stable(monkeypatch):
    assert lint_seeded(monkeypatch, "--json") \
        == lint_seeded(monkeypatch, "--json")
    assert lint_seeded(monkeypatch, "--sarif") \
        == lint_seeded(monkeypatch, "--sarif")


def test_json_payload_shape(monkeypatch):
    _, output = lint_seeded(monkeypatch, "--json")
    payload = json.loads(output)
    assert payload["summary"]["total"] == 3
    assert payload["summary"]["by_rule"] == {
        "CTX002": 1, "CTX003": 1, "RES001": 1}
    assert [f["rule"] for f in payload["findings"]] \
        == ["RES001", "CTX002", "CTX003"]


def test_sarif_declares_every_registered_rule(monkeypatch):
    from repro.analysis import RULES
    _, output = lint_seeded(monkeypatch, "--sarif")
    payload = json.loads(output)
    run = payload["runs"][0]
    declared = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert declared == sorted(RULES)
    rule_ids = {result["ruleId"] for result in run["results"]}
    assert rule_ids == {"RES001", "CTX002", "CTX003"}


def test_json_and_sarif_are_mutually_exclusive(monkeypatch):
    code, output = lint_seeded(monkeypatch, "--json", "--sarif")
    assert code == 2
    assert "mutually exclusive" in output


# ---------------------------------------------------------------------------
# --rule: exact ids and family prefixes


def test_rule_family_prefix_selects_the_family(monkeypatch):
    code, output = lint_seeded(monkeypatch, "--rule", "RES")
    assert code == 1
    assert "RES001" in output
    assert "CTX" not in output


def test_rule_families_combine(monkeypatch):
    code, output = lint_seeded(monkeypatch, "--rule", "RES", "--rule", "CTX")
    assert code == 1
    assert "RES001" in output and "CTX002" in output and "CTX003" in output


def test_rule_exact_id_still_works(monkeypatch):
    code, output = lint_seeded(monkeypatch, "--rule", "CTX003")
    assert code == 1
    assert "CTX003" in output and "CTX002" not in output


def test_rule_unknown_family_is_an_error(monkeypatch):
    code, output = lint_seeded(monkeypatch, "--rule", "NOPE")
    assert code == 2
    assert "unknown rule(s): NOPE" in output


def test_list_rules_names_all_families():
    code, output = run_cli("lint", "--list-rules", str(FIXTURES))
    assert code == 0
    for family in ("DET001", "SIM001", "RES001", "CTX001", "API001"):
        assert family in output


# ---------------------------------------------------------------------------
# Baselines


def test_write_baseline_then_lint_against_it(monkeypatch, tmp_path):
    baseline = tmp_path / "baseline.txt"
    monkeypatch.chdir(FIXTURES)
    code, output = run_cli("lint", "--write-baseline", str(baseline),
                           "seeded_bad.py")
    assert code == 0
    assert "wrote 3 finding(s)" in output
    code, output = run_cli("lint", "--baseline", str(baseline),
                           "seeded_bad.py")
    assert code == 0
    assert "repro lint: clean" in output


def test_baseline_is_line_number_insensitive(monkeypatch, tmp_path):
    # Triples carry no line numbers, so unrelated edits above a baselined
    # finding don't resurrect it. A shifted copy of the fixture stays
    # clean under the original baseline. (Scoped to the CTX family: the
    # RES leak messages embed the leaking line, which is the point — a
    # moved leak is a different finding worth re-reviewing.)
    baseline = tmp_path / "baseline.txt"
    monkeypatch.chdir(FIXTURES)
    code, _ = run_cli("lint", "--rule", "CTX", "--write-baseline",
                      str(baseline), "seeded_bad.py")
    assert code == 0
    shifted = tmp_path / "seeded_bad.py"
    shifted.write_text("# an unrelated leading comment\n"
                       + (FIXTURES / "seeded_bad.py").read_text())
    monkeypatch.chdir(tmp_path)
    code, output = run_cli("lint", "--rule", "CTX", "--baseline",
                           str(baseline), "seeded_bad.py")
    assert code == 0, output


def test_unreadable_baseline_is_an_error(monkeypatch, tmp_path):
    code, output = lint_seeded(
        monkeypatch, "--baseline", str(tmp_path / "missing.txt"))
    assert code == 2
    assert "cannot read baseline" in output


def test_committed_repo_baseline_is_empty():
    # The repo's own baseline must stay empty: new findings get fixed, not
    # baselined (the file exists to make the workflow available, and so
    # CI can point at it unconditionally).
    from repro.analysis import load_baseline
    repo_baseline = HERE.parent.parent / "lint-baseline.txt"
    assert load_baseline(repo_baseline.read_text()) == set()
