"""Per-rule snippet tests for the CTX0xx ServiceContext path contracts.

The CTX rules are whole-program passes; ``lint_source`` runs them over a
one-module program, so each snippet is its own closed world of readers
and writers.
"""

import textwrap

from repro.analysis import lint_source


def findings_for(code, rule=None):
    found = lint_source(textwrap.dedent(code))
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def assert_clean(code, rule):
    assert findings_for(code, rule) == []


# ---------------------------------------------------------------------------
# CTX001 — orphan reads


def test_ctx001_read_with_no_writer():
    found = findings_for("""
        def probe(ctx):
            return ctx.get_value("health/score")
    """, rule="CTX001")
    assert [f.line for f in found] == [3]
    assert "read but never written" in found[0].message
    assert "'health/score'" in found[0].message


def test_ctx001_matched_pair_is_clean():
    assert_clean("""
        def fill(ctx, value):
            ctx.put_value("health/score", value)

        def probe(ctx):
            return ctx.get_value("health/score")
    """, rule="CTX001")


def test_ctx001_prefix_write_covers_exact_read():
    # f"arg/{key}" writes the whole arg/ subtree; reading "arg/name" is
    # covered.
    assert_clean("""
        def fill(ctx, key, value):
            ctx.put_value(f"arg/{key}", value)

        def probe(ctx):
            return ctx.get_value("arg/name")
    """, rule="CTX001")


def test_ctx001_has_path_counts_as_a_read():
    found = findings_for("""
        def probe(ctx):
            return ctx.has_path("overload/rejection")
    """, rule="CTX001")
    assert [f.line for f in found] == [3]


def test_ctx001_slashless_literal_is_not_a_path():
    assert_clean("""
        def probe(ctx):
            return ctx.get_value("name")
    """, rule="CTX001")


def test_ctx001_pragma_suppresses():
    assert_clean("""
        def probe(ctx):
            return ctx.get_value("health/score")  # repro: allow[CTX001] - host writes
    """, rule="CTX001")


# ---------------------------------------------------------------------------
# CTX002 — dead writes


def test_ctx002_write_with_no_reader():
    found = findings_for("""
        def fill(ctx, value):
            ctx.put_value("health/score", value)
    """, rule="CTX002")
    assert [f.line for f in found] == [3]
    assert "written but never read" in found[0].message


def test_ctx002_underscore_data_store_and_load_pair_up():
    assert_clean("""
        def fill(ctx, value):
            ctx._data["trace/parent"] = value

        def probe(ctx):
            return ctx._data.get("trace/parent")
    """, rule="CTX002")


def test_ctx002_prefix_write_is_never_dead():
    # A subtree write can't be checked per-path; the pass skips it rather
    # than guess.
    assert_clean("""
        def fill(ctx, key, value):
            ctx.put_value(f"arg/{key}", value)
    """, rule="CTX002")


def test_ctx002_pragma_suppresses():
    assert_clean("""
        def fill(ctx, value):
            ctx.put_value("health/score", value)  # repro: allow[CTX002] - dashboard reads
    """, rule="CTX002")


# ---------------------------------------------------------------------------
# CTX003 — edit-distance-1 typos


def test_ctx003_near_miss_read_flagged_as_typo():
    found = findings_for("""
        def fill(ctx, value):
            ctx.put_value("trace/parent", value)

        def probe(ctx):
            return ctx.get_value("trace/parrent")
    """, rule="CTX003")
    assert [f.line for f in found] == [6]
    assert "'trace/parrent'" in found[0].message
    assert "'trace/parent'" in found[0].message
    assert "likely a typo" in found[0].message


def test_ctx003_takes_precedence_over_ctx001():
    # The orphan-read rule defers distance-1 cases to the typo rule so the
    # same line is not reported twice.
    found = findings_for("""
        def fill(ctx, value):
            ctx.put_value("trace/parent", value)

        def probe(ctx):
            return ctx.get_value("trace/parrent")
    """, rule="CTX001")
    assert found == []


def test_ctx003_distance_two_is_not_a_typo():
    assert_clean("""
        def fill(ctx, value):
            ctx.put_value("trace/parent", value)

        def probe(ctx):
            return ctx.get_value("trace/pairrent")
    """, rule="CTX003")


def test_ctx003_pragma_suppresses():
    assert_clean("""
        def fill(ctx, value):
            ctx.put_value("trace/parent", value)

        def probe(ctx):
            return ctx.get_value("trace/parrent")  # repro: allow[CTX003] - legacy alias
    """, rule="CTX003")


# ---------------------------------------------------------------------------
# CTX004 — raw literals bypassing a declared constant


def test_ctx004_raw_literal_with_declared_constant():
    found = findings_for("""
        SCORE_PATH = "health/score"

        def fill(ctx, value):
            ctx.put_value(SCORE_PATH, value)

        def probe(ctx):
            return ctx.get_value("health/score")
    """, rule="CTX004")
    assert [f.line for f in found] == [8]
    assert "bypasses the declared constant SCORE_PATH" in found[0].message


def test_ctx004_constant_use_is_clean():
    assert_clean("""
        SCORE_PATH = "health/score"

        def fill(ctx, value):
            ctx.put_value(SCORE_PATH, value)

        def probe(ctx):
            return ctx.get_value(SCORE_PATH)
    """, rule="CTX004")


def test_ctx004_literal_without_constant_is_clean():
    assert_clean("""
        def fill(ctx, value):
            ctx.put_value("health/score", value)

        def probe(ctx):
            return ctx.get_value("health/score")
    """, rule="CTX004")


def test_ctx004_pragma_suppresses():
    assert_clean("""
        SCORE_PATH = "health/score"

        def fill(ctx, value):
            ctx.put_value(SCORE_PATH, value)

        def probe(ctx):
            return ctx.get_value("health/score")  # repro: allow[CTX004] - doc example
    """, rule="CTX004")
