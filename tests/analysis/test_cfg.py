"""Unit tests for the intraprocedural CFG (repro.analysis.cfg).

Each test builds the CFG of one small function and asserts reachability
or edge-level properties: which statements can follow which, where the
exceptional and Interrupt edges go, and — the subtle part — that every
route out of a ``try`` runs its ``finally`` body.
"""

import ast
import textwrap

from repro.analysis.cfg import (EXC, INTERRUPT, NORMAL, build_cfg,
                                can_raise, has_yield, head_exprs)


def cfg_of(code):
    tree = ast.parse(textwrap.dedent(code))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def node_at(cfg, line):
    """The statement node whose head is on ``line``."""
    return next(n for n in cfg.statement_nodes() if n.line == line)


def nodes_labelled(cfg, label):
    return [n for n in cfg.nodes if n.label == label]


def reachable(cfg, start, kinds=None):
    """Indices of all nodes reachable from ``start`` (optionally only
    along edges of the given kinds)."""
    seen = set()
    work = [start]
    while work:
        node = work.pop()
        if node.index in seen:
            continue
        seen.add(node.index)
        for succ, kind in cfg.successors(node):
            if kinds is None or kind in kinds:
                work.append(succ)
    return seen


def edge_kinds(cfg, src, dst):
    return {kind for index, kind in cfg.succ[src.index]
            if index == dst.index}


# ---------------------------------------------------------------------------
# Basics: straight-line flow, raising statements, yields


def test_straight_line_reaches_exit():
    cfg = cfg_of("""
        def f(a):
            x = a
            y = x
            return y
    """)
    assert cfg.exit.index in reachable(cfg, cfg.entry)


def test_call_statement_gets_exception_edge():
    cfg = cfg_of("""
        def f(g):
            x = g()
    """)
    assert EXC in edge_kinds(cfg, node_at(cfg, 3), cfg.raise_exit)


def test_plain_assignment_has_no_exception_edge():
    cfg = cfg_of("""
        def f(a):
            x = a
    """)
    assert not edge_kinds(cfg, node_at(cfg, 3), cfg.raise_exit)


def test_yield_gets_interrupt_and_exception_edges():
    cfg = cfg_of("""
        def f(ev):
            yield ev
    """)
    kinds = edge_kinds(cfg, node_at(cfg, 3), cfg.raise_exit)
    assert kinds == {EXC, INTERRUPT}


def test_can_raise_and_has_yield_judgements():
    call = ast.parse("g()").body[0]
    assign = ast.parse("x = a").body[0]
    yielded = ast.parse("x = yield ev").body[0]
    assert can_raise(call) and not can_raise(assign)
    assert has_yield(yielded) and not has_yield(call)
    # Nested scopes are opaque: a lambda body's call is not *our* call.
    lam = ast.parse("f = lambda: g()").body[0]
    assert not can_raise(lam)


# ---------------------------------------------------------------------------
# Branches and loops


def test_if_without_else_has_fallthrough_edge():
    cfg = cfg_of("""
        def f(flag, g):
            if flag:
                g()
            return 1
    """)
    head = node_at(cfg, 3)
    # The return is reachable from the if head both through the body and
    # directly (test false).
    ret = node_at(cfg, 5)
    assert ret.index in reachable(cfg, head, kinds={NORMAL})
    join = nodes_labelled(cfg, "join")[0]
    assert NORMAL in edge_kinds(cfg, head, join)


def test_loop_break_exits_to_after():
    cfg = cfg_of("""
        def f(items, g):
            for item in items:
                break
            g()
    """)
    brk = node_at(cfg, 4)
    tail = node_at(cfg, 5)
    assert tail.index in reachable(cfg, brk, kinds={NORMAL})


def test_loop_body_loops_back_to_head():
    cfg = cfg_of("""
        def f(items):
            for item in items:
                x = item
    """)
    head = node_at(cfg, 3)
    body = node_at(cfg, 4)
    assert head.index in reachable(cfg, body, kinds={NORMAL})


# ---------------------------------------------------------------------------
# try / except


def test_total_handler_stops_propagation():
    cfg = cfg_of("""
        def f(g):
            try:
                g()
            except Exception:
                x = 1
    """)
    assert cfg.raise_exit.index not in reachable(cfg, node_at(cfg, 4))


def test_narrow_handler_propagates():
    cfg = cfg_of("""
        def f(g):
            try:
                g()
            except KeyError:
                x = 1
    """)
    assert cfg.raise_exit.index in reachable(cfg, node_at(cfg, 4))


def test_exception_in_body_reaches_handler():
    cfg = cfg_of("""
        def f(g, h):
            try:
                g()
            except Exception:
                h()
    """)
    handler_stmt = node_at(cfg, 6)
    assert handler_stmt.index in reachable(cfg, node_at(cfg, 4))


# ---------------------------------------------------------------------------
# try / finally: every route out runs the finally body


def test_return_routes_through_finally():
    cfg = cfg_of("""
        def f(g, cleanup):
            try:
                return g()
            finally:
                cleanup()
    """)
    ret = node_at(cfg, 4)
    fin = node_at(cfg, 6)
    assert fin.index in reachable(cfg, ret)
    # ... and never straight to the exit, skipping the cleanup.
    assert not edge_kinds(cfg, ret, cfg.exit)


def test_exception_routes_through_finally():
    cfg = cfg_of("""
        def f(g, cleanup):
            try:
                g()
            finally:
                cleanup()
    """)
    body = node_at(cfg, 4)
    fin = node_at(cfg, 6)
    assert fin.index in reachable(cfg, body, kinds={EXC, NORMAL})
    assert cfg.raise_exit.index in reachable(cfg, body)


def test_break_routes_through_finally():
    cfg = cfg_of("""
        def f(items, cleanup, g):
            for item in items:
                try:
                    break
                finally:
                    cleanup()
            g()
    """)
    brk = node_at(cfg, 5)
    fin = node_at(cfg, 7)
    tail = node_at(cfg, 8)
    assert fin.index in reachable(cfg, brk)
    assert tail.index in reachable(cfg, brk)
    # break -> pad only; no direct escape past the finally.
    assert not edge_kinds(cfg, brk, tail)


def test_unused_pads_stay_disconnected():
    # No return/break/continue inside the try: the pads must not be wired,
    # or they would fabricate a path that skips the finally body.
    cfg = cfg_of("""
        def f(g, cleanup):
            try:
                g()
            finally:
                cleanup()
            return 1
    """)
    for pad in nodes_labelled(cfg, "pad-return"):
        assert cfg.succ[pad.index] == []


def test_finally_cleanup_calls_assumed_not_to_raise():
    cfg = cfg_of("""
        def f(g, cleanup, log):
            try:
                g()
            finally:
                cleanup()
                log()
    """)
    fin_first = node_at(cfg, 6)
    assert not edge_kinds(cfg, fin_first, cfg.raise_exit)
    # Both cleanup statements run in order on the way out.
    assert node_at(cfg, 7).index in reachable(cfg, fin_first,
                                              kinds={NORMAL})


def test_yield_in_finally_keeps_interrupt_edge():
    cfg = cfg_of("""
        def f(g, ev):
            try:
                g()
            finally:
                yield ev
    """)
    kinds = edge_kinds(cfg, node_at(cfg, 6), cfg.raise_exit)
    assert INTERRUPT in kinds


# ---------------------------------------------------------------------------
# head_exprs: compound heads own only their test/iter/context expressions


def test_head_exprs_if_is_test_only():
    cfg = cfg_of("""
        def f(g, h):
            if g():
                h()
    """)
    head = node_at(cfg, 3)
    assert head.label == "if"
    exprs = head_exprs(head)
    assert len(exprs) == 1 and isinstance(exprs[0], ast.Call)
    # The body call is not part of the head's own expressions.
    assert not any(isinstance(sub, ast.Call) and sub is not exprs[0]
                   for e in exprs for sub in ast.walk(e))


def test_head_exprs_loop_and_with_and_simple():
    cfg = cfg_of("""
        def f(items, opener, g):
            for item in items:
                pass
            with opener() as o:
                pass
            x = g()
    """)
    loop = node_at(cfg, 3)
    assert [type(e) for e in head_exprs(loop)] == [ast.Name]
    withnode = node_at(cfg, 5)
    assert [type(e) for e in head_exprs(withnode)] == [ast.Call]
    simple = node_at(cfg, 7)
    assert head_exprs(simple) == [simple.stmt]


def test_head_exprs_def_is_opaque():
    cfg = cfg_of("""
        def f():
            def inner():
                return 1
            return inner
    """)
    inner = node_at(cfg, 3)
    assert inner.label == "def"
    assert head_exprs(inner) == []
