"""Repo-wide audit of determinism-lint suppressions.

File-wide pragmas are the blunt instrument: one line exempts a whole file
from a rule forever. The only legitimate users are the wall-clock
benchmarks and the flight-recorder profiler (they *must* call
``time.perf_counter`` — wall-clock measurement is the thing itself), and
only for DET001. The profiler qualifies because it is a pure side
channel: the kernel hands it events to observe and never reads its state
back, so wall time cannot leak into simulation behavior (DESIGN §12
pins this with byte-identity tests). Anything else must use a line-level
``# repro: allow[...]`` with the offending line in view, so this audit
fails the build if a file-wide pragma creeps in anywhere else.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FILE_PRAGMA = re.compile(r"#\s*repro:\s*allow-file\[([A-Za-z0-9_,\s]*)\]")

#: The closed set of files allowed a file-wide suppression, with the rules
#: each may suppress. Adding an entry here is a reviewed decision.
ALLOWED = {
    "benchmarks/bench_expression.py": {"DET001"},
    "benchmarks/bench_health.py": {"DET001"},
    "benchmarks/bench_kernel.py": {"DET001"},
    "benchmarks/bench_overhead.py": {"DET001"},
    "benchmarks/bench_prof.py": {"DET001"},
    "benchmarks/bench_snapshot.py": {"DET001"},
    # The profiler is the one src/ module allowed to read the wall clock:
    # it exists to measure the simulator and is isolated behind the
    # kernel's side-channel-only hook (see the module docstring).
    "src/repro/observability/profile.py": {"DET001"},
}


def _python_sources():
    for root in ("src", "benchmarks", "tests"):
        yield from (REPO / root).rglob("*.py")


def _file_pragmas(path):
    rules = set()
    for match in FILE_PRAGMA.finditer(path.read_text()):
        rules.update(token.strip() for token in match.group(1).split(",")
                     if token.strip())
    return rules


def test_allow_file_pragmas_only_in_wall_clock_benchmarks():
    offenders = {}
    for path in _python_sources():
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith(("tests/analysis/", "src/repro/analysis/")):
            continue  # the lint suite and its hints quote pragma syntax
        rules = _file_pragmas(path)
        if not rules:
            continue
        if rules - ALLOWED.get(rel, set()):
            offenders[rel] = sorted(rules)
    assert not offenders, (
        "file-wide lint suppressions outside the reviewed allowlist: "
        f"{offenders} — use line-level '# repro: allow[...]' instead")


def test_allowlisted_benchmarks_still_exist():
    """A deleted benchmark should take its allowlist entry with it."""
    for rel in ALLOWED:
        assert (REPO / rel).is_file(), f"stale allowlist entry {rel}"


def test_wall_clock_pragmas_carry_a_justification():
    for rel in ALLOWED:
        line = next(l for l in (REPO / rel).read_text().splitlines()
                    if FILE_PRAGMA.search(l))
        assert re.search(r"\]\s*-\s*\S", line), (
            f"{rel}: file-wide pragma needs a trailing '- why' justification")


# ---------------------------------------------------------------------------
# Line-level pragmas for the whole-program families (RES / CTX / API)
#
# These rules encode cross-module contracts (a leak, a typo'd path, a
# phantom export), so a suppression is a reviewed claim that the analyzer
# is wrong or the contract is external. The audit holds them to a higher
# bar than the local DET/SIM rules: every pragma must name a registered
# rule and every RES/CTX/API pragma must say *why* inline.

LINE_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]*)\]")
PROGRAM_FAMILIES = ("RES", "CTX", "API")


def _line_pragmas():
    for path in _python_sources():
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith(("tests/", "src/repro/analysis/")):
            continue  # suites and rule hints quote pragma syntax
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "allow-file[" in line:
                continue
            match = LINE_PRAGMA.search(line)
            if match:
                rules = {token.strip()
                         for token in match.group(1).split(",")
                         if token.strip()}
                yield rel, lineno, line, rules


def test_line_pragmas_name_registered_rules():
    """A typo'd rule id (`allow[RES01]`) suppresses nothing — it must not
    sit in the tree looking like a waiver."""
    from repro.analysis import RULES
    offenders = [(rel, lineno, sorted(rules - set(RULES)))
                 for rel, lineno, line, rules in _line_pragmas()
                 if rules - set(RULES)]
    assert not offenders, f"pragmas naming unknown rules: {offenders}"


def test_program_family_pragmas_carry_a_justification():
    offenders = [(rel, lineno)
                 for rel, lineno, line, rules in _line_pragmas()
                 if any(rule.startswith(PROGRAM_FAMILIES) for rule in rules)
                 and not re.search(r"\]\s*-\s*\S", line)]
    assert not offenders, (
        "RES/CTX/API suppressions need a trailing '- why' justification: "
        f"{offenders}")


def test_program_families_are_never_file_wide_suppressed():
    """One line may waive one finding; a file-wide waiver of a lifecycle
    or contract rule would hide every *future* leak in the file too."""
    for rel, rules in ALLOWED.items():
        assert rules == {"DET001"}, (
            f"{rel}: the reviewed file-wide allowlist is DET001-only")
    offenders = {}
    for path in _python_sources():
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith(("tests/analysis/", "src/repro/analysis/")):
            continue
        waived = {rule for rule in _file_pragmas(path)
                  if rule.startswith(PROGRAM_FAMILIES)}
        if waived:
            offenders[rel] = sorted(waived)
    assert not offenders, (
        f"file-wide RES/CTX/API suppressions are never allowed: {offenders}")
