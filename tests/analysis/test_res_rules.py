"""Per-rule snippet tests for the RES0xx resource-lifecycle family.

Same shape as the DET/SIM suite in test_lint_rules.py: every rule gets a
caught-bad snippet, an allowed-good snippet, and a pragma-suppressed
variant. The snippets are written in the repo's own idiom (spans,
admission slots, HistoryStore handles, timer callbacks) because the rules
match those protocols by name.
"""

import textwrap

from repro.analysis import lint_source


def findings_for(code, rule=None):
    found = lint_source(textwrap.dedent(code))
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def assert_clean(code, rule):
    assert findings_for(code, rule) == []


# ---------------------------------------------------------------------------
# RES001 — span lifecycle


def test_res001_interrupt_leak_at_yield():
    found = findings_for("""
        def run(tracer, env):
            span = tracer.start_span("op")
            yield env.timeout(1.0)
            span.end("ok")
    """, rule="RES001")
    assert [f.line for f in found] == [3]
    assert "Interrupt edge of the yield at line 4" in found[0].message


def test_res001_exception_leak_between_start_and_end():
    found = findings_for("""
        def run(tracer, work):
            span = tracer.start_span("op")
            work()
            span.end("ok")
    """, rule="RES001")
    assert [f.line for f in found] == [3]
    assert "exception path escaping at line 4" in found[0].message


def test_res001_dropped_span_flagged():
    found = findings_for("""
        def run(tracer):
            tracer.start_span("op")
    """, rule="RES001")
    assert [f.line for f in found] == [3]
    assert "immediately dropped" in found[0].message


def test_res001_try_finally_is_clean():
    assert_clean("""
        def run(tracer, env):
            span = tracer.start_span("op")
            try:
                yield env.timeout(1.0)
            finally:
                span.end("ok")
    """, rule="RES001")


def test_res001_reraise_handler_is_clean():
    assert_clean("""
        def run(tracer, env):
            span = tracer.start_span("op")
            try:
                yield env.timeout(1.0)
            except BaseException:
                span.end("error")
                raise
            span.end("ok")
    """, rule="RES001")


def test_res001_escaping_span_is_not_flagged():
    # Returned / handed-off spans are someone else's responsibility.
    assert_clean("""
        def open_span(tracer):
            span = tracer.start_span("op")
            return span
    """, rule="RES001")
    assert_clean("""
        def open_span(tracer, registry):
            span = tracer.start_span("op")
            registry.adopt(span)
    """, rule="RES001")


def test_res001_derived_value_is_not_an_escape():
    # Passing span.span_id (a derived value) must not count as handing the
    # span off — the leak is still real.
    found = findings_for("""
        def run(tracer, env, endpoint, ref):
            span = tracer.start_span("op")
            yield endpoint.call(ref, "work", trace_parent=span.span_id)
            span.end("ok")
    """, rule="RES001")
    assert [f.line for f in found] == [3]


def test_res001_pragma_suppresses():
    assert_clean("""
        def run(tracer, env):
            span = tracer.start_span("op")  # repro: allow[RES001] - handed off
            yield env.timeout(1.0)
            span.end("ok")
    """, rule="RES001")


# ---------------------------------------------------------------------------
# RES002 — discarded lease grants


def test_res002_discarded_grant_flagged():
    found = findings_for("""
        def pin(landlord):
            landlord.grant("slot-1", 30.0)
    """, rule="RES002")
    assert [f.line for f in found] == [3]
    assert "discards the Lease handle" in found[0].message


def test_res002_kept_handle_is_clean():
    assert_clean("""
        def pin(landlord):
            lease = landlord.grant("slot-1", 30.0)
            return lease
    """, rule="RES002")


def test_res002_non_landlord_receiver_is_clean():
    assert_clean("""
        def pin(registry):
            registry.grant("slot-1", 30.0)
    """, rule="RES002")


def test_res002_pragma_suppresses():
    assert_clean("""
        def pin(landlord):
            landlord.grant("slot-1", 30.0)  # repro: allow[RES002] - fire-and-forget by design
    """, rule="RES002")


# ---------------------------------------------------------------------------
# RES003 — admission slots


def test_res003_interrupt_leak_between_acquire_and_release():
    found = findings_for("""
        def serve(self, request):
            yield from self.admission.acquire(request)
            yield self.dispatch(request)
            self.admission.release(request)
    """, rule="RES003")
    assert [f.line for f in found] == [3]
    assert "admission slot from self.admission.acquire()" in found[0].message
    assert "Interrupt edge of the yield at line 4" in found[0].message


def test_res003_try_finally_is_clean():
    assert_clean("""
        def serve(self, request):
            yield from self.admission.acquire(request)
            try:
                yield self.dispatch(request)
            finally:
                self.admission.release(request)
    """, rule="RES003")


def test_res003_flag_guarded_release_is_trusted():
    # Documented path-insensitivity: a release behind a flag inside the
    # finally counts as a release (DESIGN §13 "cannot prove").
    assert_clean("""
        def serve(self, request, admitted):
            yield from self.admission.acquire(request)
            try:
                yield self.dispatch(request)
            finally:
                if admitted:
                    self.admission.release(request)
    """, rule="RES003")


def test_res003_other_receivers_acquire_is_clean():
    assert_clean("""
        def serve(self, request):
            yield from self.lock.acquire(request)
            yield self.dispatch(request)
    """, rule="RES003")


def test_res003_pragma_suppresses():
    assert_clean("""
        def serve(self, request):
            yield from self.admission.acquire(request)  # repro: allow[RES003] - reaper releases
            yield self.dispatch(request)
            self.admission.release(request)
    """, rule="RES003")


# ---------------------------------------------------------------------------
# RES004 — sqlite / HistoryStore handles


def test_res004_exception_leak_before_close():
    found = findings_for("""
        def spill(path, report):
            store = HistoryStore(path)
            store.spill_profile("run", report)
            store.close()
    """, rule="RES004")
    assert [f.line for f in found] == [3]
    assert "history-store handle 'store'" in found[0].message
    assert "exception path escaping at line 4" in found[0].message


def test_res004_sqlite_connect_spelling_matches():
    found = findings_for("""
        def spill(path, work):
            conn = sqlite3.connect(path)
            work(conn.cursor())
            conn.close()
    """, rule="RES004")
    assert [f.line for f in found] == [3]


def test_res004_dropped_handle_flagged():
    found = findings_for("""
        def touch(path):
            HistoryStore(path)
    """, rule="RES004")
    assert [f.line for f in found] == [3]
    assert "immediately dropped" in found[0].message


def test_res004_with_block_is_clean():
    assert_clean("""
        def spill(path, report):
            with HistoryStore(path) as store:
                store.spill_profile("run", report)
    """, rule="RES004")


def test_res004_try_finally_is_clean():
    assert_clean("""
        def spill(path, report):
            store = HistoryStore(path)
            try:
                store.spill_profile("run", report)
            finally:
                store.close()
    """, rule="RES004")


def test_res004_pragma_suppresses():
    assert_clean("""
        def spill(path, report):
            store = HistoryStore(path)  # repro: allow[RES004] - atexit closes
            store.spill_profile("run", report)
            store.close()
    """, rule="RES004")


# ---------------------------------------------------------------------------
# RES005 — armed timers across yield points


def test_res005_interrupt_between_arm_and_disarm():
    found = findings_for("""
        def wait(self, timer, env):
            timer.callbacks.append(self.on_fire)
            yield env.timeout(5.0)
            timer.callbacks.clear()
    """, rule="RES005")
    assert [f.line for f in found] == [3]
    assert "timer callback armed on timer" in found[0].message
    assert "Interrupt edge of the yield at line 4" in found[0].message


def test_res005_fire_later_pattern_is_clean():
    # A function that never disarms is using the arm-and-forget pattern;
    # the conditional protocol only applies when a clear() exists.
    assert_clean("""
        def arm(self, timer):
            timer.callbacks.append(self.on_fire)
    """, rule="RES005")


def test_res005_try_finally_is_clean():
    assert_clean("""
        def wait(self, timer, env):
            timer.callbacks.append(self.on_fire)
            try:
                yield env.timeout(5.0)
            finally:
                timer.callbacks.clear()
    """, rule="RES005")


def test_res005_normal_path_gap_is_not_flagged():
    # exceptional_only: missing a clear() on a normal branch is the
    # fire-later pattern again, not the interrupt bug.
    assert_clean("""
        def wait(self, timer):
            timer.callbacks.append(self.on_fire)
            if self.flag:
                timer.callbacks.clear()
    """, rule="RES005")


def test_res005_pragma_suppresses():
    assert_clean("""
        def wait(self, timer, env):
            timer.callbacks.append(self.on_fire)  # repro: allow[RES005] - timer dies too
            yield env.timeout(5.0)
            timer.callbacks.clear()
    """, rule="RES005")


# ---------------------------------------------------------------------------
# RES006 — AtomicFile publish-or-abort


def test_res006_interrupt_leak_at_yield():
    found = findings_for("""
        def spill(env, path, blob):
            fh = AtomicFile(path)
            yield env.timeout(1.0)
            fh.write(blob)
            fh.close()
    """, rule="RES006")
    assert [f.line for f in found] == [3]
    assert "Interrupt edge of the yield at line 4" in found[0].message


def test_res006_exception_leak_before_close():
    found = findings_for("""
        def spill(path, render):
            fh = AtomicFile(path)
            fh.write(render())
            fh.close()
    """, rule="RES006")
    assert [f.line for f in found] == [3]
    assert "exception path escaping at line 4" in found[0].message


def test_res006_dropped_handle_flagged():
    found = findings_for("""
        def touch(path):
            AtomicFile(path)
    """, rule="RES006")
    assert [f.line for f in found] == [3]
    assert "never be published" in found[0].message


def test_res006_with_block_is_clean():
    assert_clean("""
        def spill(path, blob):
            with AtomicFile(path) as fh:
                fh.write(blob)
    """, rule="RES006")


def test_res006_try_finally_close_is_clean():
    assert_clean("""
        def spill(path, blob):
            fh = AtomicFile(path)
            try:
                fh.write(blob)
            finally:
                fh.close()
    """, rule="RES006")


def test_res006_abort_on_failure_is_clean():
    assert_clean("""
        def spill(path, render):
            fh = AtomicFile(path)
            try:
                fh.write(render())
            except BaseException:
                fh.abort()
                raise
            fh.close()
    """, rule="RES006")


def test_res006_escaping_handle_is_callers_problem():
    assert_clean("""
        def open_sink(path):
            fh = AtomicFile(path)
            return fh
    """, rule="RES006")


def test_res006_pragma_suppresses():
    assert_clean("""
        def spill(path, blob):
            fh = AtomicFile(path)  # repro: allow[RES006] - closed by caller via registry
            fh.write(blob)
    """, rule="RES006")
