"""Deliberately-defective snippets for the lint output golden tests.

Never imported by anything: ``repro lint`` is pointed at this file to
produce a stable, known set of findings (one RES, two CTX) for the
``--json`` / ``--sarif`` golden files and the ``--rule`` filter tests.
"""


def leaky_span(tracer, env):
    span = tracer.start_span("op")
    yield env.timeout(1.0)
    span.end("ok")


def fill(ctx, value):
    ctx.put_value("trace/parent", value)


def probe(ctx):
    return ctx.get_value("trace/parrent")
