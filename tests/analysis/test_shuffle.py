"""Tie-break shuffle harness.

Two claims, both load-bearing for the determinism contract:

1. the shuffle *works* — an order-dependent toy model produces different
   results under different ``tie_break_seed``s (so the harness would catch
   accidental same-timestamp coupling);
2. the shipped system is order-*independent* — the paper lab's canonical
   status snapshot is byte-identical under every shuffle seed.
"""

import io

import pytest

from repro.cli import main as cli_main
from repro.sim import Environment
from repro.sim.core import SHUFFLE_SEED_ENV


def _arrival_order(tie_break_seed):
    """Three same-time processes append their tags; return the order."""
    env = Environment(tie_break_seed=tie_break_seed)
    order = []

    def worker(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(worker(tag))
    env.run()
    return tuple(order)


def test_unshuffled_order_is_schedule_order():
    assert _arrival_order(None) == ("a", "b", "c")


def test_shuffle_perturbs_same_time_order():
    """An order-dependent model *must* be caught: across a handful of
    seeds the tie-break shuffle yields more than one ordering."""
    orders = {_arrival_order(seed) for seed in range(1, 9)}
    assert len(orders) > 1
    for order in orders:
        assert sorted(order) == ["a", "b", "c"]  # a permutation, no loss


def test_same_seed_same_order():
    for seed in (1, 2, 3):
        assert _arrival_order(seed) == _arrival_order(seed)


def test_env_var_drives_tie_break_seed(monkeypatch):
    monkeypatch.setenv(SHUFFLE_SEED_ENV, "5")
    assert Environment().tie_break_seed == 5
    monkeypatch.delenv(SHUFFLE_SEED_ENV)
    assert Environment().tie_break_seed is None


def test_explicit_seed_wins_over_env_var(monkeypatch):
    monkeypatch.setenv(SHUFFLE_SEED_ENV, "5")
    assert Environment(tie_break_seed=9).tie_break_seed == 9


def _status_json():
    out = io.StringIO()
    assert cli_main(["status", "--json"], out=out) == 0
    return out.getvalue()


_baseline_cache = {}


@pytest.mark.slow
def test_paper_lab_status_invariant_under_shuffle(shuffle_seed, monkeypatch):
    """The flagship invariant: the whole paper-lab scenario — deploy,
    six-step experiment, health snapshot — produces a byte-identical
    canonical JSON snapshot whatever the tie-break order."""
    shuffled = _status_json()
    if "json" not in _baseline_cache:
        monkeypatch.delenv(SHUFFLE_SEED_ENV)
        _baseline_cache["json"] = _status_json()
    assert shuffled == _baseline_cache["json"]
