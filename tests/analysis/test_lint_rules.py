"""Per-rule lint tests: one good and one bad snippet each, asserting the
rule id *and* the flagged line, plus pragma and CLI behaviour."""

import io
import textwrap
from pathlib import Path

import repro
from repro.analysis import RULES, lint_source
from repro.cli import main as cli_main


def findings_for(code, rule=None):
    found = lint_source(textwrap.dedent(code))
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def assert_clean(code, rule):
    assert findings_for(code, rule) == []


# -- DET001: wall clock -----------------------------------------------------------


def test_det001_flags_time_time():
    found = findings_for("""\
        import time

        def stamp():
            return time.time()
        """, "DET001")
    assert [f.line for f in found] == [4]
    assert "wall clock" in found[0].message


def test_det001_flags_datetime_now_and_from_import():
    found = findings_for("""\
        from datetime import datetime
        from time import monotonic

        def stamp():
            return datetime.now(), monotonic()
        """, "DET001")
    assert [f.line for f in found] == [5, 5]


def test_det001_clean_on_simulated_time():
    assert_clean("""\
        def stamp(env):
            return env.now
        """, "DET001")


# -- DET002: module-level random --------------------------------------------------


def test_det002_flags_module_random():
    found = findings_for("""\
        import random

        def jitter():
            return random.random()
        """, "DET002")
    assert [f.line for f in found] == [4]
    assert "global" in found[0].message


def test_det002_flags_from_import():
    found = findings_for("""\
        from random import shuffle

        def mix(items):
            shuffle(items)
        """, "DET002")
    assert found and found[0].line == 1


def test_det002_clean_on_seeded_random():
    assert_clean("""\
        import random

        def make_rng(seed):
            return random.Random(seed)
        """, "DET002")


# -- DET003: unordered fan-out ----------------------------------------------------


def test_det003_flags_set_driving_process():
    found = findings_for("""\
        def fan_out(env, procs):
            waiting = set(procs)
            for proc in waiting:
                env.process(proc)
        """, "DET003")
    assert [f.line for f in found] == [3]


def test_det003_flags_dict_view_comprehension():
    found = findings_for("""\
        def fan_out(env, table):
            return [env.process(p) for p in table.values()]
        """, "DET003")
    assert [f.line for f in found] == [2]


def test_det003_clean_with_sorted():
    assert_clean("""\
        def fan_out(env, procs):
            waiting = set(procs)
            for proc in sorted(waiting):
                env.process(proc)
        """, "DET003")


# -- DET004: unordered accumulation -----------------------------------------------


def test_det004_flags_sum_over_set():
    found = findings_for("""\
        def total(values):
            bag = set(values)
            return sum(bag)
        """, "DET004")
    assert [f.line for f in found] == [3]


def test_det004_flags_augmented_accumulation():
    found = findings_for("""\
        def total(values):
            bag = frozenset(values)
            acc = 0.0
            for value in bag:
                acc += value
            return acc
        """, "DET004")
    assert [f.line for f in found] == [4]


def test_det004_clean_with_sorted():
    assert_clean("""\
        def total(values):
            bag = set(values)
            return sum(sorted(bag))
        """, "DET004")


# -- DET005: ad-hoc random.Random construction -------------------------------------


def test_det005_flags_direct_random_random():
    found = findings_for("""\
        import random

        def make_rng(seed):
            return random.Random(seed)
        """, "DET005")
    assert [f.line for f in found] == [4]
    assert "substream" in found[0].message


def test_det005_flags_from_import_random():
    found = findings_for("""\
        from random import Random

        def make_rng(seed):
            return Random(seed + 7)
        """, "DET005")
    assert [f.line for f in found] == [4]


def test_det005_clean_on_substream():
    assert_clean("""\
        from repro.util.rng import substream

        def make_rng(seed):
            return substream(seed, "sensors.faults", "probe")
        """, "DET005")


def test_det005_pragma_suppresses():
    found = findings_for("""\
        import random

        def tie_break(seed):
            return random.Random(seed)  # repro: allow[DET005]
        """, "DET005")
    assert found == []


# -- SIM001: broad except around a yield ------------------------------------------


def test_sim001_flags_broad_except():
    found = findings_for("""\
        def worker(env, endpoint, ref):
            try:
                yield endpoint.call(ref, "poke")
            except Exception:
                pass
        """, "SIM001")
    assert [f.line for f in found] == [4]
    assert "Interrupt" in found[0].message


def test_sim001_clean_with_interrupt_reraise():
    assert_clean("""\
        def worker(env, endpoint, ref):
            try:
                yield endpoint.call(ref, "poke")
            except Interrupt:
                raise
            except Exception:
                pass
        """, "SIM001")


def test_sim001_clean_when_handler_reraises():
    assert_clean("""\
        def worker(env, endpoint, ref):
            try:
                yield endpoint.call(ref, "poke")
            except Exception:
                log("boom")
                raise
        """, "SIM001")


def test_sim001_ignores_try_without_yield():
    assert_clean("""\
        def worker(env):
            try:
                risky()
            except Exception:
                pass
            yield env.timeout(1)
        """, "SIM001")


# -- SIM002: yielding non-events --------------------------------------------------


def test_sim002_flags_literal_yield_in_process():
    found = findings_for("""\
        def proc(env):
            yield env.timeout(1)
            yield 42
        """, "SIM002")
    assert [f.line for f in found] == [3]


def test_sim002_flags_bare_yield():
    found = findings_for("""\
        def proc(env):
            yield env.timeout(1)
            yield
        """, "SIM002")
    assert [f.line for f in found] == [3]
    assert "bare yield" in found[0].message


def test_sim002_ignores_plain_data_generators():
    assert_clean("""\
        def numbers():
            yield 1
            yield 2
        """, "SIM002")


# -- pragmas ---------------------------------------------------------------------


def test_line_pragma_suppresses():
    assert_clean("""\
        import time

        def stamp():
            return time.time()  # repro: allow[DET001]
        """, "DET001")


def test_file_pragma_suppresses():
    assert_clean("""\
        # repro: allow-file[DET001]
        import time

        def stamp():
            return time.time()
        """, "DET001")


def test_pragma_only_covers_named_rule():
    found = findings_for("""\
        import time

        def stamp():
            return time.time()  # repro: allow[DET002]
        """, "DET001")
    assert [f.line for f in found] == [4]


def test_unknown_pragma_rule_reported():
    found = findings_for("""\
        x = 1  # repro: allow[NOPE123]
        """, "PRAGMA")
    assert found and found[0].line == 1
    assert "NOPE123" in found[0].message


def test_syntax_error_reported_not_raised():
    found = findings_for("def broken(:\n")
    assert [f.rule for f in found] == ["E999"]


# -- CLI + lint baseline ----------------------------------------------------------


def test_cli_lint_exits_nonzero_on_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    out = io.StringIO()
    assert cli_main(["lint", str(bad)], out=out) == 1
    text = out.getvalue()
    assert "DET001" in text and "bad.py:4" in text


def test_cli_lint_exits_zero_when_clean(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("def f(env):\n    return env.now\n")
    out = io.StringIO()
    assert cli_main(["lint", str(good)], out=out) == 0
    assert "clean" in out.getvalue()


def test_cli_lint_rule_filter_and_listing(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n\ndef f():\n    return random.random()\n")
    out = io.StringIO()
    assert cli_main(["lint", "--rule", "DET001", str(bad)], out=out) == 0
    out = io.StringIO()
    assert cli_main(["lint", "--list-rules", str(bad)], out=out) == 0
    listed = out.getvalue()
    assert all(rule_id in listed for rule_id in RULES)


def test_shipped_tree_lints_clean():
    """The lint baseline: src/repro ships with zero findings."""
    src = Path(repro.__file__).parent
    out = io.StringIO()
    assert cli_main(["lint", str(src)], out=out) == 0, out.getvalue()
