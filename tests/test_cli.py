"""CLI smoke + behaviour tests."""

import io
import json
import pathlib

import pytest

from repro.cli import build_parser, main

GOLDEN = pathlib.Path(__file__).parent / "golden"


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_inventory_lists_fig2_services():
    code, output = run_cli("inventory")
    assert code == 0
    for name in ("Neem-Sensor", "Composite-Service", "SenSORCER Facade",
                 "Monitor", "Transaction Manager"):
        assert name in output


def test_value_reads_sensor():
    code, output = run_cli("value", "Jade-Sensor")
    assert code == 0
    assert output.startswith("Jade-Sensor: ")
    float(output.split(": ")[1])  # parses as a number


def test_value_unknown_sensor_errors():
    code, output = run_cli("value", "Ghost")
    assert code == 1
    assert "error" in output


def test_experiment_prints_info_pane_and_value():
    code, output = run_cli("experiment")
    assert code == 0
    assert "New-Composite" in output
    assert "(a + b)/2" in output
    assert "value:" in output


def test_topology_prints_tree():
    code, output = run_cli("topology")
    assert code == 0
    assert "New-Composite" in output
    assert "Composite-Service" in output
    assert "- Neem-Sensor" in output


def test_farm_command():
    code, output = run_cli("--seed", "5", "farm", "--fields", "2",
                           "--sensors", "2")
    assert code == 0
    assert "Field-0" in output
    assert "Field-1" in output
    assert "ground truth" in output


def test_seed_changes_values():
    _, out_a = run_cli("--seed", "1", "value", "Neem-Sensor")
    _, out_a2 = run_cli("--seed", "1", "value", "Neem-Sensor")
    assert out_a == out_a2  # deterministic
    # Seed-sensitive: readings quantize to 0.25 C steps, so any one pair of
    # seeds may collide — but across several seeds values must vary.
    outputs = {run_cli("--seed", str(s), "value", "Neem-Sensor")[1]
               for s in (1, 2, 3, 4)}
    assert len(outputs) >= 2


def test_traffic_command():
    code, output = run_cli("traffic")
    assert code == 0
    assert "TOTAL" in output
    assert "exertion" in output
    assert "discovery-probe" in output


def test_watch_command():
    code, output = run_cli("watch", "Neem-Sensor", "Jade-Sensor",
                           "--interval", "2", "--rounds", "3")
    assert code == 0
    assert "Watch" in output
    assert "Neem-Sensor" in output and "Jade-Sensor" in output
    # Three sample rows beneath the two header lines + column row.
    assert len(output.strip().splitlines()) == 6


def test_admin_command():
    code, output = run_cli("admin")
    assert code == 0
    assert "registrar" in output
    assert "lease" in output
    assert "Transaction Manager" in output


def test_trace_command_prints_exertion_trees():
    code, output = run_cli("trace")
    assert code == 0
    assert "spans recorded" in output
    assert "exert:browser-getValue [exert]" in output
    # Indentation shows the hop chain down to the sensor read.
    assert "serve:facade-getValue [serve]" in output
    assert "exert:collect-Neem-Sensor" in output
    # Default view hides infrastructure-rooted trees (lookups, leases).
    assert "rpc:register" not in output


def test_trace_all_includes_infrastructure(tmp_path):
    path = tmp_path / "run.jsonl"
    code, output = run_cli("trace", "--all", "--no-annotations",
                           "--metrics", "--out", str(path))
    assert code == 0
    # Rio's provisioning roots its own trace; --all makes it visible.
    assert "provision:" in output
    # Infrastructure chatter (registration, renewals) is counted, not
    # traced: the rpc.calls metric shows it, no rpc:register span exists.
    assert "rpc.calls{" in output  # the metrics table rendered
    assert "rpc:register" not in output
    assert f"JSON lines to {path}" in output
    import json
    records = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = {r["record"] for r in records}
    assert kinds == {"span", "metric"}


def test_trace_same_seed_same_output():
    _, first = run_cli("--seed", "7", "trace")
    _, second = run_cli("--seed", "7", "trace")
    assert first == second


def test_trace_metrics_flag_prints_registry_table():
    code, output = run_cli("trace", "--metrics")
    assert code == 0
    # The metrics table rides along after the span trees.
    assert "spans recorded" in output
    assert "rpc.calls{" in output
    assert "health.status{entity=federation}" in output


# -- management plane: repro status / repro health -----------------------------
#
# Golden files pin the exact bytes for the default seed. The simulation is
# deterministic, so any diff here is a real behaviour change: regenerate
# with `python -m repro status > tests/golden/status_seed2009.txt` (etc.)
# and review the diff like any other code change.


def test_status_matches_golden():
    code, output = run_cli("status")
    assert code == 0
    assert output == (GOLDEN / "status_seed2009.txt").read_text()


def test_status_json_matches_golden():
    code, output = run_cli("status", "--json")
    assert code == 0
    assert output == (GOLDEN / "status_seed2009.json").read_text()
    document = json.loads(output)
    assert document["federation"]["status"] == "UP"
    assert document["seed"] == 2009
    assert len(document["nodes"]) == 15


def test_health_matches_golden():
    code, output = run_cli("health")
    assert code == 0
    assert output == (GOLDEN / "health_seed2009.txt").read_text()


def test_status_json_byte_identical_across_runs():
    _, first = run_cli("--seed", "31", "status", "--json")
    _, second = run_cli("--seed", "31", "status", "--json")
    assert first == second


def test_status_quiet_lab_skips_experiment():
    code, output = run_cli("status", "--quiet-lab", "--until", "12")
    assert code == 0
    assert "t=12.0s simulated" in output
    # The six-step experiment never ran, so its product is absent.
    assert "New-Composite" not in output
    assert "federation [+] UP" in output


def test_health_json_is_canonical():
    code, output = run_cli("health", "--json")
    assert code == 0
    document = json.loads(output)
    # Canonical form: sorted keys, no spaces, trailing newline.
    assert output == json.dumps(document, sort_keys=True,
                                separators=(",", ":")) + "\n"
    assert {slo["name"] for slo in document["slos"]} == {
        "federation-health", "exertion-failure-rate",
        "deadline-miss-rate", "rpc-timeout-rate"}


# -- repro load ----------------------------------------------------------------
#
# Same golden-file discipline as status/health: regenerate with
# `python -m repro load --json > tests/golden/load_seed2009.json`.


def test_load_json_matches_golden():
    code, output = run_cli("load", "--json")
    assert code == 0
    assert output == (GOLDEN / "load_seed2009.json").read_text()
    document = json.loads(output)
    # Canonical form: sorted keys, no spaces, trailing newline.
    assert output == json.dumps(document, sort_keys=True,
                                separators=(",", ":")) + "\n"
    assert set(document["tenants"]) == {"gold", "silver", "bronze"}
    total = document["total"]
    assert total["offered"] == (total["completed"] + total["rejected"]
                                + total["failed"])


def test_load_text_summarizes_tenants():
    code, output = run_cli("load", "--duration", "2")
    assert code == 0
    for tenant in ("gold", "silver", "bronze"):
        assert tenant in output
    assert "total:" in output and "admission:" in output


def test_trace_since_until_filter_trees():
    _, unfiltered = run_cli("trace")
    code, output = run_cli("trace", "--since", "8", "--until", "20")
    assert code == 0
    # The six-step exertions root before t=8; the filter drops them.
    assert "exert:browser-getValue [exert]" in unfiltered
    assert "exert:browser-getValue [exert]" not in output
    assert "matching tree(s)" in output


def test_trace_limit_truncates_and_reports():
    code, output = run_cli("trace", "--limit", "1")
    assert code == 0
    assert "showing 1 of " in output and "matching tree(s)" in output
    # Exactly one root: one tree at zero indentation.
    roots = [line for line in output.splitlines()
             if line.startswith(("exert:", "serve:"))]
    assert len(roots) == 1


def test_trace_filters_compose_deterministically():
    _, first = run_cli("trace", "--since", "5", "--limit", "2")
    _, second = run_cli("trace", "--since", "5", "--limit", "2")
    assert first == second


# -- repro profile / repro history ---------------------------------------------
#
# Wall-clock numbers are machine noise, so the golden discipline only
# covers the simulation-side surfaces: the spilled window series (pure
# function of the seed) is pinned byte-for-byte; regenerate with
#   python -m repro profile six-steps --until 30 --spill /tmp/g.sqlite
#   python -m repro history --db /tmp/g.sqlite series \
#       --run six-steps-seed2009 'exertion.latency{host=browser-host}' \
#       --json > tests/golden/history_series_six_steps_seed2009.json


def _spill_six_steps(tmp_path):
    db = str(tmp_path / "history.sqlite")
    code, output = run_cli("profile", "six-steps", "--until", "30",
                           "--spill", db, "--json")
    assert code == 0
    return db, json.loads(output)


def test_profile_reports_attribution_and_scheduler(tmp_path):
    code, output = run_cli("profile", "six-steps", "--until", "30",
                           "--top", "5")
    assert code == 0
    assert "flight recorder: six-steps" in output
    assert "attributed" in output and "kernel" in output
    assert "scheduler[calendar]:" in output
    assert "providers (sim-side service time):" in output
    # Detail mode: the dispatch cost is an explicit named row.
    assert "scheduler+dispatch" in output


def test_profile_json_is_canonical_and_attributed(tmp_path):
    db, report = _spill_six_steps(tmp_path)
    assert report["mode"] == "detail"
    # The >= 90% acceptance bar is gated on E-PROF's long run; a 30s run
    # pays proportionally more attach/report framing, so just require
    # that most of the wall clock landed in named rows.
    assert report["attributed_share"] >= 0.75
    assert report["events"] > 1000
    assert report["scheduler"]["kind"] == "calendar"


def test_profile_closes_store_when_the_run_fails(tmp_path, monkeypatch):
    # Regression: a scenario that raised mid-profile used to leave the
    # HistoryStore's WAL connection (and its lock on the history
    # database) open — found by the RES004 lifecycle lint. The handle
    # must be closed on the error path too.
    import repro.cli as cli_mod
    import repro.observability as obs

    created = []

    class RecordingStore(obs.HistoryStore):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            created.append(self)

    def explode(lab):
        raise RuntimeError("scenario exploded")

    monkeypatch.setattr(obs, "HistoryStore", RecordingStore)
    monkeypatch.setattr(cli_mod, "_run_six_steps", explode)
    with pytest.raises(RuntimeError, match="scenario exploded"):
        run_cli("profile", "six-steps", "--until", "5",
                "--spill", str(tmp_path / "hist.db"))
    assert len(created) == 1
    assert created[0]._conn is None


def test_history_series_matches_golden(tmp_path):
    db, _ = _spill_six_steps(tmp_path)
    code, output = run_cli(
        "history", "--db", db, "series", "--run", "six-steps-seed2009",
        "exertion.latency{host=browser-host}", "--json")
    assert code == 0
    assert output == (
        GOLDEN / "history_series_six_steps_seed2009.json").read_text()


def test_history_list_reflects_the_finished_run(tmp_path):
    db, report = _spill_six_steps(tmp_path)
    code, output = run_cli("history", "--db", db, "list", "--json")
    assert code == 0
    runs = json.loads(output)
    assert len(runs) == 1
    entry = runs[0]
    # Kernel internals in meta vary by scheduler choice; the stable
    # fields pin run identity and the sim-side outcome.
    assert entry["run_id"] == "six-steps-seed2009"
    assert entry["scenario"] == "six-steps" and entry["seed"] == 2009
    assert entry["sim_end"] == 30.0 and entry["finished"]
    assert entry["events"] == report["events"]


def test_history_stats_replays_percentiles(tmp_path):
    db, _ = _spill_six_steps(tmp_path)
    code, output = run_cli(
        "history", "--db", db, "stats", "--run", "six-steps-seed2009",
        "exertion.latency{host=browser-host}", "--json")
    assert code == 0
    stats = json.loads(output)
    assert stats["windows"] > 0
    assert stats["p95"] >= stats["p50"] > 0


def test_history_missing_db_and_run_error_cleanly(tmp_path):
    code, output = run_cli("history", "--db",
                           str(tmp_path / "nope.sqlite"), "list")
    assert code == 2 and "no history database" in output
    db, _ = _spill_six_steps(tmp_path)
    code, output = run_cli("history", "--db", db, "keys",
                           "--run", "ghost")
    assert code == 2 and "no run" in output


def test_load_curve_smoke_is_deterministic():
    _, first = run_cli("load", "--curve", "--smoke", "--duration", "2",
                       "--json")
    _, second = run_cli("load", "--curve", "--smoke", "--duration", "2",
                        "--json")
    assert first == second
    document = json.loads(first)
    assert [point["scale"] for point in document["points"]] == \
        [0.6, 1.2, 2.0]
