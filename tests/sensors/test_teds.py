"""Unit tests for the IEEE-1451-style TEDS model."""

import pytest

from repro.sensors import TransducerTEDS


def make_teds(**overrides):
    base = dict(manufacturer="Acme", model="T-100", serial_number="0001",
                version="1.0", quantity="temperature", unit="celsius",
                min_range=-40.0, max_range=125.0, accuracy=0.5,
                resolution=0.1)
    base.update(overrides)
    return TransducerTEDS(**base)


def test_valid_teds_fields():
    teds = make_teds()
    assert teds.quantity == "temperature" and teds.unit == "celsius"


def test_invalid_range_rejected():
    with pytest.raises(ValueError):
        make_teds(min_range=10.0, max_range=10.0)
    with pytest.raises(ValueError):
        make_teds(min_range=50.0, max_range=-50.0)


def test_negative_accuracy_or_resolution_rejected():
    with pytest.raises(ValueError):
        make_teds(accuracy=-0.1)
    with pytest.raises(ValueError):
        make_teds(resolution=-0.1)


def test_in_range_is_inclusive():
    teds = make_teds()
    assert teds.in_range(-40.0) and teds.in_range(125.0)
    assert teds.in_range(0.0)
    assert not teds.in_range(-40.001)
    assert not teds.in_range(125.001)


def test_clamp_to_range():
    teds = make_teds()
    assert teds.clamp(200.0) == 125.0
    assert teds.clamp(-200.0) == -40.0
    assert teds.clamp(20.5) == 20.5


def test_quantize_rounds_to_resolution():
    teds = make_teds(resolution=0.5)
    assert teds.quantize(20.3) == pytest.approx(20.5)
    assert teds.quantize(20.1) == pytest.approx(20.0)
    # Zero resolution means a perfect (unquantized) instrument.
    assert make_teds(resolution=0.0).quantize(20.123) == 20.123


def test_teds_is_immutable():
    teds = make_teds()
    with pytest.raises(Exception):
        teds.unit = "kelvin"
