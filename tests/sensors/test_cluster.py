"""Sensor clusters: collaborating motes behind one probe interface."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.sensors import (
    FaultInjector,
    FaultMode,
    HumidityProbe,
    PhysicalEnvironment,
    ProbeError,
    SensorCluster,
    TemperatureProbe,
)


@pytest.fixture
def sim_env():
    return Environment()


@pytest.fixture
def world():
    return PhysicalEnvironment(seed=12)


def members(sim_env, world, n=3, injectors=None):
    out = []
    for i in range(n):
        out.append(TemperatureProbe(
            sim_env, f"m{i}", world, (i * 5.0, 0.0),
            rng=np.random.default_rng(i), sensing_noise=0.0,
            fault_injector=(injectors or {}).get(i)))
    return out


def read(sim_env, cluster):
    return sim_env.run(until=sim_env.process(cluster.read()))


def test_cluster_validation(sim_env, world):
    with pytest.raises(ValueError):
        SensorCluster(sim_env, "c", [])
    temp = TemperatureProbe(sim_env, "t", world, (0, 0))
    hum = HumidityProbe(sim_env, "h", world, (0, 0))
    with pytest.raises(ValueError):
        SensorCluster(sim_env, "c", [temp, hum])
    with pytest.raises(ValueError):
        SensorCluster(sim_env, "c", [temp], min_members=2)


def test_cluster_mean_of_members(sim_env, world):
    probes = members(sim_env, world)
    cluster = SensorCluster(sim_env, "c1", probes)
    cluster.connect()
    reading = read(sim_env, cluster)
    truth = world.mean_over("temperature",
                            [(0, 0), (5, 0), (10, 0)], reading.timestamp)
    assert abs(reading.value - truth) < 1.0
    assert reading.quality == "good"
    assert reading.unit == "celsius"


def test_cluster_reads_members_concurrently(sim_env, world):
    probes = members(sim_env, world, n=4)
    for probe in probes:
        probe.read_latency = 1.0
    cluster = SensorCluster(sim_env, "c1", probes)
    cluster.connect()
    reading = read(sim_env, cluster)
    assert reading.timestamp == pytest.approx(1.0)  # not 4.0


def test_cluster_tolerates_member_dropout(sim_env, world):
    injector = FaultInjector(np.random.default_rng(0))
    injector.schedule(FaultMode.DROPOUT, start=0.0, end=1e9)
    probes = members(sim_env, world, injectors={1: injector})
    cluster = SensorCluster(sim_env, "c1", probes)
    cluster.connect()
    reading = read(sim_env, cluster)
    assert reading.quality == "suspect"
    assert cluster.member_failures == 1
    truth = world.mean_over("temperature", [(0, 0), (10, 0)],
                            reading.timestamp)
    assert abs(reading.value - truth) < 1.0


def test_cluster_min_members_enforced(sim_env, world):
    injectors = {}
    for i in (0, 1):
        inj = FaultInjector(np.random.default_rng(i))
        inj.schedule(FaultMode.DROPOUT, start=0.0, end=1e9)
        injectors[i] = inj
    probes = members(sim_env, world, injectors=injectors)
    cluster = SensorCluster(sim_env, "c1", probes, min_members=2)
    cluster.connect()
    with pytest.raises(ProbeError):
        read(sim_env, cluster)


def test_cluster_custom_reducer(sim_env, world):
    probes = members(sim_env, world)
    cluster = SensorCluster(sim_env, "c1", probes,
                            reducer=lambda v: float(np.max(v)))
    cluster.connect()
    reading = read(sim_env, cluster)
    singles = [world.sample("temperature", (i * 5.0, 0.0), reading.timestamp)
               for i in range(3)]
    assert reading.value == pytest.approx(max(singles), abs=0.5)


def test_cluster_behind_esp(sim_env, world):
    """A cluster plugs into an ESP exactly like a single probe (§V.B)."""
    from repro.jini import LookupService
    from repro.core import ElementarySensorProvider, SENSOR_DATA_ACCESSOR
    from repro.jini import ServiceTemplate
    net = Network(sim_env, rng=np.random.default_rng(3),
                  latency=FixedLatency(0.001))
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    probes = members(sim_env, world)
    cluster = SensorCluster(sim_env, "cluster-1", probes)
    esp = ElementarySensorProvider(Host(net, "esp-host"), "Cluster-Sensor",
                                   cluster, sample_interval=1.0)
    esp.start()
    sim_env.run(until=10.0)
    assert len(lus.lookup(ServiceTemplate.by_name("Cluster-Sensor"), 5)) == 1
    assert len(esp.buffer) >= 8
    assert esp.buffer.last().sensor_id == "cluster-1"
