"""Vectorized field sampling equivalence: ``sample_many`` must be
*bitwise* identical to per-probe ``sample`` loops — both with numpy array
ops and on the pure-python fallback — because sensor readings feed golden
snapshots where a 1-ulp drift is a visible diff.
"""

import math

import pytest

from repro.scenarios import grid_locations
from repro.sensors import FieldEvent, PhysicalEnvironment

TIMES = (0.0, 13.7, 120.0, 3599.5, 86399.5)


def _scalar_reference(world, quantity, locations, t):
    return [world.sample(quantity, loc, t) for loc in locations]


@pytest.mark.parametrize("quantity",
                         sorted(PhysicalEnvironment.DEFAULT_FIELDS))
def test_vectorized_bitwise_equals_scalar(quantity):
    world = PhysicalEnvironment(seed=7, vectorize=True)
    assert world.vectorize, "numpy expected in the test environment"
    locations = grid_locations(500)
    for t in TIMES:
        vector = world.sample_many(quantity, locations, t)
        scalar = _scalar_reference(world, quantity, locations, t)
        # == would accept -0.0 vs 0.0 and is False for NaN; compare the
        # actual bit patterns.
        assert [v.hex() for v in vector] == [s.hex() for s in scalar]


@pytest.mark.parametrize("quantity",
                         sorted(PhysicalEnvironment.DEFAULT_FIELDS))
def test_fallback_bitwise_equals_scalar(quantity):
    vectorized = PhysicalEnvironment(seed=7, vectorize=True)
    fallback = PhysicalEnvironment(seed=7, vectorize=False)
    locations = grid_locations(200)
    for t in TIMES:
        fast = vectorized.sample_many(quantity, locations, t)
        slow = fallback.sample_many(quantity, locations, t)
        assert [v.hex() for v in fast] == [s.hex() for s in slow]


def test_vectorized_with_active_events_bitwise():
    """Event contributions run scalar-side in both paths (math.hypot has
    no bitwise-equal numpy spelling) — including events contributing an
    exact 0.0, which must not flip any -0.0 signs."""
    world = PhysicalEnvironment(seed=11, vectorize=True)
    world.add_event(FieldEvent("temperature", center=(40.0, 40.0),
                               radius=35.0, delta=9.5, start=10.0, end=50.0))
    world.add_event(FieldEvent("temperature", center=(0.0, 0.0),
                               radius=5.0, delta=-2.0, start=0.0, end=1e9))
    locations = grid_locations(300)
    for t in (5.0, 12.0, 49.9, 60.0):
        vector = world.sample_many("temperature", locations, t)
        scalar = _scalar_reference(world, "temperature", locations, t)
        assert [v.hex() for v in vector] == [s.hex() for s in scalar]


def test_sample_many_unknown_quantity_raises():
    world = PhysicalEnvironment()
    with pytest.raises(KeyError):
        world.sample_many("plasma", [(0.0, 0.0)], 0.0)


def test_mean_over_uses_batch_path():
    world = PhysicalEnvironment(seed=3)
    locations = grid_locations(64)
    manual = sum(world.sample("temperature", loc, 42.0)
                 for loc in locations) / len(locations)
    assert world.mean_over("temperature", locations, 42.0) == \
        pytest.approx(manual)


def test_knot_cache_reuse_is_exact_across_ticks():
    """Inside one correlation window the cached knots must reproduce the
    uncached values exactly, tick after tick."""
    cached = PhysicalEnvironment(seed=5, vectorize=True)
    locations = grid_locations(100)
    for tick in range(12):
        t = float(tick)
        fresh = PhysicalEnvironment(seed=5, vectorize=True)
        a = cached.sample_many("temperature", locations, t)
        b = fresh.sample_many("temperature", locations, t)
        assert [x.hex() for x in a] == [y.hex() for y in b]


def test_knot_cache_prunes_old_generations():
    world = PhysicalEnvironment(seed=5, vectorize=False)
    tau = world.fields["temperature"].noise_tau
    for window in range(6):
        world.sample("temperature", (0.0, 0.0), window * tau + 1.0)
    indices = sorted(world._knots["temperature"])
    # Only the sliding window [k-1, k+1] of knot generations survives.
    assert len(indices) <= 3
    assert indices[-1] >= 6


def test_block_cache_keyed_by_identity_not_content():
    world = PhysicalEnvironment(seed=5, vectorize=True)
    locations = grid_locations(50)
    world.sample_many("temperature", locations, 1.0)
    assert id(locations) in world._blocks
    # A different list with equal content gets its own entry (id-reuse
    # safety comes from the strong reference held in the cache).
    clone = list(locations)
    world.sample_many("temperature", clone, 1.0)
    entry = world._blocks[id(clone)]
    assert entry[0] is clone


def test_probe_location_matches_grid_prefix():
    from repro.scenarios import probe_location
    for n in (1, 2, 3, 10, 65, 1000):
        locations = grid_locations(n)
        assert probe_location(n - 1) == locations[n - 1]


def test_sin_term_matches_math_module():
    """The diurnal term is computed scalar-side with math.sin; spot-check
    the composed value against a hand-built expression."""
    world = PhysicalEnvironment(seed=0, vectorize=True)
    spec = world.fields["light"]
    t = 4321.0
    expected = spec.base + spec.amplitude * math.sin(
        2.0 * math.pi * (t + spec.phase) / spec.period)
    no_noise = PhysicalEnvironment(seed=0, fields={
        "light": type(spec)(base=spec.base, unit=spec.unit,
                            amplitude=spec.amplitude, period=spec.period,
                            phase=spec.phase)})
    got = no_noise.sample_many("light", [(0.0, 0.0)], t)[0]
    assert got.hex() == float(expected).hex()
