"""ReadingBuffer unit + property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sensors import Reading, ReadingBuffer


def reading(value, t=0.0):
    return Reading(value=value, unit="c", timestamp=t, sensor_id="s")


def test_empty_buffer():
    buf = ReadingBuffer(4)
    assert len(buf) == 0
    assert buf.last() is None
    assert buf.stats() == {"count": 0, "mean": None, "min": None, "max": None,
                           "std": None}


def test_capacity_validation():
    with pytest.raises(ValueError):
        ReadingBuffer(0)


def test_append_and_last():
    buf = ReadingBuffer(4)
    buf.append(reading(1.0))
    buf.append(reading(2.0))
    assert len(buf) == 2
    assert buf.last().value == 2.0


def test_eviction_at_capacity():
    buf = ReadingBuffer(3)
    for i in range(5):
        buf.append(reading(float(i)))
    assert len(buf) == 3
    assert [r.value for r in buf.window(3)] == [2.0, 3.0, 4.0]
    assert buf.dropped == 2


def test_window_bounds():
    buf = ReadingBuffer(8)
    for i in range(5):
        buf.append(reading(float(i)))
    assert [r.value for r in buf.window(2)] == [3.0, 4.0]
    assert len(buf.window(100)) == 5
    assert buf.window(0) == []


def test_since_filters_by_time():
    buf = ReadingBuffer(8)
    for i in range(5):
        buf.append(reading(float(i), t=float(i * 10)))
    assert [r.value for r in buf.since(20.0)] == [2.0, 3.0, 4.0]


def test_stats_values():
    buf = ReadingBuffer(8)
    for v in (1.0, 2.0, 3.0, 4.0):
        buf.append(reading(v))
    stats = buf.stats()
    assert stats["count"] == 4
    assert stats["mean"] == 2.5
    assert stats["min"] == 1.0
    assert stats["max"] == 4.0
    assert stats["std"] == pytest.approx(np.std([1, 2, 3, 4]))


def test_stats_window_subset():
    buf = ReadingBuffer(8)
    for v in (10.0, 1.0, 2.0, 3.0):
        buf.append(reading(v))
    assert buf.stats(3)["mean"] == 2.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=64),
       st.integers(min_value=1, max_value=32))
def test_property_buffer_keeps_most_recent(values, capacity):
    buf = ReadingBuffer(capacity)
    for i, v in enumerate(values):
        buf.append(reading(v, t=float(i)))
    expected = values[-capacity:]
    assert list(buf.values()) == expected
    assert len(buf) == min(len(values), capacity)
    assert buf.last().value == values[-1]


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False), min_size=1, max_size=40))
def test_property_stats_match_numpy(values):
    buf = ReadingBuffer(64)
    for v in values:
        buf.append(reading(v))
    stats = buf.stats()
    assert stats["mean"] == pytest.approx(float(np.mean(values)))
    assert stats["min"] == min(values)
    assert stats["max"] == max(values)
