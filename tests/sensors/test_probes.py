"""Probe drivers, calibration, TEDS, faults, Sun SPOT device."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.sensors import (
    BatteryExhausted,
    Calibration,
    CalibrationTable,
    FaultInjector,
    FaultMode,
    HumidityProbe,
    LightProbe,
    PhysicalEnvironment,
    PressureProbe,
    ProbeError,
    ProbeNotConnected,
    SunSpotDevice,
    SunSpotTemperatureProbe,
    TemperatureProbe,
    TransducerTEDS,
)


@pytest.fixture
def sim_env():
    return Environment()


@pytest.fixture
def world():
    return PhysicalEnvironment(seed=5)


def read_once(sim_env, probe):
    p = sim_env.process(probe.read())
    return sim_env.run(until=p)


def test_read_requires_connect(sim_env, world):
    probe = TemperatureProbe(sim_env, "t1", world, (0, 0))
    with pytest.raises(ProbeNotConnected):
        # read() raises before the first yield, at generator creation time
        # via next(); drive it through the kernel.
        sim_env.run(until=sim_env.process(probe.read()))


def test_temperature_read_close_to_ground_truth(sim_env, world):
    probe = TemperatureProbe(sim_env, "t1", world, (2.0, 3.0),
                             rng=np.random.default_rng(1))
    probe.connect()
    reading = read_once(sim_env, probe)
    truth = world.sample("temperature", (2.0, 3.0), reading.timestamp)
    assert abs(reading.value - truth) < 1.0
    assert reading.unit == "celsius"
    assert reading.quality == "good"
    assert reading.sensor_id == "t1"


def test_read_takes_latency(sim_env, world):
    probe = TemperatureProbe(sim_env, "t1", world, (0, 0), read_latency=0.5)
    probe.connect()
    reading = read_once(sim_env, probe)
    assert reading.timestamp == pytest.approx(0.5)


def test_quantization_to_resolution(sim_env, world):
    probe = TemperatureProbe(sim_env, "t1", world, (0, 0),
                             rng=np.random.default_rng(2))
    probe.connect()
    reading = read_once(sim_env, probe)
    steps = reading.value / 0.0625
    assert steps == pytest.approx(round(steps))


def test_out_of_range_clamped(sim_env, world):
    # Gain of 100 pushes everything far beyond the 85C limit.
    probe = TemperatureProbe(sim_env, "t1", world, (0, 0),
                             calibration=Calibration(gain=100.0))
    probe.connect()
    reading = read_once(sim_env, probe)
    assert reading.value == 85.0
    assert reading.quality == "clamped"


def test_all_driver_quantities(sim_env, world):
    probes = [
        TemperatureProbe(sim_env, "t", world, (0, 0)),
        HumidityProbe(sim_env, "h", world, (0, 0)),
        LightProbe(sim_env, "l", world, (0, 0)),
        PressureProbe(sim_env, "p", world, (0, 0)),
    ]
    for probe in probes:
        probe.connect()
        reading = read_once(sim_env, probe)
        assert probe.teds.in_range(reading.value)
    units = [p.teds.unit for p in probes]
    assert units == ["celsius", "percent", "lux", "hpa"]


def test_affine_calibration():
    cal = Calibration(gain=2.0, offset=1.0)
    assert cal.apply(10.0) == 21.0
    assert cal.invert(21.0) == 10.0
    with pytest.raises(ValueError):
        Calibration(gain=0.0)


def test_calibration_table_interpolates():
    table = CalibrationTable([(0, 0), (10, 20), (20, 30)])
    assert table.apply(5) == 10.0
    assert table.apply(15) == 25.0
    # Extrapolation continues the end segments.
    assert table.apply(-5) == -10.0
    assert table.apply(25) == 35.0


def test_calibration_table_validation():
    with pytest.raises(ValueError):
        CalibrationTable([(0, 0)])
    with pytest.raises(ValueError):
        CalibrationTable([(1, 0), (0, 1)])
    with pytest.raises(ValueError):
        CalibrationTable([(0, 0), (0, 1)])


def test_teds_validation():
    with pytest.raises(ValueError):
        TransducerTEDS("m", "m", "s", "v", "q", "u", 10.0, 5.0, 0.1, 0.1)
    with pytest.raises(ValueError):
        TransducerTEDS("m", "m", "s", "v", "q", "u", 0.0, 5.0, -0.1, 0.1)


def test_fault_dropout_window(sim_env, world):
    injector = FaultInjector(np.random.default_rng(0))
    injector.schedule(FaultMode.DROPOUT, start=0.0, end=10.0)
    probe = TemperatureProbe(sim_env, "t1", world, (0, 0),
                             fault_injector=injector)
    probe.connect()

    def proc():
        try:
            yield from probe.read()
        except ProbeError:
            pass
        yield sim_env.timeout(15.0)  # window over
        reading = yield from probe.read()
        return reading

    reading = sim_env.run(until=sim_env.process(proc()))
    assert reading is not None
    assert probe.read_errors == 1


def test_fault_stuck_repeats_last_value(sim_env, world):
    injector = FaultInjector(np.random.default_rng(0))
    injector.schedule(FaultMode.STUCK, start=5.0, end=100.0)
    probe = TemperatureProbe(sim_env, "t1", world, (0, 0),
                             rng=np.random.default_rng(3),
                             fault_injector=injector)
    probe.connect()

    def proc():
        first = yield from probe.read()        # t<5: healthy
        yield sim_env.timeout(30.0)
        second = yield from probe.read()       # stuck window
        yield sim_env.timeout(30.0)
        third = yield from probe.read()        # still stuck
        return first, second, third

    first, second, third = sim_env.run(until=sim_env.process(proc()))
    assert second.value == first.value
    assert third.value == first.value


def test_fault_noisy_increases_spread(sim_env, world):
    calm_env = PhysicalEnvironment(seed=5, fields={
        "temperature": PhysicalEnvironment.DEFAULT_FIELDS["temperature"]})
    injector = FaultInjector(np.random.default_rng(0), noisy_sigma=50.0)
    injector.schedule(FaultMode.NOISY, start=0.0, end=1e9)
    noisy = TemperatureProbe(sim_env, "noisy", calm_env, (0, 0),
                             rng=np.random.default_rng(4),
                             fault_injector=injector)
    clean = TemperatureProbe(sim_env, "clean", calm_env, (0, 0),
                             rng=np.random.default_rng(4))
    noisy.connect()
    clean.connect()

    def collect(probe, out):
        for _ in range(30):
            reading = yield from probe.read()
            out.append(reading.value)
            yield sim_env.timeout(10.0)

    noisy_vals, clean_vals = [], []
    sim_env.process(collect(noisy, noisy_vals))
    sim_env.process(collect(clean, clean_vals))
    sim_env.run()
    assert np.std(noisy_vals) > 3 * np.std(clean_vals)


def test_fault_hazard_rates_seeded():
    injector = FaultInjector(np.random.default_rng(9), dropout_rate=0.5,
                             hold=1.0)
    modes = [injector.mode_at(float(t * 10)) for t in range(50)]
    assert FaultMode.DROPOUT in modes
    assert FaultMode.OK in modes


def test_fault_hazard_drawn_once_per_timestamp():
    # Two queries at the same sim time must see one consistent decision,
    # not two independent hazard rolls.
    injector = FaultInjector(np.random.default_rng(3), dropout_rate=0.4,
                             hold=0.5)
    for t in range(100):
        first = injector.mode_at(float(t))
        second = injector.mode_at(float(t))
        assert first is second


def test_fault_hazard_idempotence_matches_single_query_trace():
    # Double-querying every timestamp yields the same trace as querying
    # each timestamp once — the RNG advances once per distinct t.
    single = FaultInjector(np.random.default_rng(7), dropout_rate=0.3,
                           stuck_rate=0.2, hold=0.5)
    double = FaultInjector(np.random.default_rng(7), dropout_rate=0.3,
                           stuck_rate=0.2, hold=0.5)
    trace_single = [single.mode_at(float(t)) for t in range(60)]
    trace_double = []
    for t in range(60):
        double.mode_at(float(t))
        trace_double.append(double.mode_at(float(t)))
    assert trace_single == trace_double


def test_sunspot_reads_and_drains_battery(sim_env, world):
    device = SunSpotDevice(sim_env, "neem", battery_mah=720.0)
    probe = SunSpotTemperatureProbe(sim_env, device, world, (1, 1),
                                    rng=np.random.default_rng(5))
    probe.connect()
    before = device.battery_fraction
    reading = read_once(sim_env, probe)
    assert device.battery_fraction < before
    assert device.total_reads == 1
    truth = world.sample("temperature", (1, 1), reading.timestamp)
    assert abs(reading.value - truth) < 1.5  # self-heating + noise


def test_sunspot_battery_exhaustion(sim_env, world):
    device = SunSpotDevice(sim_env, "tiny", battery_mah=0.01,
                           read_cost_mah=0.005, radio_cost_mah=0.0)
    probe = SunSpotTemperatureProbe(sim_env, device, world, (0, 0))
    probe.connect()

    def proc():
        ok = 0
        try:
            for _ in range(10):
                yield from probe.read()
                ok += 1
        except BatteryExhausted:
            return ok
        return ok

    ok = sim_env.run(until=sim_env.process(proc()))
    assert ok == 2
    device.recharge()
    assert device.battery_fraction == 1.0


def test_sunspot_idle_drain(sim_env):
    device = SunSpotDevice(sim_env, "idle", battery_mah=1.0, idle_drain_ma=1.0)

    def proc():
        yield sim_env.timeout(1800.0)  # half an hour -> 0.5 mAh gone

    sim_env.run(until=sim_env.process(proc()))
    assert device.battery_fraction == pytest.approx(0.5)
