"""Legacy binary-protocol wrapping (§II.3): probe speaks, ESP is oblivious."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService, SensorType, ServiceTemplate
from repro.sensors import (
    LegacyFieldStation,
    LegacyProtocolProbe,
    PhysicalEnvironment,
    ProbeError,
)
from repro.core import ElementarySensorProvider, SENSOR_DATA_ACCESSOR


@pytest.fixture
def setup():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(83),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=83)
    station_host = Host(net, "station")
    station = LegacyFieldStation(station_host, world, (7.0, 3.0),
                                 ident="FS-90/42")
    gateway = Host(net, "gateway")
    return env, net, world, station, gateway


def read(env, probe):
    return env.run(until=env.process(probe.read()))


def test_read_temperature_register(setup):
    env, net, world, station, gateway = setup
    probe = LegacyProtocolProbe(env, "legacy-1", gateway, "station")
    probe.connect()
    reading = read(env, probe)
    truth = world.sample("temperature", (7.0, 3.0), 0.0)
    # Protocol scales by 100 -> two decimal places survive the wire.
    assert abs(reading.value - truth) < 0.02
    assert reading.unit == "celsius"
    assert station.commands_served == 1


def test_other_registers(setup):
    env, net, world, station, gateway = setup
    humidity = LegacyProtocolProbe(env, "legacy-h", gateway, "station",
                                   register=0x02)
    pressure = LegacyProtocolProbe(env, "legacy-p", gateway, "station",
                                   register=0x03)
    humidity.connect()
    pressure.connect()
    rh = read(env, humidity)
    rp = read(env, pressure)
    assert rh.unit == "percent"
    assert rp.unit == "hpa"
    assert abs(rh.value - world.sample("humidity", (7, 3), rh.timestamp)) < 0.02
    assert abs(rp.value - world.sample("pressure", (7, 3), rp.timestamp)) < 0.02


def test_unknown_register_rejected(setup):
    env, net, world, station, gateway = setup
    with pytest.raises(ValueError):
        LegacyProtocolProbe(env, "bad", gateway, "station", register=0x99)


def test_ident_command(setup):
    env, net, world, station, gateway = setup
    probe = LegacyProtocolProbe(env, "legacy-1", gateway, "station")
    ident = env.run(until=env.process(probe.identify()))
    assert ident == "FS-90/42"


def test_dead_station_times_out(setup):
    env, net, world, station, gateway = setup
    probe = LegacyProtocolProbe(env, "legacy-1", gateway, "station",
                                reply_timeout=0.5)
    probe.connect()
    station.host.fail()

    def proc():
        try:
            yield from probe.read()
        except ProbeError:
            return env.now

    when = env.run(until=env.process(proc()))
    assert when == pytest.approx(0.5)


def test_two_probes_share_one_gateway(setup):
    env, net, world, station, gateway = setup
    p1 = LegacyProtocolProbe(env, "legacy-t", gateway, "station",
                             register=0x01)
    p2 = LegacyProtocolProbe(env, "legacy-h", gateway, "station",
                             register=0x02)
    p1.connect()
    p2.connect()

    def proc():
        procs = [env.process(p1.read()), env.process(p2.read())]
        results = yield env.all_of(procs)
        return results

    r1, r2 = env.run(until=env.process(proc()))
    assert r1.unit == "celsius" and r2.unit == "percent"


def test_legacy_probe_behind_unmodified_esp(setup):
    """The §II.3 punchline: the ESP needs zero changes for legacy gear."""
    env, net, world, station, gateway = setup
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    probe = LegacyProtocolProbe(env, "legacy-1", gateway, "station")
    esp = ElementarySensorProvider(gateway, "Legacy-Station", probe,
                                   sample_interval=1.0,
                                   technology="fs90-serial")
    esp.start()
    env.run(until=10.0)
    items = lus.lookup(ServiceTemplate(attributes=(
        SensorType(technology="fs90-serial"),)), 5)
    assert len(items) == 1
    assert len(esp.buffer) >= 8
    last = esp.buffer.last()
    assert abs(last.value - world.sample("temperature", (7, 3),
                                         last.timestamp)) < 0.5
