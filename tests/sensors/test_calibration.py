"""Unit tests for affine and piecewise-linear probe calibration."""

import pytest

from repro.sensors import Calibration, CalibrationTable


def test_affine_apply_and_invert_round_trip():
    cal = Calibration(gain=2.0, offset=-1.0)
    assert cal.apply(3.0) == 5.0
    assert cal.invert(5.0) == 3.0
    for raw in (-10.0, 0.0, 0.123, 42.0):
        assert cal.invert(cal.apply(raw)) == pytest.approx(raw)


def test_identity_is_the_default():
    cal = Calibration()
    assert cal.apply(7.5) == 7.5


def test_zero_gain_rejected():
    with pytest.raises(ValueError):
        Calibration(gain=0.0)


def test_table_interpolates_between_points():
    # A thermistor-like non-linear response.
    table = CalibrationTable([(0.0, -10.0), (1.0, 0.0), (2.0, 30.0)])
    assert table.apply(0.5) == pytest.approx(-5.0)
    assert table.apply(1.5) == pytest.approx(15.0)
    # Exact knots map exactly.
    assert table.apply(1.0) == 0.0


def test_table_extrapolates_with_edge_slopes():
    table = CalibrationTable([(0.0, 0.0), (1.0, 10.0), (2.0, 40.0)])
    assert table.apply(-1.0) == pytest.approx(-10.0)  # first-segment slope
    assert table.apply(3.0) == pytest.approx(70.0)    # last-segment slope


def test_table_needs_two_increasing_points():
    with pytest.raises(ValueError):
        CalibrationTable([(0.0, 1.0)])
    with pytest.raises(ValueError):
        CalibrationTable([(1.0, 0.0), (0.0, 1.0)])  # decreasing raws
    with pytest.raises(ValueError):
        CalibrationTable([(1.0, 0.0), (1.0, 1.0)])  # duplicate raws
