"""Physical environment model."""

import math

import pytest

from repro.sensors import FieldEvent, FieldSpec, PhysicalEnvironment


def test_sample_deterministic():
    e1 = PhysicalEnvironment(seed=42)
    e2 = PhysicalEnvironment(seed=42)
    for t in (0.0, 100.0, 12345.6):
        assert e1.sample("temperature", (3.0, 4.0), t) == \
            e2.sample("temperature", (3.0, 4.0), t)


def test_different_seeds_differ():
    e1 = PhysicalEnvironment(seed=1)
    e2 = PhysicalEnvironment(seed=2)
    samples1 = [e1.sample("temperature", (0, 0), t) for t in range(0, 600, 60)]
    samples2 = [e2.sample("temperature", (0, 0), t) for t in range(0, 600, 60)]
    assert samples1 != samples2


def test_unknown_quantity_raises():
    env = PhysicalEnvironment()
    with pytest.raises(KeyError):
        env.sample("radiation", (0, 0), 0.0)


def test_gradient_shifts_by_location():
    env = PhysicalEnvironment(seed=0, fields={
        "flat": FieldSpec(base=10.0, unit="x", gradient=(1.0, 0.0))})
    v0 = env.sample("flat", (0.0, 0.0), 0.0)
    v5 = env.sample("flat", (5.0, 0.0), 0.0)
    assert v5 - v0 == pytest.approx(5.0)


def test_diurnal_cycle():
    env = PhysicalEnvironment(seed=0, fields={
        "wave": FieldSpec(base=0.0, unit="x", amplitude=10.0, period=100.0)})
    assert env.sample("wave", (0, 0), 25.0) == pytest.approx(10.0)
    assert env.sample("wave", (0, 0), 75.0) == pytest.approx(-10.0)
    assert env.sample("wave", (0, 0), 50.0) == pytest.approx(0.0, abs=1e-9)


def test_noise_is_continuous():
    env = PhysicalEnvironment(seed=7, fields={
        "noisy": FieldSpec(base=0.0, unit="x", noise_sigma=1.0, noise_tau=60.0)})
    a = env.sample("noisy", (0, 0), 100.0)
    b = env.sample("noisy", (0, 0), 100.5)
    assert abs(a - b) < 0.2  # within one knot, near-linear


def test_noise_bounded_statistics():
    env = PhysicalEnvironment(seed=7, fields={
        "noisy": FieldSpec(base=0.0, unit="x", noise_sigma=1.0, noise_tau=10.0)})
    samples = [env.sample("noisy", (0, 0), t * 10.0) for t in range(500)]
    mean = sum(samples) / len(samples)
    assert abs(mean) < 0.3


def test_event_applies_within_radius_and_window():
    env = PhysicalEnvironment(seed=0, fields={
        "flat": FieldSpec(base=0.0, unit="x")})
    env.add_event(FieldEvent("flat", center=(0, 0), radius=10.0, delta=5.0,
                             start=100.0, end=200.0))
    assert env.sample("flat", (0, 0), 150.0) == pytest.approx(5.0)
    # Linear falloff with distance.
    assert env.sample("flat", (5, 0), 150.0) == pytest.approx(2.5)
    # Outside radius / outside window: no effect.
    assert env.sample("flat", (20, 0), 150.0) == 0.0
    assert env.sample("flat", (0, 0), 50.0) == 0.0
    assert env.sample("flat", (0, 0), 250.0) == 0.0


def test_event_for_unknown_quantity_rejected():
    env = PhysicalEnvironment()
    with pytest.raises(KeyError):
        env.add_event(FieldEvent("plasma", (0, 0), 1.0, 1.0, 0.0, 1.0))


def test_mean_over_matches_manual():
    env = PhysicalEnvironment(seed=3)
    locations = [(0, 0), (10, 5), (-3, 8)]
    manual = sum(env.sample("temperature", loc, 42.0)
                 for loc in locations) / 3
    assert env.mean_over("temperature", locations, 42.0) == pytest.approx(manual)


def test_default_fields_present():
    env = PhysicalEnvironment()
    for quantity in ("temperature", "humidity", "light", "pressure"):
        value = env.sample(quantity, (0, 0), 0.0)
        assert isinstance(value, float)
    assert env.unit_of("temperature") == "celsius"


def test_custom_field_definition():
    env = PhysicalEnvironment()
    env.define_field("co2", FieldSpec(base=410.0, unit="ppm"))
    assert env.sample("co2", (0, 0), 0.0) == pytest.approx(410.0)
