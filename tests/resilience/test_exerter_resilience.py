"""Exerter-level resilience: deadlines, breakers and retry backoff in situ."""

import pytest

from repro.net import Host
from repro.resilience import (
    DEADLINE_PATH,
    BreakerState,
    Deadline,
    RetryPolicy,
    resilience_events,
)
from repro.sorcer import Exerter, ServiceContext, Signature, Task, Tasker


class EchoProvider(Tasker):
    SERVICE_TYPES = ("Echo",)

    def __init__(self, host, name="Echo", **kw):
        super().__init__(host, name, **kw)
        self.add_operation("echo", self._echo)

    def _echo(self, ctx):
        return ctx.get_value("arg/x")


def echo_task(name="t", x=7, deadline=None, retries=2, timeout=2.0):
    ctx = ServiceContext()
    ctx.put_in_value("arg/x", x)
    task = Task(name, Signature("Echo", "echo"), ctx)
    task.control.retries = retries
    task.control.invocation_timeout = timeout
    task.control.provider_wait = 2.0
    task.control.deadline = deadline
    return task


def start_echo(net, host_name="echo-host", name="Echo"):
    host = Host(net, host_name)
    provider = EchoProvider(host, name)
    provider.start()
    return host, provider


def exert_after_settle(env, exerter, task, settle=2.0):
    def proc():
        yield env.timeout(settle)
        result = yield env.process(exerter.exert(task))
        return result
    return env.run(until=env.process(proc()))


def test_deadline_forwarded_in_service_context(grid):
    env, net, lus = grid
    start_echo(net)
    exerter = Exerter(Host(net, "client"))
    deadline = Deadline(expires_at=50.0)
    result = exert_after_settle(env, exerter,
                                echo_task(deadline=deadline))
    assert result.is_done
    # The absolute expiry crossed the provider boundary in the context.
    assert result.context.get_value(DEADLINE_PATH) == 50.0


def test_deadline_expiry_fails_without_burning_full_timeouts(grid):
    env, net, lus = grid
    host, provider = start_echo(net)
    exerter = Exerter(Host(net, "client"))

    def proc():
        yield env.timeout(2.0)
        host.fail()
        deadline = Deadline.after(env.now, 3.0)
        task = echo_task(deadline=deadline, retries=5, timeout=2.0)
        t0 = env.now
        result = yield env.process(exerter.exert(task))
        return result, env.now - t0

    result, elapsed = env.run(until=env.process(proc()))
    assert result.is_failed
    # Without the deadline: 6 attempts x 2s plus backoff would be > 12s.
    assert elapsed <= 3.0 + 1e-9
    events = resilience_events(net)
    assert events.count("deadline_exceeded") >= 1


def test_breaker_opens_and_deadline_caller_fails_fast(grid):
    env, net, lus = grid
    host, provider = start_echo(net)
    exerter = Exerter(Host(net, "client"))
    events = resilience_events(net)

    def proc():
        yield env.timeout(2.0)
        host.fail()
        # Three timed-out attempts open the breaker (threshold 3).
        task = echo_task(deadline=Deadline.after(env.now, 30.0),
                         retries=2, timeout=1.0)
        yield env.process(exerter.exert(task))
        assert exerter.breakers.snapshot() == {provider.service_id: "open"}
        # A second call now fails instantly — no timeout is burned.
        t0 = env.now
        result = yield env.process(
            exerter.exert(echo_task(name="t2",
                                    deadline=Deadline.after(env.now, 30.0))))
        return result, env.now - t0

    result, elapsed = env.run(until=env.process(proc()))
    assert result.is_failed
    assert "open-circuit" in result.exceptions[0]
    assert elapsed < 0.1
    assert events.count("breaker_skip") >= 1
    assert events.count("breaker_open") >= 1


def test_patient_caller_probes_open_breaker(grid):
    env, net, lus = grid
    host, provider = start_echo(net)
    exerter = Exerter(Host(net, "client"))
    events = resilience_events(net)

    def proc():
        yield env.timeout(2.0)
        host.fail()
        # Open the breaker with a deadline-carrying call...
        yield env.process(exerter.exert(
            echo_task(deadline=Deadline.after(env.now, 10.0),
                      retries=2, timeout=1.0)))
        assert exerter.breakers.state_of(provider.service_id) \
            is BreakerState.OPEN
        host.recover()
        yield env.timeout(0.5)
        # ...then a patient call (no deadline) gets through regardless:
        # the open breaker is probed instead of refusing outright.
        result = yield env.process(
            exerter.exert(echo_task(name="patient", retries=2, timeout=2.0)))
        return result

    result = env.run(until=env.process(proc()))
    assert result.is_done
    assert result.get_return_value() == 7
    assert events.count("breaker_forced_probe") >= 1
    # The successful probe closed the breaker again.
    assert exerter.breakers.state_of(provider.service_id) \
        is BreakerState.CLOSED


def test_retries_back_off_exponentially(grid):
    env, net, lus = grid
    host, provider = start_echo(net)
    exerter = Exerter(Host(net, "client"))
    events = resilience_events(net)

    def proc():
        yield env.timeout(2.0)
        host.fail()
        task = echo_task(retries=3, timeout=1.0)
        task.control.backoff = RetryPolicy(base_delay=0.5, multiplier=2.0,
                                           max_delay=8.0, jitter=0.0)
        yield env.process(exerter.exert(task))

    env.run(until=env.process(proc()))
    delays = [dict(fields)["delay"]
              for (_t, kind, fields) in events.trace
              if kind == "retry_scheduled"]
    assert delays[:3] == [0.5, 1.0, 2.0]


def test_identical_seeds_identical_event_traces():
    """The acceptance bar: same scenario, same seed => same trace."""
    def run_once():
        import numpy as np

        from repro.jini import LookupService
        from repro.net import FixedLatency, Network
        from repro.sim import Environment

        env = Environment()
        net = Network(env, rng=np.random.default_rng(23),
                      latency=FixedLatency(0.001))
        lus = LookupService(Host(net, "lus-host"))
        lus.start()
        host, provider = start_echo(net)
        exerter = Exerter(Host(net, "client"))

        def proc():
            yield env.timeout(2.0)
            host.fail()
            yield env.process(exerter.exert(
                echo_task(deadline=Deadline.after(env.now, 12.0),
                          retries=3, timeout=1.0)))
            host.recover()
            yield env.timeout(15.0)
            yield env.process(exerter.exert(echo_task(name="again")))

        env.run(until=env.process(proc()))
        return resilience_events(net).trace

    first, second = run_once(), run_once()
    assert first == second
    assert len(first) > 0


# -- heal-time probe regression: RemoteError must release the probe slot ----------


class FlakyProvider(Tasker):
    """Echo provider whose ``boom`` op raises server-side."""

    SERVICE_TYPES = ("Echo",)

    def __init__(self, host, name="Echo", **kw):
        super().__init__(host, name, **kw)
        self.add_operation("echo", lambda ctx: ctx.get_value("arg/x"))
        self.add_operation("boom", self._boom)

    def _boom(self, ctx):
        raise RuntimeError("application bug, host is fine")


def test_remote_error_probe_does_not_wedge_breaker(grid):
    """Reproduces the stuck-at-heal bug: the breaker opens while the host
    is down; the host heals; the first (half-open) probe reaches the
    provider but fails *server-side* (RemoteError). The host answered, so
    the breaker must close and release the probe slot — before the fix the
    slot stayed pinned and every later call was refused."""
    env, net, lus = grid
    host = Host(net, "echo-host")
    provider = FlakyProvider(host)
    provider.start()
    exerter = Exerter(Host(net, "client"))

    def boom_task(name="boom-task"):
        ctx = ServiceContext()
        ctx.put_in_value("arg/x", 0)
        task = Task(name, Signature("Echo", "boom"), ctx)
        task.control.retries = 0
        task.control.invocation_timeout = 1.0
        task.control.provider_wait = 2.0
        return task

    def proc():
        yield env.timeout(2.0)
        host.fail()
        # Open the breaker: three timed-out attempts while the host is down.
        yield env.process(exerter.exert(
            echo_task(deadline=Deadline.after(env.now, 8.0),
                      retries=2, timeout=1.0)))
        assert exerter.breakers.snapshot() == {provider.service_id: "open"}
        host.recover()
        yield env.timeout(12.0)   # past reset_timeout: next call is a probe
        # The healed host answers the probe with a server-side failure.
        result = yield env.process(exerter.exert(boom_task()))
        assert result.is_failed
        assert exerter.breakers.snapshot() == {provider.service_id: "closed"}
        # The slot was released: an ordinary call goes straight through.
        t0 = env.now
        result = yield env.process(exerter.exert(echo_task(name="after", x=9)))
        return result, env.now - t0

    result, elapsed = env.run(until=env.process(proc()))
    assert result.is_done
    assert elapsed < 1.0


def test_drained_retry_budget_stops_retries(grid):
    """With no retry tokens, a failing exertion gets its first attempt
    and nothing more — the storm-amplification cap."""
    from repro.resilience import retry_budget_of
    env, net, lus = grid
    host, provider = start_echo(net)
    client = Host(net, "client")
    budget = retry_budget_of(client)
    budget.tokens = 0.0
    exerter = Exerter(client)
    events = resilience_events(net)
    seen = []
    events.subscribe(lambda name, fields: seen.append(name))

    def proc():
        yield env.timeout(2.0)
        host.fail()
        task = echo_task(retries=4, timeout=1.0)
        result = yield env.process(exerter.exert(task))
        return result

    result = env.run(until=env.process(proc()))
    assert result.is_failed
    assert "retry_budget_exhausted" in seen
    assert "retry_scheduled" not in seen
    assert budget.denied >= 1 and budget.spent == 0


def test_successes_fund_the_retry_budget(grid):
    from repro.resilience import retry_budget_of
    env, net, lus = grid
    start_echo(net)
    client = Host(net, "client")
    budget = retry_budget_of(client)
    budget.tokens = 0.0
    exerter = Exerter(client)
    result = exert_after_settle(env, exerter, echo_task())
    assert result.is_done
    assert budget.tokens == pytest.approx(budget.deposit_ratio)
