"""Tests for Deadline arithmetic and the event stream."""

import pytest

from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    ResilienceEvents,
    resilience_events,
)
from repro.sim import Environment


def test_after_and_remaining():
    d = Deadline.after(10.0, 5.0)
    assert d.expires_at == 15.0
    assert d.remaining(12.0) == pytest.approx(3.0)
    assert d.remaining(20.0) == 0.0


def test_negative_budget_clamped_to_now():
    d = Deadline.after(10.0, -3.0)
    assert d.expires_at == 10.0
    assert d.expired(10.0)


def test_expired_boundary():
    d = Deadline(expires_at=5.0)
    assert not d.expired(4.999)
    assert d.expired(5.0)


def test_clamp_takes_smaller_of_timeout_and_remaining():
    d = Deadline(expires_at=10.0)
    assert d.clamp(4.0, 3.0) == 4.0    # plenty of budget left
    assert d.clamp(4.0, 8.0) == 2.0    # budget is tighter
    assert d.clamp(4.0, 12.0) == 0.0   # already expired


def test_check_raises_with_context():
    d = Deadline(expires_at=5.0)
    d.check(4.0)  # fine
    with pytest.raises(DeadlineExceeded, match="composite read"):
        d.check(6.0, what="composite read")


def test_events_trace_is_clock_stamped():
    env = Environment()
    events = ResilienceEvents(env)
    events.emit("retry_scheduled", attempt=0)
    env.run(until=2.5)
    events.emit("breaker_open", key="esp-1")
    assert events.count("retry_scheduled") == 1
    assert events.count("breaker_open") == 1
    assert events.trace == [
        (0.0, "retry_scheduled", (("attempt", 0),)),
        (2.5, "breaker_open", (("key", "esp-1"),)),
    ]


def test_resilience_events_singleton_per_network():
    import numpy as np

    from repro.net import FixedLatency, Network

    env = Environment()
    net = Network(env, rng=np.random.default_rng(1),
                  latency=FixedLatency(0.001))
    assert resilience_events(net) is resilience_events(net)
