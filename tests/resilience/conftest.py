"""Shared fixtures for resilience-layer tests: a small running grid."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return Network(env, rng=np.random.default_rng(17), latency=FixedLatency(0.001))


@pytest.fixture
def grid(env, net):
    """Network with one started LUS; returns (env, net, lus)."""
    lus_host = Host(net, "lus-host")
    lus = LookupService(lus_host)
    lus.start()
    return env, net, lus
