"""RetryBudget: retries are capped in volume, refilled by successes."""

import pytest

from repro.resilience import RetryBudget, retry_budget_of


def test_budget_spends_down_to_zero_then_denies():
    budget = RetryBudget(initial=2.0, deposit_ratio=0.1, cap=10.0)
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()
    assert budget.spent == 2 and budget.denied == 1


def test_successes_earn_retries_back():
    budget = RetryBudget(initial=0.0, deposit_ratio=0.25, cap=10.0)
    assert not budget.try_spend()
    for _ in range(4):
        budget.deposit()
    assert budget.try_spend()
    assert not budget.try_spend()


def test_deposits_cap_at_the_ceiling():
    budget = RetryBudget(initial=5.0, deposit_ratio=1.0, cap=5.0)
    for _ in range(100):
        budget.deposit()
    assert budget.tokens == 5.0


def test_steady_state_retry_fraction_is_bounded():
    """N successes fund at most N * deposit_ratio retries — the storm cap."""
    budget = RetryBudget(initial=0.0, deposit_ratio=0.25, cap=1000.0)
    successes = 200
    for _ in range(successes):
        budget.deposit()
    retries = 0
    while budget.try_spend():
        retries += 1
    assert retries == int(successes * 0.25)


def test_snapshot_shape():
    budget = RetryBudget(initial=3.0)
    budget.try_spend()
    assert budget.snapshot() == {"tokens": 2.0, "cap": 100.0,
                                 "deposit_ratio": 0.1, "spent": 1,
                                 "denied": 0}


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        RetryBudget(initial=-1.0)
    with pytest.raises(ValueError):
        RetryBudget(cap=0.0)
    with pytest.raises(ValueError):
        RetryBudget(deposit_ratio=1.5)


def test_budget_shared_per_host():
    class FakeHost:
        pass

    host = FakeHost()
    first = retry_budget_of(host)
    first.try_spend()
    second = retry_budget_of(host)
    assert second is first
    assert second.spent == 1
    assert retry_budget_of(FakeHost()) is not first
