"""Tests for RetryPolicy and the stable jitter RNG."""

import pytest

from repro.resilience import RetryPolicy, backoff_rng


def test_delay_grows_exponentially_without_jitter():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                         jitter=0.0)
    assert policy.delay(0) == pytest.approx(0.1)
    assert policy.delay(1) == pytest.approx(0.2)
    assert policy.delay(2) == pytest.approx(0.4)
    assert policy.delay(5) == pytest.approx(3.2)


def test_delay_capped_at_max():
    policy = RetryPolicy(base_delay=1.0, multiplier=3.0, max_delay=5.0,
                         jitter=0.0)
    assert policy.delay(10) == 5.0


def test_jitter_shaves_down_never_up():
    policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=8.0,
                         jitter=0.5)
    rng = backoff_rng("jitter-host")
    for attempt in range(6):
        raw = min(8.0, 1.0 * 2.0 ** attempt)
        d = policy.delay(attempt, rng)
        assert 0.5 * raw <= d <= raw


def test_jitter_deterministic_for_same_name():
    policy = RetryPolicy(jitter=0.5)
    a = [policy.delay(i, backoff_rng("host-a")) for i in range(8)]
    b = [policy.delay(i, backoff_rng("host-a")) for i in range(8)]
    assert a == b


def test_jitter_differs_across_names_and_salts():
    policy = RetryPolicy(jitter=0.5)
    a = [policy.delay(i, backoff_rng("host-a")) for i in range(8)]
    b = [policy.delay(i, backoff_rng("host-b")) for i in range(8)]
    c = [policy.delay(i, backoff_rng("host-a", salt=1)) for i in range(8)]
    assert a != b
    assert a != c


def test_no_rng_means_full_delay():
    policy = RetryPolicy(base_delay=0.5, multiplier=2.0, max_delay=4.0,
                         jitter=0.9)
    assert policy.delay(1) == pytest.approx(1.0)


def test_total_budget_bounds_sum_of_delays():
    policy = RetryPolicy(base_delay=0.2, multiplier=2.0, max_delay=2.0,
                         jitter=0.5)
    rng = backoff_rng("budget-host")
    total = sum(policy.delay(i, rng) for i in range(5))
    assert total <= policy.total_budget(5)


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


# -- delay_before_retry: deadline checked before the sleep ---------------------


def test_delay_before_retry_passes_through_with_room():
    from repro.resilience import Deadline
    policy = RetryPolicy(base_delay=0.5, jitter=0.0)
    deadline = Deadline(expires_at=10.0)
    assert policy.delay_before_retry(0, deadline=deadline, now=0.0) == 0.5


def test_delay_before_retry_abandons_when_sleep_overruns_deadline():
    """Regression: the deadline must be checked *before* backoff sleeps.

    A retry whose backoff ends at-or-past the deadline is abandoned (None)
    instead of slept through — sleeping first burned a provider slot on an
    answer nobody could use.
    """
    from repro.resilience import Deadline
    policy = RetryPolicy(base_delay=1.0, jitter=0.0)
    # 0.4s left, 1.0s backoff: pointless.
    assert policy.delay_before_retry(
        0, deadline=Deadline(expires_at=1.0), now=0.6) is None
    # Exactly equal is still pointless (the reply would land at expiry).
    assert policy.delay_before_retry(
        0, deadline=Deadline(expires_at=1.0), now=0.0) is None
    # A hair of slack and the retry proceeds.
    assert policy.delay_before_retry(
        0, deadline=Deadline(expires_at=1.01), now=0.0) == 1.0


def test_delay_before_retry_without_deadline_never_abandons():
    policy = RetryPolicy(base_delay=1.0, jitter=0.0)
    assert policy.delay_before_retry(3) == pytest.approx(5.0)


def test_abandoned_retry_still_consumes_the_jitter_draw():
    """Abandoning a retry must not reshuffle later jitter: the RNG is
    advanced whether or not the deadline kills the sleep."""
    from repro.resilience import Deadline
    policy = RetryPolicy(base_delay=1.0, jitter=0.5)
    tight = Deadline(expires_at=0.0)   # every retry abandoned

    with_abandons = backoff_rng("stream-host")
    assert policy.delay_before_retry(0, with_abandons, tight, 0.0) is None
    later_a = policy.delay(1, with_abandons)

    no_abandons = backoff_rng("stream-host")
    policy.delay(0, no_abandons)       # same draw, nobody abandoned
    later_b = policy.delay(1, no_abandons)

    assert later_a == later_b
