"""Micro-regression guard for the memoized resilience counter handles.

``ResilienceEvents.emit`` runs per kernel event on fault-heavy paths; the
counter handle must be resolved through the registry exactly once per kind,
then reused — and the memo must stay coherent with the registry (same
object, same totals) so ``count()`` never diverges from what was emitted.
"""

from repro.observability import MetricsRegistry
from repro.resilience.events import ResilienceEvents, resilience_events
from repro.net import Network
from repro.sim import Environment


class CountingRegistry(MetricsRegistry):
    """Registry that counts handle resolutions (not increments)."""

    def __init__(self):
        super().__init__()
        self.counter_calls = 0

    def counter(self, name, **labels):
        self.counter_calls += 1
        return super().counter(name, **labels)


def test_counter_handle_resolved_once_per_kind():
    registry = CountingRegistry()
    events = ResilienceEvents(Environment(), metrics=registry)
    for _ in range(100):
        events.emit("retry.scheduled", attempt=1)
    assert registry.counter_calls == 1
    events.emit("breaker.opened")
    assert registry.counter_calls == 2
    assert events.count("retry.scheduled") == 100.0
    assert events.count("breaker.opened") == 1.0


def test_memoized_handle_is_the_registry_metric():
    registry = MetricsRegistry()
    events = ResilienceEvents(Environment(), metrics=registry)
    events.emit("lease.renewal.retried")
    handle = events._counters["lease.renewal.retried"]
    assert handle is registry.counter("resilience.lease.renewal.retried")


def test_trace_and_listeners_unaffected_by_memo():
    env = Environment()
    events = ResilienceEvents(env)
    heard = []
    events.subscribe(lambda kind, fields: heard.append(kind))

    def proc():
        yield env.timeout(1.0)
        events.emit("retry.scheduled", attempt=1)
        yield env.timeout(1.0)
        events.emit("retry.scheduled", attempt=2)

    env.process(proc())
    env.run()
    assert heard == ["retry.scheduled", "retry.scheduled"]
    assert [(t, kind) for t, kind, _ in events.trace] == \
        [(1.0, "retry.scheduled"), (2.0, "retry.scheduled")]


def test_network_stream_memo_survives_shared_registry():
    """The per-network stream counts into the network's shared registry;
    the memo must not shadow counts made directly against the registry."""
    env = Environment()
    network = Network(env)
    events = resilience_events(network)
    events.emit("substitution.stale")
    from repro.observability.registry import metrics_registry
    registry = metrics_registry(network)
    registry.counter("resilience.substitution.stale").inc()
    assert events.count("substitution.stale") == 2.0
