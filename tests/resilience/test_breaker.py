"""Tests for the circuit breaker state machine and registry."""

from repro.resilience import BreakerRegistry, BreakerState, CircuitBreaker


def test_starts_closed_and_admits():
    breaker = CircuitBreaker(failure_threshold=3)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.try_acquire(0.0)


def test_opens_after_threshold_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
    for t in range(2):
        breaker.record_failure(float(t))
        assert breaker.state is BreakerState.CLOSED
    breaker.record_failure(2.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 1
    assert not breaker.try_acquire(3.0)
    assert breaker.refusals == 1


def test_success_resets_failure_count():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure(0.0)
    breaker.record_failure(1.0)
    breaker.record_success(2.0)
    breaker.record_failure(3.0)
    breaker.record_failure(4.0)
    assert breaker.state is BreakerState.CLOSED


def test_half_open_after_reset_timeout():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0)
    breaker.record_failure(0.0)
    assert breaker.state is BreakerState.OPEN
    assert not breaker.try_acquire(4.9)
    assert breaker.try_acquire(5.0)
    assert breaker.state is BreakerState.HALF_OPEN


def test_half_open_probe_success_closes():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0)
    breaker.record_failure(0.0)
    assert breaker.try_acquire(6.0)
    breaker.record_success(6.1)
    assert breaker.state is BreakerState.CLOSED


def test_half_open_probe_failure_reopens():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0)
    breaker.record_failure(0.0)
    assert breaker.try_acquire(6.0)
    breaker.record_failure(6.5)
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 2
    # Clock restarts from the re-open, not the original failure.
    assert not breaker.try_acquire(10.0)
    assert breaker.try_acquire(11.5)


def test_half_open_limits_concurrent_probes():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                             half_open_probes=2)
    breaker.record_failure(0.0)
    assert breaker.try_acquire(6.0)
    assert breaker.try_acquire(6.0)
    assert not breaker.try_acquire(6.0)  # third probe refused


def test_transition_callback_fires():
    seen = []
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                             on_transition=lambda old, new, now:
                             seen.append((old, new, now)))
    breaker.record_failure(1.0)
    breaker.try_acquire(7.0)
    breaker.record_success(7.5)
    assert seen == [
        (BreakerState.CLOSED, BreakerState.OPEN, 1.0),
        (BreakerState.OPEN, BreakerState.HALF_OPEN, 7.0),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED, 7.5),
    ]


def test_registry_keys_are_independent():
    registry = BreakerRegistry(failure_threshold=1)
    registry.record_failure("dead", 0.0)
    assert registry.state_of("dead") is BreakerState.OPEN
    assert registry.state_of("alive") is BreakerState.CLOSED
    assert not registry.try_acquire("dead", 1.0)
    assert registry.try_acquire("alive", 1.0)


def test_registry_disabled_is_passthrough():
    registry = BreakerRegistry(failure_threshold=1, enabled=False)
    for t in range(10):
        registry.record_failure("dead", float(t))
    assert registry.try_acquire("dead", 100.0)
    assert registry.snapshot() == {}


def test_registry_snapshot():
    registry = BreakerRegistry(failure_threshold=1)
    registry.record_failure("b", 0.0)
    registry.record_success("a", 0.0)
    assert registry.snapshot() == {"a": "closed", "b": "open"}


# -- stuck-half-open regression (probe in flight at heal time) ---------------------


def test_half_open_probe_without_outcome_pins_slot_short_term():
    """Inside the reset window an unresolved probe still holds its slot —
    reclaiming immediately would let a herd through half-open."""
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
    breaker.record_failure(0.0)
    assert breaker.try_acquire(11.0)       # half-open probe, never resolved
    assert not breaker.try_acquire(12.0)
    assert not breaker.try_acquire(20.9)


def test_stale_half_open_probe_is_reclaimed():
    """Regression: a probe whose caller never records an outcome (host
    healed mid-call, outcome path skipped) must not wedge the breaker.
    After a full reset_timeout of silence the slot is taken back."""
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
    breaker.record_failure(0.0)
    assert breaker.try_acquire(11.0)       # probe pinned at t=11
    assert not breaker.try_acquire(15.0)   # still wedged inside the window
    assert breaker.try_acquire(21.5)       # 10.5s of silence: reclaimed
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_success(22.0)
    assert breaker.state is BreakerState.CLOSED


def test_reclaimed_probe_updates_last_probe_time():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
    breaker.record_failure(0.0)
    assert breaker.try_acquire(11.0)
    assert breaker.try_acquire(25.0)       # reclaim; fresh probe at t=25
    # The fresh probe now owns the slot: no second reclaim until t>=35.
    assert not breaker.try_acquire(30.0)
    assert breaker.try_acquire(35.0)
