"""Shed load is not failure: end-to-end through the protected lab.

A saturated facade must reject with a typed ``Overloaded`` that (a)
reaches the caller with the retry-after hint intact, (b) leaves every
circuit breaker closed — a busy provider is not a dead one — and (c)
never shows up in the failure-rate metrics the health model and breakers
feed on (shedding the excess must not mark the federation DEGRADED).
"""

import pytest

from repro.observability import metrics_registry
from repro.overload import AdmissionController, Overloaded
from repro.resilience.breaker import BreakerState
from repro.scenarios import build_paper_lab


@pytest.fixture
def choked_lab():
    """The paper lab with a one-slot, no-queue facade: any concurrency
    above 1 is shed at the door."""
    lab = build_paper_lab(seed=2009)
    registry = metrics_registry(lab.net)
    lab.facade.admission = AdmissionController(
        lab.env, lab.facade.name, registry, max_inflight=1, max_queue=0)
    lab.settle(6.0)
    return lab


def saturate(lab, fanout=4):
    """Issue ``fanout`` same-instant reads; return (values, sheds)."""
    values, sheds = [], []

    def one(name):
        try:
            value = yield from lab.browser.get_value("Neem-Sensor")
        except Overloaded as exc:
            sheds.append(exc)
            return
        values.append((name, value))

    def burst():
        procs = [lab.env.process(one(f"r{i}"), name=f"burst:{i}")
                 for i in range(fanout)]
        yield lab.env.all_of(procs)

    lab.env.run(until=lab.env.process(burst()))
    return values, sheds


def test_saturated_facade_sheds_typed_overloaded(choked_lab):
    values, sheds = saturate(choked_lab)
    assert len(values) == 1 and len(sheds) == 3
    for exc in sheds:
        assert exc.reason == "queue-full"
        assert exc.provider == choked_lab.facade.name
        assert exc.retry_after > 0, "queue-full must carry a backoff hint"


def test_shed_load_leaves_breakers_closed(choked_lab):
    _, sheds = saturate(choked_lab)
    assert sheds
    breakers = choked_lab.browser.exerter.breakers
    assert all(state == "closed" for state in breakers.snapshot().values())
    assert breakers.state_of(choked_lab.facade.name) is BreakerState.CLOSED


def test_shed_load_stays_out_of_failure_metrics(choked_lab):
    lab = choked_lab
    _, sheds = saturate(lab)
    assert sheds
    snap = metrics_registry(lab.net).snapshot()
    for name, entry in snap.items():
        if name.startswith(("provider.failed", "exertion.failures")):
            assert entry["data"] == 0, f"shed load counted in {name}"
    facade_label = f"provider={lab.facade.name}"
    assert snap[f"overload.rejected{{{facade_label},reason=queue-full}}"][
        "data"] == 3
    assert lab.facade.stats["failed"] == 0


def test_shed_load_does_not_degrade_provider_health(choked_lab):
    lab = choked_lab
    saturate(lab)
    lab.env.run(until=lab.env.now + 20.0)
    snapshot = lab.health.snapshot()
    federation = snapshot["federation"]["status"]
    assert federation == "UP", (
        "shedding excess load must not mark the federation down: "
        f"{federation}")
