"""Overloaded is a typed shed, not a failure: it round-trips provider ->
context marker -> caller and never masquerades as a RemoteError."""

from repro.core.facade import FacadeError
from repro.net.errors import RemoteError
from repro.overload import (
    OVERLOAD_PATH,
    Overloaded,
    mark_overloaded,
    rejection_marker,
)
from repro.sorcer.context import ServiceContext


def test_overloaded_is_not_a_remote_or_facade_error():
    exc = Overloaded("queue-full")
    assert not isinstance(exc, RemoteError)
    assert not isinstance(exc, FacadeError)


def test_message_carries_reason_tenant_and_hint():
    exc = Overloaded("quota", retry_after=1.25, tenant="gold",
                     provider="facade")
    text = str(exc)
    assert "facade" in text and "quota" in text
    assert "'gold'" in text and "1.250s" in text


def test_marker_roundtrip_through_service_context():
    exc = Overloaded("queue-full", retry_after=0.375, tenant="silver",
                     provider="facade")
    ctx = ServiceContext("shed")
    mark_overloaded(ctx, exc)
    marker = rejection_marker(ctx)
    assert marker == {"reason": "queue-full", "retry_after": 0.375,
                      "tenant": "silver", "provider": "facade"}
    back = Overloaded.from_marker(marker)
    assert (back.reason, back.retry_after, back.tenant, back.provider) == \
        (exc.reason, exc.retry_after, exc.tenant, exc.provider)


def test_rejection_marker_none_on_clean_context():
    ctx = ServiceContext("clean")
    assert rejection_marker(ctx) is None
    ctx.put_value(OVERLOAD_PATH, "not-a-dict")
    assert rejection_marker(ctx) is None
