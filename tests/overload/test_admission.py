"""AdmissionController: the two shed points (reject-on-admit,
drop-expired-on-dequeue), slot accounting and retry-after hints."""

import pytest

from repro.observability.registry import MetricsRegistry
from repro.overload import (
    AdmissionController,
    Overloaded,
    QuotaRegistry,
    WeightedFairQueue,
)
from repro.resilience import Deadline
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_admission(env, **kwargs):
    kwargs.setdefault("max_inflight", 1)
    kwargs.setdefault("max_queue", 2)
    return AdmissionController(env, "p", MetricsRegistry(), **kwargs)


def worker(env, admission, results, tenant="t", deadline=None, hold=0.1):
    """Acquire, hold a slot for ``hold`` sim seconds, release."""
    try:
        yield from admission.acquire(tenant, deadline)
    except Overloaded as exc:
        results.append((env.now, "shed", exc.reason, exc.retry_after))
        return
    start = env.now
    results.append((start, "admitted", tenant, None))
    yield env.timeout(hold)
    admission.release(service_time=env.now - start)


def test_fast_path_admits_without_waiting(env):
    admission = make_admission(env, max_inflight=2)
    results = []
    env.process(worker(env, admission, results))
    env.process(worker(env, admission, results))
    env.run()
    assert [r[1] for r in results] == ["admitted", "admitted"]
    assert [r[0] for r in results] == [0.0, 0.0]
    assert admission.inflight == 0  # both released


def test_queueing_then_dispatch_on_release(env):
    admission = make_admission(env)  # 1 slot, queue of 2
    results = []
    for _ in range(3):
        env.process(worker(env, admission, results, hold=0.1))
    env.run()
    # Serialized through the single slot: admits at 0.0, 0.1, 0.2.
    assert [(r[0], r[1]) for r in results] == [
        (0.0, "admitted"), (pytest.approx(0.1), "admitted"),
        (pytest.approx(0.2), "admitted")]


def test_queue_full_rejects_immediately_with_hint(env):
    admission = make_admission(env)  # 1 slot, queue of 2
    results = []
    for _ in range(4):
        env.process(worker(env, admission, results))
    env.run()
    shed = [r for r in results if r[1] == "shed"]
    assert len(shed) == 1
    now, _, reason, retry_after = shed[0]
    assert now == 0.0, "queue-full must shed at arrival, not after queueing"
    assert reason == "queue-full"
    # Hint: 3 requests ahead (2 queued + this one) at the 0.1s default
    # service EWMA through 1 slot.
    assert retry_after == pytest.approx(0.3)


def test_expired_on_admit_rejected_without_queue_time(env):
    admission = make_admission(env)
    results = []

    def late():
        yield env.timeout(1.0)
        yield from worker(env, admission, results, tenant="late",
                          deadline=Deadline(expires_at=0.5))

    env.process(late())
    env.run()
    assert results == [(1.0, "shed", "expired", 0.0)]


def test_expired_in_queue_dropped_without_burning_slot(env):
    admission = make_admission(env, max_inflight=1, max_queue=4)
    results = []
    # Holder occupies the only slot for 1s; the doomed waiter's deadline
    # dies at 0.5 while queued; the patient waiter must still get the
    # slot the doomed one never burned.
    env.process(worker(env, admission, results, tenant="holder", hold=1.0))
    env.process(worker(env, admission, results, tenant="doomed",
                       deadline=Deadline(expires_at=0.5)))
    env.process(worker(env, admission, results, tenant="patient"))
    env.run()
    by_tenant = {r[2]: r for r in results if r[1] != "shed"}
    shed = [r for r in results if r[1] == "shed"]
    assert shed == [(1.0, "shed", "expired-in-queue", 0.0)]
    assert by_tenant["patient"][0] == pytest.approx(1.0)
    assert admission.inflight == 0


def test_quota_rejection_carries_bucket_retry_after(env):
    quotas = QuotaRegistry()
    quotas.set_quota("metered", rate=1.0, burst=1.0)
    admission = make_admission(env, max_inflight=4, quotas=quotas)
    results = []
    env.process(worker(env, admission, results, tenant="metered"))
    env.process(worker(env, admission, results, tenant="metered"))
    env.run()
    assert results[0][1] == "admitted"
    assert results[1][1:] == ("shed", "quota", pytest.approx(1.0))


def test_weighted_fair_queue_drains_by_weight(env):
    fair = WeightedFairQueue(weights={"gold": 2.0, "bronze": 1.0})
    admission = make_admission(env, max_inflight=1, max_queue=8, fair=fair)
    results = []
    env.process(worker(env, admission, results, tenant="first", hold=0.5))

    def backlog():
        yield env.timeout(0.1)  # arrive while the slot is held
        for index in range(2):
            env.process(worker(env, admission, results, tenant="bronze",
                               hold=0.1))
            env.process(worker(env, admission, results, tenant="gold",
                               hold=0.1))

    env.process(backlog())
    env.run()
    admitted = [r[2] for r in results if r[1] == "admitted"]
    # SFQ tags: gold (weight 2) gets both items through before bronze's
    # second; interleave is gold, bronze, gold, bronze — not FIFO order.
    assert admitted == ["first", "gold", "bronze", "gold", "bronze"]


def test_service_ewma_tracks_observed_service_time(env):
    admission = make_admission(env, max_inflight=1,
                               default_service_time=0.1)
    results = []
    env.process(worker(env, admission, results, hold=1.0))
    env.run()
    assert admission.snapshot()["service_ewma"] == pytest.approx(
        0.1 + 0.2 * (1.0 - 0.1))


def test_counters_have_stable_shape_before_any_shed(env):
    registry = MetricsRegistry()
    AdmissionController(env, "p", registry)
    names = set(registry.snapshot())
    assert "overload.admitted{provider=p}" in names
    for reason in ("queue-full", "expired", "expired-in-queue", "quota"):
        assert f"overload.rejected{{provider=p,reason={reason}}}" in names


def test_rejects_bad_limits(env):
    with pytest.raises(ValueError):
        make_admission(env, max_inflight=0)
    with pytest.raises(ValueError):
        make_admission(env, max_queue=-1)
