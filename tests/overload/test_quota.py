"""Token buckets refill lazily on the sim clock; the registry meters
known tenants and (optionally) mints default buckets for new ones."""

import pytest

from repro.overload import QuotaRegistry, TokenBucket


def test_bucket_starts_full_and_drains():
    bucket = TokenBucket(rate=2.0, burst=3.0)
    assert bucket.try_take(0.0)
    assert bucket.try_take(0.0)
    assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)


def test_bucket_refills_lazily_from_elapsed_time():
    bucket = TokenBucket(rate=2.0, burst=4.0)
    for _ in range(4):
        assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)
    # 1s at 2 tokens/s -> 2 tokens exist, no timer process involved.
    assert bucket.try_take(1.0)
    assert bucket.try_take(1.0)
    assert not bucket.try_take(1.0)


def test_bucket_never_exceeds_burst():
    bucket = TokenBucket(rate=10.0, burst=2.0)
    bucket.try_take(0.0)
    # A long idle period caps at burst, not rate * elapsed.
    assert bucket.retry_after(100.0) == 0.0
    assert bucket.try_take(100.0)
    assert bucket.try_take(100.0)
    assert not bucket.try_take(100.0)


def test_retry_after_reports_deficit_over_rate():
    bucket = TokenBucket(rate=2.0, burst=1.0)
    assert bucket.try_take(0.0)
    assert bucket.retry_after(0.0) == pytest.approx(0.5)


def test_retry_after_on_zero_rate_is_never():
    bucket = TokenBucket(rate=0.0, burst=1.0)
    assert bucket.try_take(0.0)
    assert bucket.retry_after(0.0) == 3600.0


def test_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=-1.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.0)


def test_registry_unmetered_without_bucket_or_default():
    quotas = QuotaRegistry()
    admitted, retry_after = quotas.admit("anyone", 0.0)
    assert admitted and retry_after == 0.0


def test_registry_meters_configured_tenant():
    quotas = QuotaRegistry()
    quotas.set_quota("gold", rate=1.0, burst=1.0)
    assert quotas.admit("gold", 0.0) == (True, 0.0)
    admitted, retry_after = quotas.admit("gold", 0.0)
    assert not admitted and retry_after == pytest.approx(1.0)
    assert quotas.admit("gold", 1.0) == (True, 0.0)


def test_registry_default_quota_mints_bucket_on_first_sight():
    quotas = QuotaRegistry(default_rate=1.0, default_burst=1.0)
    assert quotas.admit("newcomer", 0.0) == (True, 0.0)
    admitted, _ = quotas.admit("newcomer", 0.0)
    assert not admitted  # the minted bucket now meters them
    assert "newcomer" in quotas.snapshot(0.0)


def test_snapshot_is_sorted_and_rounded():
    quotas = QuotaRegistry()
    quotas.set_quota("b", rate=1.0, burst=2.0)
    quotas.set_quota("a", rate=3.0, burst=4.0)
    snap = quotas.snapshot(0.0)
    assert list(snap) == ["a", "b"]
    assert snap["a"] == {"tokens": 4.0, "rate": 3.0, "burst": 4.0}
