"""Weighted-fair dispatch properties, pinned by hypothesis:

* **proportionality** — continuously backlogged tenants drain in
  proportion to their weights (start-time fair queuing's service bound);
* **no starvation** — even at 10x weight skew, a backlogged tenant's
  next item is dispatched within ``sum(weights)/weight`` slots;
* **interleave invariance** — pop order depends only on each tenant's
  own push order, never on how different tenants' same-instant pushes
  interleave. This is the data-structure half of the determinism
  contract; the sim half (byte-identical admission under
  ``REPRO_SHUFFLE_SEED``) is pinned against a golden order below.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.registry import MetricsRegistry
from repro.overload import AdmissionController, Overloaded, WeightedFairQueue
from repro.sim import Environment

# -- strategies ----------------------------------------------------------------

#: 2-5 tenants with weights spanning two orders of magnitude.
weight_maps = st.dictionaries(
    st.sampled_from([f"t{i}" for i in range(5)]),
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    min_size=2, max_size=5)


def drain(wfq):
    order = []
    while wfq:
        order.append(wfq.pop())
    return order


# -- proportional throughput ---------------------------------------------------


@given(weights=weight_maps, window=st.integers(min_value=10, max_value=200))
def test_backlogged_tenants_drain_proportionally(weights, window):
    wfq = WeightedFairQueue(weights=weights)
    # Everyone backlogged for the whole window: push more than anyone
    # could possibly be served.
    for tenant in sorted(weights):
        for seq in range(window):
            wfq.push(tenant, (tenant, seq))
    served: dict = {tenant: 0 for tenant in weights}
    for _ in range(window):
        tenant, _seq = wfq.pop()
        served[tenant] += 1
    total_weight = sum(weights.values())
    for tenant, weight in weights.items():
        expected = window * weight / total_weight
        # SFQ's service-lag bound is O(1) items per *competing* tenant:
        # each discretizes its fluid share independently, so one tenant
        # can run up to ~(n-1) items ahead of proportional. A fixed
        # absolute bound fails at 5 tenants under heavy weight skew
        # (e.g. weights 1/1/10/0.25/0.125, window 94 deviates by 3.04).
        assert abs(served[tenant] - expected) <= len(weights) + 1.0, (
            f"{tenant} (w={weight}) served {served[tenant]}, "
            f"expected ~{expected:.1f} of {window}")


@given(light_weight=st.floats(min_value=0.1, max_value=2.0),
       skew=st.integers(min_value=2, max_value=10),
       backlog=st.integers(min_value=5, max_value=50))
def test_no_starvation_under_weight_skew(light_weight, skew, backlog):
    heavy_weight = light_weight * skew
    wfq = WeightedFairQueue(weights={"heavy": heavy_weight,
                                     "light": light_weight})
    for seq in range(backlog):
        wfq.push("heavy", ("heavy", seq))
    for seq in range(backlog):
        wfq.push("light", ("light", seq))
    order = drain(wfq)
    position = order.index(("light", 0))
    # At most floor(w_heavy / w_light) heavy items can out-tag light's
    # first item (tag 1/w_light), ties broken by tenant name.
    bound = math.floor(heavy_weight / light_weight) + 1
    assert position <= bound, (
        f"light's first item waited {position} slots, bound {bound}")
    # And every light item eventually surfaces.
    assert sum(1 for tenant, _ in order if tenant == "light") == backlog


# -- interleave invariance -----------------------------------------------------


@given(weights=weight_maps,
       rounds=st.lists(
           st.dictionaries(st.sampled_from([f"t{i}" for i in range(5)]),
                           st.integers(min_value=0, max_value=4),
                           min_size=1, max_size=5),
           min_size=1, max_size=6),
       pops_between=st.integers(min_value=0, max_value=3),
       order_seed=st.randoms(use_true_random=False))
def test_pop_order_invariant_to_cross_tenant_push_interleave(
        weights, rounds, pops_between, order_seed):
    def run(shuffle):
        wfq = WeightedFairQueue(weights=weights)
        sequences: dict = {}
        popped = []
        for batch in rounds:
            tenants = sorted(batch)
            if shuffle:
                order_seed.shuffle(tenants)
            for tenant in tenants:
                for _ in range(batch[tenant]):
                    seq = sequences.get(tenant, 0)
                    sequences[tenant] = seq + 1
                    wfq.push(tenant, (tenant, seq))
            for _ in range(pops_between):
                if wfq:
                    popped.append(wfq.pop())
        popped.extend(drain(wfq))
        return popped

    # Per-tenant push order is causal (one arrival process per tenant);
    # cross-tenant interleave within an instant is what the kernel
    # shuffles — and must not matter.
    assert run(shuffle=False) == run(shuffle=True)


# -- sim half: admission dispatch under the shuffle harness --------------------

#: The admitted-tenant order for the scenario below, identical for every
#: REPRO_SHUFFLE_SEED (pinned once, checked under the fixture's 3 seeds).
GOLDEN_ADMIT_ORDER = [
    "warm", "gold", "silver", "gold", "bronze", "gold", "silver",
    "silver", "bronze", "bronze",
]


def test_dispatch_order_byte_identical_across_shuffle_seeds(shuffle_seed):
    env = Environment()
    fair = WeightedFairQueue(weights={"gold": 3.0, "silver": 2.0,
                                      "bronze": 1.0})
    admission = AdmissionController(env, "p", MetricsRegistry(),
                                    max_inflight=1, max_queue=16, fair=fair)
    admitted = []

    def worker(tenant):
        try:
            yield from admission.acquire(tenant)
        except Overloaded:  # pragma: no cover - queue is big enough
            return
        admitted.append(tenant)
        yield env.timeout(0.1)
        admission.release(service_time=0.1)

    def arrivals():
        env.process(worker("warm"))  # takes the slot at t=0
        yield env.timeout(0.05)
        # Nine same-instant arrivals from three tenants: exactly the
        # tie-break surface the kernel shuffles under REPRO_SHUFFLE_SEED.
        for index in range(3):
            env.process(worker("gold"), name=f"gold:{index}")
            env.process(worker("silver"), name=f"silver:{index}")
            env.process(worker("bronze"), name=f"bronze:{index}")

    env.process(arrivals())
    env.run()
    assert admitted == GOLDEN_ADMIT_ORDER
