"""Heterogeneous technologies under one composite — the §II.3 punchline.

One composite averages a Sun SPOT, a generic digital thermometer, a
collaborating mote cluster and a legacy binary-protocol field station.
Four technologies, four probe drivers, one unchanged `SensorDataAccessor`
path — the inclusiveness the paper demands of a sensor framework.
"""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService, SensorType, ServiceTemplate
from repro.sensors import (
    LegacyFieldStation,
    LegacyProtocolProbe,
    PhysicalEnvironment,
    SensorCluster,
    SunSpotDevice,
    SunSpotTemperatureProbe,
    TemperatureProbe,
)
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.core import (
    CompositeSensorProvider,
    ElementarySensorProvider,
    SENSOR_DATA_ACCESSOR,
)

LOCATION = {"spot": (0.0, 0.0), "digital": (10.0, 0.0),
            "cluster": (20.0, 0.0), "legacy": (30.0, 0.0)}


def build():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(71),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=71)
    LookupService(Host(net, "lus-host")).start()

    # Technology 1: a Sun SPOT.
    spot = SunSpotDevice(env, "spot-1")
    spot_probe = SunSpotTemperatureProbe(env, spot, world, LOCATION["spot"],
                                         rng=np.random.default_rng(1))
    ElementarySensorProvider(Host(net, "spot-host"), "Spot-Sensor",
                             spot_probe, technology="sunspot").start()

    # Technology 2: a plain digital thermometer.
    digital = TemperatureProbe(env, "dig-1", world, LOCATION["digital"],
                               rng=np.random.default_rng(2), sensing_noise=0.0)
    ElementarySensorProvider(Host(net, "digital-host"), "Digital-Sensor",
                             digital, technology="onewire").start()

    # Technology 3: a collaborating mote cluster.
    members = [TemperatureProbe(env, f"mote-{i}", world,
                                (LOCATION["cluster"][0] + i, 0.0),
                                rng=np.random.default_rng(10 + i),
                                sensing_noise=0.0)
               for i in range(3)]
    cluster = SensorCluster(env, "cluster-1", members)
    ElementarySensorProvider(Host(net, "cluster-host"), "Cluster-Sensor",
                             cluster, technology="mote-cluster").start()

    # Technology 4: a legacy binary-protocol station behind a gateway.
    station_host = Host(net, "station")
    LegacyFieldStation(station_host, world, LOCATION["legacy"])
    gateway = Host(net, "gateway")
    legacy = LegacyProtocolProbe(env, "legacy-1", gateway, "station")
    ElementarySensorProvider(gateway, "Legacy-Sensor", legacy,
                             technology="fs90-serial").start()

    composite = CompositeSensorProvider(Host(net, "csp-host"), "All-Tech")
    composite.start()
    return env, net, world, composite


def test_four_technologies_one_composite():
    env, net, world, composite = build()
    env.run(until=6.0)
    # Find the four ESPs generically: by measured quantity, not by name.
    exerter = Exerter(Host(net, "client"))
    accessor = exerter.accessor

    def compose_and_read():
        items = yield from accessor.find_items(
            ServiceTemplate(attributes=(SensorType(quantity="temperature"),)),
            max_matches=16, wait=5.0)
        names = sorted(item.name() for item in items
                       if item.service_id != composite.service_id)
        assert names == ["Cluster-Sensor", "Digital-Sensor", "Legacy-Sensor",
                         "Spot-Sensor"]
        for item in sorted(items, key=lambda i: i.name() or ""):
            if item.service_id != composite.service_id:
                composite.add_child(item.service_id, item.name())
        composite.set_expression("(a + b + c + d)/4")
        task = Task("read", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                      service_id=composite.service_id),
                    ServiceContext())
        task.control.invocation_timeout = 30.0
        result = yield env.process(exerter.exert(task))
        return result

    result = env.run(until=env.process(compose_and_read()))
    assert result.is_done, result.exceptions
    value = result.get_return_value()
    truths = [
        world.sample("temperature", LOCATION["spot"], env.now),
        world.sample("temperature", LOCATION["digital"], env.now),
        np.mean([world.sample("temperature",
                              (LOCATION["cluster"][0] + i, 0.0), env.now)
                 for i in range(3)]),
        world.sample("temperature", LOCATION["legacy"], env.now),
    ]
    assert abs(value - float(np.mean(truths))) < 1.0


def test_technology_entries_are_distinct():
    env, net, world, composite = build()
    env.run(until=6.0)
    lus_obj = None
    for host in net.hosts.values():
        endpoint = getattr(host, "_rpc_endpoint", None)
        if endpoint is None:
            continue
        for obj in endpoint._objects.values():
            if type(obj).__name__ == "LookupService":
                lus_obj = obj
    technologies = set()
    for item in lus_obj.lookup_all():
        for attr in item.attributes:
            if isinstance(attr, SensorType) and attr.technology:
                technologies.add(attr.technology)
    assert {"sunspot", "onewire", "mote-cluster", "fs90-serial"} <= technologies
