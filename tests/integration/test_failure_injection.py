"""Failure injection across the whole stack: loss, partitions, flapping.

The paper (§VIII) claims the system "handles very well several types of
network and computer outages". These tests subject the full framework to
modelled outages and check it converges back.
"""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import BernoulliLoss, FixedLatency, Host, Network
from repro.jini import LookupService, ServiceTemplate
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.core import (
    CompositeSensorProvider,
    ElementarySensorProvider,
    SENSOR_DATA_ACCESSOR,
)


def build_lossy_grid(loss_probability, seed=41, n_sensors=3):
    env = Environment()
    rng = np.random.default_rng(seed)
    net = Network(env, rng=rng, latency=FixedLatency(0.001),
                  loss=BernoulliLoss(np.random.default_rng(seed + 1),
                                     loss_probability))
    world = PhysicalEnvironment(seed=seed)
    lus = LookupService(Host(net, "lus-host"), announce_interval=3.0)
    lus.start()
    esps = []
    for index in range(n_sensors):
        probe = TemperatureProbe(env, f"p{index}", world, (index * 10.0, 0.0),
                                 rng=np.random.default_rng(index))
        esp = ElementarySensorProvider(
            Host(net, f"esp-{index}"), f"Sensor-{index}", probe,
            lease_duration=8.0)
        esp.start()
        esps.append(esp)
    csp = CompositeSensorProvider(Host(net, "csp-host"), "Aggregate")
    csp.start()
    for esp in esps:
        csp.add_child(esp.service_id, esp.name)
    return env, net, world, lus, esps, csp


def query_until_success(env, net, csp, attempts=10, timeout=4.0):
    exerter = Exerter(Host(net, f"client-{net.ids.sequence()}"))

    def proc():
        for attempt in range(attempts):
            task = Task("q", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                       service_id=csp.service_id),
                        ServiceContext())
            task.control.invocation_timeout = timeout
            result = yield env.process(exerter.exert(task))
            if result.is_done:
                return attempt, result.get_return_value()
            yield env.timeout(1.0)
        return attempts, None

    return env.run(until=env.process(proc()))


def test_network_with_5_percent_loss_still_converges():
    env, net, world, lus, esps, csp = build_lossy_grid(0.05)
    env.run(until=20.0)
    # All services registered despite lost discovery/renewal messages.
    items = lus.lookup(ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), 10)
    assert len(items) == 4
    attempts, value = query_until_success(env, net, csp)
    assert value is not None
    truth = world.mean_over("temperature", [(0, 0), (10, 0), (20, 0)], env.now)
    assert abs(value - truth) < 1.5


def test_network_with_20_percent_loss_eventually_answers():
    env, net, world, lus, esps, csp = build_lossy_grid(0.20)
    env.run(until=30.0)
    attempts, value = query_until_success(env, net, csp, attempts=20)
    assert value is not None


def test_partition_from_lus_heals():
    env, net, world, lus, esps, csp = build_lossy_grid(0.0)
    env.run(until=10.0)
    # Cut every sensor host off from the LUS; their leases lapse.
    for esp in esps:
        net.cut_link(esp.host.name, "lus-host")
    env.run(until=40.0)
    assert lus.lookup(ServiceTemplate(
        types=(SENSOR_DATA_ACCESSOR,),
        attributes=()), 10) is not None
    visible = {item.name() for item in
               lus.lookup(ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), 10)}
    assert not any(name.startswith("Sensor-") for name in visible)
    # Heal: join managers re-register after rediscovery.
    for esp in esps:
        net.heal_link(esp.host.name, "lus-host")
    env.run(until=80.0)
    visible = {item.name() for item in
               lus.lookup(ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), 10)}
    assert {"Sensor-0", "Sensor-1", "Sensor-2"} <= visible
    attempts, value = query_until_success(env, net, csp)
    assert value is not None


def test_flapping_sensor_host():
    """A host that crashes and recovers repeatedly ends up registered."""
    env, net, world, lus, esps, csp = build_lossy_grid(0.0, n_sensors=1)
    env.run(until=10.0)
    victim = esps[0].host
    for _ in range(4):
        victim.fail()
        env.run(until=env.now + 7.0)
        victim.recover()
        env.run(until=env.now + 7.0)
    env.run(until=env.now + 20.0)
    items = lus.lookup(ServiceTemplate.by_name("Sensor-0"), 5)
    assert len(items) == 1
    attempts, value = query_until_success(env, net, csp)
    assert value is not None


def test_composite_query_during_child_outage_fails_then_recovers():
    env, net, world, lus, esps, csp = build_lossy_grid(0.0)
    csp.child_wait = 1.0
    env.run(until=10.0)
    esps[1].host.fail()
    env.run(until=30.0)  # lease lapsed; child gone
    attempts, value = query_until_success(env, net, csp, attempts=1)
    assert value is None  # strict aggregation: missing child => failure
    esps[1].host.recover()
    env.run(until=60.0)
    attempts, value = query_until_success(env, net, csp)
    assert value is not None
