"""Cross-provider data pipelines: sensor history -> analysis via job pipes.

The S2S collaboration the paper promises: a job whose first task pulls a
sensor's history and whose second task (on a *different* provider) computes
over it, with the jobber wiring the data through a context pipe — "transfer
data from node to node without any user intervention" (§VII).
"""

import numpy as np
import pytest

from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService
from repro.sim import Environment
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sorcer import (
    Exerter,
    Job,
    Jobber,
    ServiceContext,
    Signature,
    Task,
    Tasker,
)
from repro.core import ElementarySensorProvider, SENSOR_DATA_ACCESSOR


class StatsProvider(Tasker):
    """Numeric analysis over a list of readings."""

    SERVICE_TYPES = ("Statistics",)

    def __init__(self, host, name="Statistician", **kw):
        super().__init__(host, name, **kw)
        self.add_operation("meanValue", self._mean)
        self.add_operation("spread", self._spread)

    @staticmethod
    def _values(ctx):
        readings = ctx.get_value("arg/readings")
        return np.array([r.value for r in readings], dtype=float)

    def _mean(self, ctx):
        return float(self._values(ctx).mean())

    def _spread(self, ctx):
        values = self._values(ctx)
        return float(values.max() - values.min())


@pytest.fixture
def stack():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(61),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=61)
    LookupService(Host(net, "lus-host")).start()
    Jobber(Host(net, "jobber-host")).start()
    probe = TemperatureProbe(env, "p", world, (3.0, 4.0),
                             rng=np.random.default_rng(0), sensing_noise=0.0)
    esp = ElementarySensorProvider(Host(net, "esp-host"), "Sensor-A", probe,
                                   sample_interval=0.5)
    esp.start()
    StatsProvider(Host(net, "stats-host")).start()
    env.run(until=15.0)  # accumulate history
    exerter = Exerter(Host(net, "client"))
    return env, net, world, esp, exerter


def pipeline_job(selector, count=20):
    history_ctx = ServiceContext()
    history_ctx.put_in_value("arg/count", count)
    history = Task("history",
                   Signature(SENSOR_DATA_ACCESSOR, "getHistory",
                             provider_name="Sensor-A"), history_ctx)
    analyze = Task("analyze", Signature("Statistics", selector))
    job = Job("pipeline", [history, analyze])
    job.pipe("history", "result/value", "analyze", "arg/readings")
    job.control.invocation_timeout = 60.0
    return job


def test_history_to_mean_pipeline(stack):
    env, net, world, esp, exerter = stack
    job = env.run(until=env.process(exerter.exert(pipeline_job("meanValue"))))
    assert job.is_done, job.exceptions
    mean = job.context.get_value("analyze/result/value")
    expected = float(esp.buffer.values(20).mean())
    assert mean == pytest.approx(expected)
    # The two tasks really ran on two different providers/hosts.
    hosts = {component.trace[-1].host for component in job.exertions}
    assert hosts == {"esp-host", "stats-host"}


def test_history_to_spread_pipeline(stack):
    env, net, world, esp, exerter = stack
    job = env.run(until=env.process(exerter.exert(pipeline_job("spread"))))
    assert job.is_done, job.exceptions
    spread = job.context.get_value("analyze/result/value")
    values = esp.buffer.values(20)
    assert spread == pytest.approx(float(values.max() - values.min()))


def test_three_stage_pipeline(stack):
    """history -> mean -> threshold classification, all piped."""
    env, net, world, esp, exerter = stack

    history_ctx = ServiceContext()
    history_ctx.put_in_value("arg/count", 10)
    job = Job("three-stage", [
        Task("history", Signature(SENSOR_DATA_ACCESSOR, "getHistory",
                                  provider_name="Sensor-A"), history_ctx),
        Task("mean", Signature("Statistics", "meanValue")),
    ])
    job.pipe("history", "result/value", "mean", "arg/readings")
    job.control.invocation_timeout = 60.0
    result = env.run(until=env.process(exerter.exert(job)))
    assert result.is_done, result.exceptions
    # The jobber collected both stage outputs into the job context.
    assert "history/result/value" in result.context
    assert "mean/result/value" in result.context
