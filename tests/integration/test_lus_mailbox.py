"""LUS events delivered through a mailbox to a disconnected client.

The pattern the Fig 2 infrastructure exists for: a management client
registers interest in sensor arrivals, points the LUS at a mailbox slot,
goes offline, and collects the backlog when it returns.
"""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network, rpc_endpoint
from repro.jini import (
    ALL_TRANSITIONS,
    EventMailbox,
    LookupService,
    ServiceTemplate,
    TRANSITION_NOMATCH_MATCH,
)
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.core import ElementarySensorProvider, SENSOR_DATA_ACCESSOR


def test_offline_client_collects_arrival_events():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(73),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=73)
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    EventMailbox(Host(net, "mailbox-host"))
    mailbox = net.hosts["mailbox-host"]._rpc_endpoint._objects[
        "mailbox:mailbox-host"]
    client_host = Host(net, "client")
    client = rpc_endpoint(client_host)

    def register_interest():
        registration = yield client.call(mailbox.ref, "register", 600.0)
        # Tell the LUS to notify the *mailbox slot* about sensor arrivals.
        yield client.call(lus.ref, "notify",
                          ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR),
                          ALL_TRANSITIONS, registration.listener,
                          "mgmt", 600.0)
        return registration

    registration = env.run(until=env.process(register_interest()))
    client_host.fail()  # the management client goes offline

    # Three sensors join while the client is away.
    for index in range(3):
        probe = TemperatureProbe(env, f"p{index}", world, (index * 5.0, 0.0),
                                 rng=np.random.default_rng(index))
        ElementarySensorProvider(Host(net, f"esp-{index}"),
                                 f"Sensor-{index}", probe).start()
    env.run(until=15.0)

    client_host.recover()

    def collect():
        events = yield client.call(mailbox.ref, "collect",
                                   registration.registration_id, 100)
        return events

    events = env.run(until=env.process(collect()))
    arrivals = [e for e in events if e.transition == TRANSITION_NOMATCH_MATCH]
    assert len(arrivals) == 3
    assert all(e.handback == "mgmt" for e in events)
    names = {e.item.name() for e in arrivals}
    assert names == {"Sensor-0", "Sensor-1", "Sensor-2"}
