"""Soak test: a 100-sensor deployment on a realistic (jittery, lossy) LAN.

Ties everything together at a size well past the paper's four sensors:
discovery converges, a fanout-5 composite tree answers fleet queries
against ground truth, sensors keep sampling, and the whole thing is
deterministic across runs.
"""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import BernoulliLoss, Host, LanLatency, Network
from repro.jini import LookupService, ServiceTemplate
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sorcer import Exerter, ServiceContext, Signature, Strategy, Task
from repro.core import (
    CompositeSensorProvider,
    ElementarySensorProvider,
    SENSOR_DATA_ACCESSOR,
)
from repro.scenarios import build_sensorcer_grid

N = 100


def build(seed=99):
    env = Environment()
    rng = np.random.default_rng(seed)
    net = Network(env, rng=rng, latency=LanLatency(rng),
                  loss=BernoulliLoss(np.random.default_rng(seed + 1), 0.01))
    world = PhysicalEnvironment(seed=seed)
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    locations = [((i % 10) * 10.0, (i // 10) * 10.0) for i in range(N)]
    esps = []
    for i, location in enumerate(locations):
        probe = TemperatureProbe(env, f"p{i}", world, location,
                                 rng=np.random.default_rng(seed + i),
                                 sensing_noise=0.0)
        esp = ElementarySensorProvider(Host(net, f"esp-{i}"),
                                       f"Sensor-{i:03d}", probe,
                                       sample_interval=5.0,
                                       lease_duration=20.0)
        esp.start()
        esps.append(esp)
    # Fanout-5 tree: 100 leaves -> 20 group composites -> 4 -> root.
    layer = [(esp.service_id, esp.name) for esp in esps]
    composites = []
    level = 0
    while len(layer) > 5:
        next_layer = []
        for g in range(0, len(layer), 5):
            group = layer[g:g + 5]
            # Hierarchical timeouts: a level's budget covers its
            # children's worst case (timeout + one retry).
            csp = CompositeSensorProvider(
                Host(net, f"csp-{level}-{g}"), f"Group-{level}-{g}",
                strategy=Strategy.PARALLEL, child_wait=8.0,
                child_timeout=3.0 * (4 ** level))
            csp.start()
            for service_id, name in group:
                csp.add_child(service_id, name)
            composites.append(csp)
            next_layer.append((csp.service_id, csp.name))
        layer = next_layer
        level += 1
    root = CompositeSensorProvider(Host(net, "root-host"), "Root",
                                   strategy=Strategy.PARALLEL, child_wait=8.0,
                                   child_timeout=3.0 * (4 ** level))
    root.start()
    for service_id, name in layer:
        root.add_child(service_id, name)
    composites.append(root)
    return env, net, world, lus, esps, root, locations


def test_hundred_sensor_grid_converges_and_answers():
    env, net, world, lus, esps, root, locations = build()
    env.run(until=10.0)
    items = lus.lookup(ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), 256)
    assert len(items) == N + 25  # 100 ESPs + 20 + 4 groups + root
    exerter = Exerter(Host(net, "client"))

    def query():
        task = Task("fleet", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                       service_id=root.service_id),
                    ServiceContext())
        task.control.invocation_timeout = 180.0
        result = yield env.process(exerter.exert(task))
        return result

    result = env.run(until=env.process(query()))
    assert result.is_done, result.exceptions
    value = result.get_return_value()
    # Equal-size groups: the tree mean equals the global mean.
    truth = world.mean_over("temperature", locations, env.now)
    assert abs(value - truth) < 1.0
    # The grid keeps living: samplers fill buffers.
    env.run(until=env.now + 20.0)
    assert all(len(esp.buffer) >= 3 for esp in esps)


def test_hundred_sensor_grid_deterministic():
    def run_once():
        env, net, world, lus, esps, root, locations = build(seed=5)
        env.run(until=10.0)
        exerter = Exerter(Host(net, "client"))

        def query():
            task = Task("fleet", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                           service_id=root.service_id),
                        ServiceContext())
            task.control.invocation_timeout = 180.0
            result = yield env.process(exerter.exert(task))
            return result.get_return_value(), env.now, net.stats.messages

    # noqa: the generator above returns; drive it.
        return run_query(env, query)

    def run_query(env, query):
        return env.run(until=env.process(query()))

    assert run_once() == run_once()
