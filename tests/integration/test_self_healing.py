"""Composition plans + self-healing: the logical network survives crashes.

The scenario the fault_tolerant_fleet example does by hand: Rio re-creates
a crashed composite *empty*; with a saved plan and self-healing enabled,
the façade restores its composition and expression automatically.

Also: CSP fault policies under a network *partition* (hosts alive but
mutually unreachable) followed by a heal — the link comes back and queries
must recover on their own, with no breaker or cache stuck in the failed
state.
"""

import numpy as np
import pytest

from repro.jini import LookupService, ServiceTemplate
from repro.jini.entries import Location
from repro.net import FixedLatency, Host, Network
from repro.observability import tracer_of
from repro.resilience import BreakerState, resilience_events
from tests.helpers.tracing import assert_no_orphan_spans, assert_span_tree
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sim import Environment
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.core import (
    STALE_PATH,
    CompositeSensorProvider,
    CompositionPlan,
    ElementarySensorProvider,
    OP_GET_VALUE,
    SENSOR_DATA_ACCESSOR,
)
from repro.scenarios import build_paper_lab


@pytest.fixture
def lab():
    lab = build_paper_lab(seed=404)
    lab.settle(6.0)
    return lab


def run(lab, gen):
    return lab.env.run(until=lab.env.process(gen))


def build_fig3_network(lab):
    browser = lab.browser

    def build():
        yield from browser.compose_service(
            "Composite-Service",
            ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
        yield from browser.add_expression("Composite-Service", "(a + b + c)/3")
        yield from browser.create_service("New-Composite")
        yield from browser.compose_service(
            "New-Composite", ["Composite-Service", "Coral-Sensor"])
        yield from browser.add_expression("New-Composite", "(a + b)/2")
        return (yield from browser.get_value("New-Composite"))

    return run(lab, build())


def test_save_plan_captures_live_state(lab):
    build_fig3_network(lab)
    plan = run(lab, lab.browser.save_network_plan())
    assert isinstance(plan, CompositionPlan)
    names = plan.composites()
    # Leaves-first: the subnet appears before the network that contains it.
    assert names.index("Composite-Service") < names.index("New-Composite")
    subnet = plan.entry_for("Composite-Service")
    assert subnet.children == ("Neem-Sensor", "Jade-Sensor", "Diamond-Sensor")
    assert subnet.expression == "(a + b + c)/3"
    network = plan.entry_for("New-Composite")
    assert network.children == ("Composite-Service", "Coral-Sensor")
    assert network.expression == "(a + b)/2"


def test_apply_plan_is_idempotent(lab):
    build_fig3_network(lab)
    plan = run(lab, lab.browser.save_network_plan())
    actions = run(lab, lab.browser.apply_network_plan(plan))
    assert actions == 0  # everything already matches


def test_apply_plan_restores_wiped_composite(lab):
    build_fig3_network(lab)
    plan = run(lab, lab.browser.save_network_plan())
    # Simulate a restart of the hand-built composite: wipe its state.
    composite = lab.composite
    composite.children = []
    composite.expression = None
    actions = run(lab, lab.browser.apply_network_plan(plan))
    assert actions == 4  # 3 children + 1 expression
    value = run(lab, lab.browser.get_value("New-Composite"))
    assert isinstance(value, float)


def test_apply_plan_refuses_conflicting_order(lab):
    build_fig3_network(lab)
    plan = run(lab, lab.browser.save_network_plan())
    composite = lab.composite
    # Re-order behind the plan's back: variables would shift.
    composite.children = list(reversed(composite.children))
    composite.expression = None
    from repro.core import BrowserError
    with pytest.raises(BrowserError):
        run(lab, lab.browser.apply_network_plan(plan))


def test_self_healing_after_cybernode_crash(lab):
    """End to end: crash the node hosting New-Composite; Rio re-provisions
    it empty; the façade's healing loop restores composition + expression;
    queries work again with no manual intervention."""
    env, browser = lab.env, lab.browser
    build_fig3_network(lab)
    plan = run(lab, lab.browser.save_network_plan())
    run(lab, browser.enable_self_healing(plan, interval=2.0))

    # Find and kill the cybernode hosting the provisioned composite.
    def host_of():
        item = yield from browser.accessor.find_one(
            ServiceTemplate.by_name("New-Composite", SENSOR_DATA_ACCESSOR),
            wait=3.0)
        return item.service.host if item else None

    home = run(lab, host_of())
    assert home in ("cybernode-0", "cybernode-1")
    lab.net.hosts[home].fail()

    # Lease lapse (10s) + monitor poll + instantiate + healing round.
    env.run(until=env.now + 40.0)
    new_home = run(lab, host_of())
    assert new_home is not None and new_home != home
    assert lab.facade.healing_actions >= 3  # 2 children + expression

    def verify():
        info = yield from browser.get_info("New-Composite")
        value = yield from browser.get_value("New-Composite")
        return info, value

    info, value = run(lab, verify())
    assert info["contained_services"] == ["Composite-Service", "Coral-Sensor"]
    assert info["expression"] == "(a + b)/2"
    truth = (lab.ground_truth_mean(
        ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
        + lab.world.sample("temperature", (3.0, 9.0), env.now)) / 2
    assert abs(value - truth) < 1.5


def test_disable_self_healing_stops_reapplying(lab):
    build_fig3_network(lab)
    plan = run(lab, lab.browser.save_network_plan())
    run(lab, lab.browser.enable_self_healing(plan, interval=1.0))
    run(lab, lab.browser.disable_self_healing())
    before = lab.facade.healing_actions
    lab.composite.children = []
    lab.composite.expression = None
    lab.env.run(until=lab.env.now + 10.0)
    assert lab.facade.healing_actions == before  # nothing reapplied


def build_partition_grid(fault_policy, **csp_kwargs):
    """Two ESPs + one CSP on separate hosts; returns the pieces needed to
    partition the CSP away from its second child."""
    env = Environment()
    net = Network(env, rng=np.random.default_rng(77),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=77)
    LookupService(Host(net, "lus-host")).start()
    esps = []
    for index, location in enumerate([(0.0, 0.0), (60.0, 0.0)]):
        name = f"P{index + 1}"
        probe = TemperatureProbe(env, name.lower(), world, location,
                                 rng=np.random.default_rng(index),
                                 sensing_noise=0.0)
        esp = ElementarySensorProvider(Host(net, f"{name}-host"), name, probe,
                                       sample_interval=1.0,
                                       location=Location(building="Lab"))
        esp.start()
        esps.append(esp)
    csp = CompositeSensorProvider(Host(net, "csp-host"),
                                  f"Composite-{fault_policy}",
                                  fault_policy=fault_policy,
                                  child_wait=1.0, child_timeout=1.0,
                                  **csp_kwargs)
    csp.start()
    for esp in esps:
        csp.add_child(esp.service_id, esp.name)
    env.run(until=3.0)
    return env, net, csp, esps


def query_csp(env, net, csp, tag):
    exerter = Exerter(Host(net, f"ph-client-{tag}"))

    def proc():
        yield env.timeout(2.0)
        task = Task(f"q-{tag}",
                    Signature(SENSOR_DATA_ACCESSOR, OP_GET_VALUE,
                              service_id=csp.service_id), ServiceContext())
        result = yield env.process(exerter.exert(task))
        return result

    return env.run(until=env.process(proc()))


def test_skip_policy_survives_partition_and_heals():
    env, net, csp, esps = build_partition_grid("skip")
    sides = (["csp-host"], ["P2-host"])
    warm = query_csp(env, net, csp, "skip-warm")
    assert warm.is_done, warm.exceptions

    net.partition(*sides)
    during = query_csp(env, net, csp, "skip-cut")
    # Skip aggregates the reachable child alone — P2 is cut off, not dead.
    assert during.is_done, during.exceptions
    # Repeated failures opened the CSP's breaker for the unreachable child.
    breakers = csp.exerter.breakers
    assert breakers.state_of(esps[1].service_id) is BreakerState.OPEN

    net.heal_partition(*sides)
    env.run(until=env.now + 12.0)  # past the breaker's reset_timeout
    healed = query_csp(env, net, csp, "skip-healed")
    assert healed.is_done, healed.exceptions
    # Nothing stuck: the half-open probe succeeded and closed the breaker.
    assert breakers.state_of(esps[1].service_id) is BreakerState.CLOSED

    # The whole episode is visible in the trace: the cut-off query's tree
    # still links up (no orphan spans even across the partition), and the
    # healed query fans out to both children again.
    tracer = tracer_of(net)
    assert_no_orphan_spans(tracer)
    assert_span_tree(tracer, (
        "exert:q-skip-healed", [
            ("serve:q-skip-healed", [
                ("exert:collect-P1", [("serve:collect-P1", ...)]),
                ("exert:collect-P2", [("serve:collect-P2", ...)]),
            ]),
        ]))


def test_degraded_policy_answers_through_partition_and_recovers():
    env, net, csp, esps = build_partition_grid("degraded",
                                               stale_max_age=120.0)
    csp.set_expression("(a + b)/2")
    sides = (["csp-host"], ["P2-host"])
    warm = query_csp(env, net, csp, "deg-warm")
    assert warm.is_done, warm.exceptions

    net.partition(*sides)
    during = query_csp(env, net, csp, "deg-cut")
    # Both variables stayed bound — b was served from last-known-good.
    assert during.is_done, during.exceptions
    assert csp.stale_substitutions >= 1
    notes = during.context.get_value(STALE_PATH)
    assert [n["child"] for n in notes] == ["P2"]
    assert resilience_events(net).count("stale_substitution") >= 1

    net.heal_partition(*sides)
    env.run(until=env.now + 12.0)
    substitutions_before = csp.stale_substitutions
    healed = query_csp(env, net, csp, "deg-healed")
    assert healed.is_done, healed.exceptions
    # Fresh data again: no new substitution, no stale flag in the result.
    assert csp.stale_substitutions == substitutions_before
    assert healed.context.get_value(STALE_PATH, None) is None
    # The unreachable child's failed collection hops were traced too: the
    # cut-off query's tree contains a failed exert for P2.
    tracer = tracer_of(net)
    assert_no_orphan_spans(tracer)
    [cut_root] = tracer.find(name="exert:q-deg-cut")
    descendants = [s for s in tracer.spans if s.trace_id == cut_root.trace_id]
    failed_p2 = [s for s in descendants
                 if s.name == "exert:collect-P2" and s.status == "failed"]
    assert failed_p2, [s.name for s in descendants]


def test_plan_validation():
    plan = CompositionPlan()
    plan.add("A", ["x", "y"], "(a+b)/2")
    with pytest.raises(ValueError):
        plan.add("A", ["z"])
    assert len(plan) == 1
    assert plan.entry_for("missing") is None
