"""Management-plane walk of a network partition, at paper-lab scale.

One ESP host is partitioned from the rest of the lab. The health model
must walk it UP -> DEGRADED (renewals failing, lease at risk) -> DOWN
(lease reaped) and back to UP after the partition heals — with no
flapping, and with the SLO alert surfacing through the Jini event
mailbox so an offline operator can collect it later.
"""

from repro.net import rpc_endpoint
from repro.observability import DEGRADED, DOWN, UP, Slo
from repro.scenarios import build_paper_lab


def partitioned_lab(seed=11):
    lab = build_paper_lab(seed=seed)
    lab.health.engine.add(Slo(
        "neem-node-health", "health.status{entity=node:neem-host}",
        1.0, kind="value", window=1, for_windows=1, clear_windows=2,
        description="neem node must not be DOWN"))
    return lab


def test_partition_walks_lab_node_down_and_back():
    lab = partitioned_lab()
    lab.settle(6.0)
    others = [name for name in lab.hosts if name != "neem-host"]
    lab.net.partition(["neem-host"], others)
    lab.env.run(until=60.0)
    lab.net.heal_partition(["neem-host"], others)
    lab.env.run(until=95.0)

    walk = [(tr["from"], tr["to"]) for tr in lab.health.model.transitions
            if tr["entity"] == "provider:Neem-Sensor"]
    # The full liveness walk, each state visited exactly once: no flap.
    assert walk == [("UNKNOWN", UP), (UP, DEGRADED), (DEGRADED, DOWN),
                    (DOWN, UP)]
    assert lab.health.model.status_of("provider:Neem-Sensor") == UP
    assert lab.health.model.status_of("node:neem-host") == UP
    assert lab.health.model.status_of("federation") == UP

    # A single partitioned node degrades, but never downs, the federation.
    fed = [(tr["from"], tr["to"]) for tr in lab.health.model.transitions
           if tr["entity"] == "federation"]
    assert fed == [("UNKNOWN", UP), (UP, DEGRADED), (DEGRADED, UP)]


def test_alert_fires_within_one_window_of_lease_expiry():
    lab = partitioned_lab()
    lab.settle(6.0)
    others = [name for name in lab.hosts if name != "neem-host"]
    lab.net.partition(["neem-host"], others)
    lab.env.run(until=60.0)
    lab.net.heal_partition(["neem-host"], others)
    lab.env.run(until=95.0)

    down_t = next(tr["t"] for tr in lab.health.model.transitions
                  if tr["entity"] == "node:neem-host" and tr["to"] == DOWN)
    edges = [(a.state, a.t) for a in lab.health.engine.alerts
             if a.slo == "neem-node-health"]
    assert [state for state, _ in edges] == ["firing", "resolved"]
    fired_at = edges[0][1]
    # One SLO window (for_windows=1, 1 s evaluation interval) after DOWN.
    assert down_t <= fired_at <= down_t + 1.0
    # Resolution follows the heal, after the clear hysteresis.
    assert edges[1][1] > 60.0


def test_alerts_surface_through_the_event_mailbox():
    lab = partitioned_lab()
    client = rpc_endpoint(lab.browser.host)

    def subscribe():
        registration = yield client.call(lab.mailbox.ref, "register", 600.0)
        yield from lab.browser.subscribe_health_alerts(registration.listener)
        return registration

    registration = lab.env.run(until=lab.env.process(subscribe()))
    lab.settle(6.0)
    others = [name for name in lab.hosts if name != "neem-host"]
    lab.net.partition(["neem-host"], others)
    lab.env.run(until=60.0)
    lab.net.heal_partition(["neem-host"], others)
    lab.env.run(until=95.0)

    def collect():
        events = yield client.call(lab.mailbox.ref, "collect",
                                   registration.registration_id, 100)
        return events

    events = lab.env.run(until=lab.env.process(collect()))
    ours = [e for e in events if e.slo == "neem-node-health"]
    assert [e.state for e in ours] == ["firing", "resolved"]
    firing = ours[0]
    assert firing.signal == 2.0 and firing.threshold == 1.0
    assert firing.description == "neem node must not be DOWN"
    # Events carry the simulation timestamp of the alert edge, not of
    # delivery: an operator reconstructs the incident timeline offline.
    assert firing.t < ours[1].t <= 95.0
