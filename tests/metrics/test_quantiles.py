"""Shared bucket-quantile estimator (used by Histogram, tables, health)."""

import pytest

from repro.metrics import max_from_buckets, quantile_from_buckets
from repro.observability import Histogram


BOUNDS = (1.0, 2.0, 4.0, 8.0)


def test_empty_histogram_has_no_quantiles():
    assert quantile_from_buckets(BOUNDS, [0, 0, 0, 0, 0], 0.5) is None
    assert max_from_buckets(BOUNDS, [0, 0, 0, 0, 0]) is None


def test_quantile_range_validated():
    with pytest.raises(ValueError):
        quantile_from_buckets(BOUNDS, [1, 0, 0, 0, 0], 1.5)
    with pytest.raises(ValueError):
        quantile_from_buckets(BOUNDS, [1, 0, 0, 0, 0], -0.1)


def test_interpolation_inside_one_bucket():
    # 10 samples, all in the (2, 4] bucket: ranks spread linearly across it.
    counts = [0, 0, 10, 0, 0]
    assert quantile_from_buckets(BOUNDS, counts, 0.5) == pytest.approx(3.0)
    assert quantile_from_buckets(BOUNDS, counts, 0.1) == pytest.approx(2.2)
    assert quantile_from_buckets(BOUNDS, counts, 1.0) == pytest.approx(4.0)


def test_first_bucket_interpolates_from_zero():
    counts = [4, 0, 0, 0, 0]
    assert quantile_from_buckets(BOUNDS, counts, 0.5) == pytest.approx(0.5)


def test_non_interpolated_reports_bucket_bound():
    counts = [0, 0, 10, 0, 0]
    assert quantile_from_buckets(BOUNDS, counts, 0.5,
                                 interpolate=False) == 4.0


def test_inf_bucket_is_clamped_when_interpolating():
    counts = [0, 0, 0, 0, 3]
    assert quantile_from_buckets(BOUNDS, counts, 0.5) == 8.0
    assert quantile_from_buckets(BOUNDS, counts, 0.5,
                                 interpolate=False) == float("inf")


def test_max_from_buckets_highest_occupied_bound():
    assert max_from_buckets(BOUNDS, [1, 3, 2, 0, 0]) == 4.0
    assert max_from_buckets(BOUNDS, [1, 0, 0, 0, 2]) == float("inf")


def test_histogram_interpolated_quantile_and_max():
    h = Histogram("t", buckets=BOUNDS)
    for value in (0.5, 1.5, 2.5, 3.0, 3.5):
        h.observe(value)
    # 3 of 5 samples in (2, 4]: p50 rank 2.5 sits 0.5/3 into that bucket.
    assert h.quantile_interpolated(0.5) == pytest.approx(2.0 + 2.0 * 0.5 / 3)
    assert h.quantile(0.5) == 4.0  # bucket-bound form unchanged
    assert h.max_bound == 4.0
    assert Histogram("e", buckets=BOUNDS).max_bound is None


def test_registry_quantile_reader_does_not_create():
    from repro.observability import MetricsRegistry
    registry = MetricsRegistry()
    assert registry.quantile("nope", 0.95) is None
    assert len(registry) == 0
    h = registry.histogram("lat", buckets=BOUNDS)
    h.observe(3.0)
    assert registry.quantile("lat", 1.0) == pytest.approx(4.0)
    registry.counter("c").inc()
    assert registry.quantile("c", 0.5) is None  # not a histogram
