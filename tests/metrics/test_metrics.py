"""Recorder and table rendering."""

import numpy as np
import pytest

from repro.metrics import Recorder, format_value, render_table


def test_record_and_summary():
    rec = Recorder()
    for v in (1.0, 2.0, 3.0, 4.0, 5.0):
        rec.record("latency", v)
    s = rec.summary("latency")
    assert s["count"] == 5
    assert s["mean"] == 3.0
    assert s["p50"] == 3.0
    assert s["min"] == 1.0
    assert s["max"] == 5.0
    assert s["total"] == 15.0


def test_empty_summary():
    rec = Recorder()
    s = rec.summary("nothing")
    assert s["count"] == 0
    assert s["mean"] is None


def test_p95():
    rec = Recorder()
    for v in range(100):
        rec.record("x", float(v))
    assert rec.summary("x")["p95"] == pytest.approx(94.05)


def test_counters():
    rec = Recorder()
    rec.count("errors")
    rec.count("errors", 2)
    assert rec.counter("errors") == 3
    assert rec.counter("unknown") == 0


def test_merge():
    a, b = Recorder(), Recorder()
    a.record("x", 1.0)
    b.record("x", 3.0)
    b.count("n", 5)
    a.merge(b)
    assert a.summary("x")["mean"] == 2.0
    assert a.counter("n") == 5


def test_series_names_sorted():
    rec = Recorder()
    rec.record("b", 1)
    rec.record("a", 1)
    assert rec.series_names() == ["a", "b"]


def test_format_value():
    assert format_value(None) == "-"
    assert format_value(True) == "yes"
    assert format_value(0.0) == "0"
    assert format_value(3.14159) == "3.14"
    assert format_value(1234567.0) == "1,234,567"
    assert format_value(0.000123) == "0.000123"
    assert format_value("text") == "text"


def test_render_table_alignment():
    table = render_table(
        ["system", "latency", "bytes"],
        [["direct", 1.5, 10400], ["sensorcer", 0.3, 1200]],
        title="E-OVH")
    lines = table.splitlines()
    assert lines[0] == "E-OVH"
    assert "system" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "direct" in lines[3]
    assert "sensorcer" in lines[4]
    # Right-aligned numeric columns line up.
    assert lines[3].rstrip().endswith("10,400")
    assert lines[4].rstrip().endswith("1,200")


def test_render_traffic():
    import numpy as np
    from repro.sim import Environment
    from repro.net import FixedLatency, Host, Network
    from repro.metrics import render_traffic

    env = Environment()
    net = Network(env, rng=np.random.default_rng(1),
                  latency=FixedLatency(0.001))
    a, b = Host(net, "a"), Host(net, "b")
    b.open_port("p", lambda m: None)
    a.send("b", "p", kind="data", payload="x" * 50)
    a.send("b", "p", kind="ctl", payload=1)
    env.run()
    table = render_traffic(net.stats)
    lines = table.splitlines()
    assert lines[-1].startswith("TOTAL")
    assert "data" in table and "ctl" in table
    # Sorted by total bytes descending: data row above ctl row.
    assert table.index("data") < table.index("ctl")


def test_counter_read_does_not_mutate():
    """Regression: reading an unknown counter must not insert it.

    ``_counters`` is a defaultdict; ``counter()`` subscripting it would
    create the key as a side effect, so merely *inspecting* a recorder
    changed its state (and broke equality-based trace comparisons).
    """
    rec = Recorder()
    assert rec.counter("never.incremented") == 0.0
    assert "never.incremented" not in rec._counters
    # Same bug class for sample series reads.
    assert rec.samples("never.recorded") == []
    assert "never.recorded" not in rec._series
    assert rec.series_names() == []


def test_samples_returns_a_copy():
    rec = Recorder()
    rec.record("x", 1.0)
    rec.samples("x").append(99.0)
    assert rec.samples("x") == [1.0]


def test_events_trace():
    rec = Recorder()
    rec.event("retry", 1.5, attempt=0)
    rec.event("open", 2.0)
    assert rec.events() == [(1.5, "retry", (("attempt", 0),)),
                            (2.0, "open", ())]
    assert rec.events("retry") == [(1.5, "retry", (("attempt", 0),))]
