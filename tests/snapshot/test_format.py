"""The snapshot envelope: canonical, versioned, torn-write-proof.

The acceptance property from DESIGN §14: truncating a snapshot file at
*any* byte offset — plus bit flips and appended tails — produces a typed
:class:`SnapshotCorrupt`/:class:`SnapshotVersionError`, never partially
decoded state.
"""

import json

import pytest

from repro.snapshot.format import (
    FORMAT,
    VERSION,
    SnapshotCorrupt,
    SnapshotError,
    SnapshotVersionError,
    canonical_dumps,
    read_snapshot,
    write_snapshot,
)

BODY = {"program": {"kind": "status", "seed": 2009},
        "state": {"kernel": {"now": 12.0}, "metrics": {"a": 1}},
        "checkpoint": {"at": 12.0, "index": 0},
        "digest": "d" * 64}


def _write(tmp_path, body=None):
    path = tmp_path / "s.snap"
    digest = write_snapshot(path, body if body is not None else BODY)
    return path, digest


def test_round_trip(tmp_path):
    path, digest = _write(tmp_path)
    assert read_snapshot(path) == BODY
    assert len(digest) == 64


def test_file_is_two_canonical_lines(tmp_path):
    path, digest = _write(tmp_path)
    lines = path.read_bytes().split(b"\n")
    assert len(lines) == 3 and lines[2] == b""
    header = json.loads(lines[0])
    assert header == {"format": FORMAT, "version": VERSION,
                      "length": len(lines[1]) + 1, "sha256": digest}
    assert lines[1] + b"\n" == canonical_dumps(BODY).encode("utf-8")


def test_rewrite_is_byte_stable(tmp_path):
    path_a, _ = _write(tmp_path)
    raw = path_a.read_bytes()
    path_b = tmp_path / "again.snap"
    write_snapshot(path_b, json.loads(json.dumps(BODY)))
    assert path_b.read_bytes() == raw


def test_truncation_at_every_offset_is_typed(tmp_path):
    path, _ = _write(tmp_path)
    raw = path.read_bytes()
    torn = tmp_path / "torn.snap"
    # Every prefix — mid-header, the bare header, mid-body — must raise a
    # typed SnapshotError; nothing may come back as a state document.
    for cut in list(range(0, len(raw), 7)) + [len(raw) - 1]:
        torn.write_bytes(raw[:cut])
        with pytest.raises((SnapshotCorrupt, SnapshotVersionError)):
            read_snapshot(torn)


def test_appended_tail_detected(tmp_path):
    path, _ = _write(tmp_path)
    path.write_bytes(path.read_bytes() + b"{}\n")
    with pytest.raises(SnapshotCorrupt, match="torn write"):
        read_snapshot(path)


def test_flipped_body_bit_detected(tmp_path):
    path, _ = _write(tmp_path)
    raw = bytearray(path.read_bytes())
    raw[-10] ^= 0x01
    path.write_bytes(bytes(raw))
    with pytest.raises(SnapshotCorrupt, match="sha256 mismatch"):
        read_snapshot(path)


def test_unknown_version_is_typed(tmp_path):
    path, _ = _write(tmp_path)
    header, body = path.read_bytes().split(b"\n", 1)
    doc = json.loads(header)
    doc["version"] = VERSION + 1
    path.write_bytes(canonical_dumps(doc).encode("utf-8") + body)
    with pytest.raises(SnapshotVersionError, match="version"):
        read_snapshot(path)


def test_foreign_json_file_is_typed(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"hello": "world"}\n{}\n', encoding="utf-8")
    with pytest.raises(SnapshotVersionError, match="not a repro-snapshot"):
        read_snapshot(path)


def test_missing_file_is_typed(tmp_path):
    with pytest.raises(SnapshotCorrupt, match="cannot read"):
        read_snapshot(tmp_path / "absent.snap")


def test_empty_file_is_typed(tmp_path):
    path = tmp_path / "empty.snap"
    path.write_bytes(b"")
    with pytest.raises(SnapshotCorrupt, match="truncated"):
        read_snapshot(path)


def test_all_errors_share_the_base_class():
    assert issubclass(SnapshotCorrupt, SnapshotError)
    assert issubclass(SnapshotVersionError, SnapshotError)
