"""The snapshot/restore CLI verbs, including a genuinely fresh process.

The restore contract demands equivalence when the restoring process is a
*different* process from the snapshotting one — and even one configured
for the other kernel scheduler, because the snapshot's program spec wins
over process environment.
"""

import io
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.cli import main
from repro.sim.core import KERNEL_SCHEDULER_ENV
from repro.snapshot.format import read_snapshot

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def _snapshot(tmp_path, *extra):
    path = tmp_path / "cli.snap"
    code, text = _run(["snapshot", "--at", "12", "--out", str(path), *extra])
    assert code == 0, text
    assert "snapshot written" in text
    return path


def test_snapshot_then_verify_only(tmp_path):
    path = _snapshot(tmp_path)
    code, text = _run(["restore", str(path), "--verify-only"])
    assert code == 0
    assert "replayed state matches checkpoint" in text


def test_restore_json_equals_straight_status(tmp_path):
    path = _snapshot(tmp_path)
    code, restored = _run(["restore", str(path), "--json"])
    assert code == 0
    straight_code, straight = _run(["status", "--json"])
    assert straight_code == 0
    assert restored == straight


def test_checkpoint_outside_horizon_refused(tmp_path):
    code, text = _run(["snapshot", "--at", "99",
                       "--out", str(tmp_path / "never.snap")])
    assert code == 2
    assert "outside the run's horizon" in text
    assert not (tmp_path / "never.snap").exists()


def test_torn_snapshot_is_a_typed_cli_error(tmp_path):
    path = _snapshot(tmp_path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    code, text = _run(["restore", str(path)])
    assert code == 2
    assert "SnapshotCorrupt" in text


def test_restore_spill_marks_run_as_restored(tmp_path):
    from repro.observability import HistoryStore
    path = _snapshot(tmp_path)
    db = tmp_path / "hist.db"
    code, text = _run(["restore", str(path), "--spill", str(db),
                       "--run-id", "resumed"])
    assert code == 0, text
    digest = read_snapshot(path)["digest"]
    with HistoryStore(db) as store:
        (run,) = store.runs()
    assert run["run_id"] == "resumed"
    assert run["restored_from"] == digest
    code, listing = _run(["history", "--db", str(db), "list"])
    assert code == 0
    assert "restored-from" in listing
    assert digest[:12] in listing


def test_restore_in_fresh_process_matches(tmp_path):
    path = _snapshot(tmp_path)
    _, straight = _run(["status", "--json"])
    recorded_kernel = read_snapshot(path)["program"]["scheduler"]
    other = "calendar" if recorded_kernel == "heap" else "heap"
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    # Hostile restore environment: the fresh process is configured for
    # the *other* scheduler; the spec must override it.
    env[KERNEL_SCHEDULER_ENV] = other
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "restore", str(path), "--json"],
        env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout == straight
