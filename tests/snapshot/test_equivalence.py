"""Restore-and-continue equivalence — the tentpole acceptance matrix.

Snapshot a run at time T, restore from the file, continue to the end:
every canonical output (``status --json`` document, trace JSONL, chaos
verdict JSON) must be byte-identical to the same run left uninterrupted —
under *both* kernel schedulers and multiple tie-break shuffle seeds,
because the snapshot records kernel configuration in its program spec and
the replay forces it.
"""

import json

import pytest

from repro.snapshot.capture import state_digest
from repro.snapshot.format import (
    RestoreMismatch,
    SnapshotCorrupt,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.programs import campaign_spec, run_program, status_spec
from repro.snapshot.restore import diff_sections, restore_run

CHECKPOINT_AT = 12.0
UNTIL = 24.0


def _status_round_trip(tmp_path, scheduler, tie_break_seed):
    spec = status_spec(seed=2009, until=UNTIL, scheduler=scheduler,
                       tie_break_seed=tie_break_seed)
    path = tmp_path / "run.snap"
    baseline, checkpointer = run_program(spec, checkpoint_at=[CHECKPOINT_AT],
                                         sink=str(path))
    assert [str(written) for written in checkpointer.written] == [str(path)]
    restored, body = restore_run(path)
    return baseline, restored, body


@pytest.mark.parametrize("tie_break_seed", [None, 1, 2])
@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_status_restore_is_byte_identical(tmp_path, scheduler,
                                          tie_break_seed):
    baseline, restored, body = _status_round_trip(tmp_path, scheduler,
                                                  tie_break_seed)
    assert body["program"]["scheduler"] == scheduler
    assert body["program"]["tie_break_seed"] == tie_break_seed
    assert sorted(restored) == ["status", "trace"]
    assert restored["status"] == baseline["status"]
    assert restored["trace"] == baseline["trace"]


def test_snapshot_state_is_substantial(tmp_path):
    _, _, body = _status_round_trip(tmp_path, "heap", None)
    state = body["state"]
    assert state["kernel"]["now"] == CHECKPOINT_AT
    # The whole federation is in the file, not just the kernel clock.
    for section in ("health", "metrics", "net", "trace"):
        assert section in state
    assert any(key.startswith("jini.lus.") for key in state)
    assert any(key.startswith("resilience.breakers.") for key in state)
    assert any(key.startswith("sensor.probe.") for key in state)
    assert len(state) >= 18


def test_campaign_restore_reproduces_the_verdict(tmp_path):
    from repro.chaos import CampaignConfig, CampaignRunner
    runner = CampaignRunner(scenario="paper-lab",
                            config=CampaignConfig(horizon=45.0))
    spec = campaign_spec(runner.plan_for(5).to_dict())
    path = tmp_path / "campaign.snap"
    baseline, _ = run_program(spec, checkpoint_at=[10.0], sink=str(path))
    restored, body = restore_run(path)
    assert body["checkpoint"]["label"] == "campaign"
    assert restored["verdict"] == baseline["verdict"]
    # The recorded plan really produced a judged run, not a vacuous pass.
    assert json.loads(baseline["verdict"])["plan"]["events"]


def test_tampered_state_fails_before_replay(tmp_path):
    _, _, body = _status_round_trip(tmp_path, "heap", None)
    body["state"]["metrics"] = {"forged": True}
    path = tmp_path / "tampered.snap"
    write_snapshot(path, body)
    # Recorded digest no longer covers the recorded state: refused before
    # any program is rebuilt.
    with pytest.raises(SnapshotCorrupt, match="digest does not match"):
        restore_run(path)


def test_divergent_state_raises_restore_mismatch(tmp_path):
    _, _, body = _status_round_trip(tmp_path, "heap", None)
    body["state"]["metrics"] = {"forged": True}
    body["digest"] = state_digest(body["state"])  # consistent but wrong
    path = tmp_path / "divergent.snap"
    write_snapshot(path, body)
    with pytest.raises(RestoreMismatch, match="metrics"):
        restore_run(path)


def test_missing_section_fields_are_typed(tmp_path):
    _, _, body = _status_round_trip(tmp_path, "heap", None)
    del body["program"]
    path = tmp_path / "gutted.snap"
    write_snapshot(path, body)
    with pytest.raises(SnapshotCorrupt, match="missing 'program'"):
        restore_run(path)


def test_verify_only_stops_at_the_checkpoint(tmp_path):
    _, _, body = _status_round_trip(tmp_path, "heap", None)
    path = tmp_path / "verify.snap"
    write_snapshot(path, body)
    outputs, verified_body = restore_run(path, continue_run=False)
    assert outputs is None
    assert verified_body["digest"] == body["digest"]


def test_diff_sections_reports_changed_and_missing():
    expected = {"a": 1, "b": {"x": 2}, "c": 3}
    actual = {"a": 1, "b": {"x": 99}, "d": 4}
    # Sorted by key, with presence markers for one-sided sections.
    assert diff_sections(expected, actual) == ["b", "-c", "+d"]


def test_unknown_program_kind_rejected():
    with pytest.raises(ValueError, match="unknown snapshot program"):
        run_program({"kind": "mystery"})


def test_snapshot_file_round_trips_through_reader(tmp_path):
    _, _, body = _status_round_trip(tmp_path, "calendar", 1)
    path = tmp_path / "reread.snap"
    digest = write_snapshot(path, body)
    reread = read_snapshot(path)
    assert reread == body
    assert len(digest) == 64
