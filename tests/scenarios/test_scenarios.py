"""Canned scenarios build and behave."""

import pytest

from repro.jini import ServiceTemplate
from repro.core import SENSOR_DATA_ACCESSOR
from repro.scenarios import (
    build_direct_grid,
    build_farm,
    build_paper_lab,
    build_sensorcer_grid,
    grid_locations,
)


def test_grid_locations_unique_and_deterministic():
    locations = grid_locations(17)
    assert len(set(locations)) == 17
    assert grid_locations(17) == locations


def test_paper_lab_deterministic():
    lab1 = build_paper_lab(seed=5)
    lab1.settle(6.0)
    lab2 = build_paper_lab(seed=5)
    lab2.settle(6.0)
    names1 = sorted(i.name() for i in lab1.lus.lookup_all())
    names2 = sorted(i.name() for i in lab2.lus.lookup_all())
    assert names1 == names2
    v1 = lab1.env.run(until=lab1.env.process(
        lab1.browser.get_value("Neem-Sensor")))
    v2 = lab2.env.run(until=lab2.env.process(
        lab2.browser.get_value("Neem-Sensor")))
    assert v1 == v2


def test_sensorcer_grid_flat(monkeypatch):
    grid = build_sensorcer_grid(6, seed=3, fixed_latency=0.001)
    grid.settle(6.0)
    items = grid.lus.lookup(ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), 64)
    assert len(items) == 7  # 6 ESPs + root composite
    assert len(grid.root.children) == 6


def test_sensorcer_grid_tree():
    grid = build_sensorcer_grid(9, seed=3, tree_fanout=3, fixed_latency=0.001)
    grid.settle(6.0)
    # 9 leaves in groups of 3 -> 3 group composites under the root.
    assert len(grid.root.children) == 3
    assert len(grid.composites) == 4  # root + 3 groups


def test_sensorcer_grid_tree_value_matches_truth():
    grid = build_sensorcer_grid(9, seed=3, tree_fanout=3, fixed_latency=0.001)
    grid.settle(6.0)
    from repro.net import Host
    from repro.sorcer import Exerter, ServiceContext, Signature, Task
    exerter = Exerter(Host(grid.net, "requestor"))

    def proc():
        task = Task("root-value",
                    Signature(SENSOR_DATA_ACCESSOR, "getValue",
                              service_id=grid.root.service_id),
                    ServiceContext())
        result = yield grid.env.process(exerter.exert(task))
        return result

    result = grid.env.run(until=grid.env.process(proc()))
    assert result.is_done, result.exceptions
    # Mean of group means == global mean only for equal group sizes (true
    # here: 3 groups x 3 sensors).
    assert abs(result.get_return_value() - grid.ground_truth_mean()) < 1.0


def test_direct_grid_builds_nodes():
    grid = build_direct_grid(5, seed=3, fixed_latency=0.001)
    assert len(grid.sensors) == 5
    assert grid.lus is None


def test_farm_structure():
    farm = build_farm(seed=4, n_fields=2, sensors_per_field=4)
    farm.settle(6.0)
    assert len(farm.fields) == 2
    assert len(farm.fields["Field-0"]) == 4
    items = farm.lus.lookup(ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), 64)
    # 8 ESPs + 2 field composites + 1 farm composite.
    assert len(items) == 11


def test_farm_field_composition_and_value():
    farm = build_farm(seed=4, n_fields=1, sensors_per_field=4)
    farm.settle(6.0)
    env, browser = farm.env, farm.browser
    temp_sensors = [esp.name for esp in farm.fields["Field-0"]
                    if esp.probe.teds.quantity == "temperature"]

    def proc():
        yield from browser.compose_service("Field-0", temp_sensors)
        yield from browser.add_expression("Field-0", "(a + b)/2")
        value = yield from browser.get_value("Field-0")
        return value

    value = env.run(until=env.process(proc()))
    truth = farm.ground_truth_field_mean("Field-0", "temperature")
    assert abs(value - truth) < 1.0
