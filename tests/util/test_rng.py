"""Named RNG substreams: independence, reproducibility, and the
regression the scheme exists for — adding a consumer cannot shift
another stream's draws."""

import numpy as np

from repro.util.rng import stream_hash, substream


def test_same_path_same_sequence():
    a = substream(2009, "chaos", "plan")
    b = substream(2009, "chaos", "plan")
    assert np.array_equal(a.random(32), b.random(32))


def test_distinct_paths_distinct_sequences():
    draws = {name: substream(2009, name).random(8).tobytes()
             for name in ("chaos", "sensors.faults", "latency")}
    assert len(set(draws.values())) == len(draws)
    # Path order matters: ("a","b") != ("b","a").
    assert not np.array_equal(substream(1, "a", "b").random(4),
                              substream(1, "b", "a").random(4))


def test_substream_differs_from_plain_default_rng():
    assert not np.array_equal(substream(7).random(4),
                              np.random.default_rng(7).random(4))


def test_stream_hash_is_stable_and_order_sensitive():
    assert stream_hash("chaos", "plan") == stream_hash("chaos", "plan")
    assert stream_hash("chaos", "plan") != stream_hash("plan", "chaos")
    assert 0 <= stream_hash("x") <= 0xFFFFFFFF


def test_probe_fault_timing_survives_new_chaos_stream():
    """Regression for the unified seeding scheme: deriving (and draining)
    a chaos substream must not move a single probe-fault hazard draw —
    with a shared RNG it would shift every subsequent decision."""
    from repro.sensors.faults import FaultInjector

    def fault_timeline():
        injector = FaultInjector(seed=2009, name="Neem-Sensor",
                                 dropout_rate=0.05, stuck_rate=0.05,
                                 hold=2.0)
        return [injector.mode_at(float(t)).value for t in range(200)]

    baseline = fault_timeline()
    # A new consumer appears and draws heavily from the same seed.
    substream(2009, "chaos", "plan").random(10_000)
    assert fault_timeline() == baseline
    # The timeline actually contains faults (the test bites something).
    assert set(baseline) != {"ok"}


def test_fault_injector_streams_are_per_probe():
    from repro.sensors.faults import FaultInjector

    def timeline(name):
        injector = FaultInjector(seed=2009, name=name, dropout_rate=0.1,
                                 hold=1.0)
        return [injector.mode_at(float(t)).value for t in range(100)]

    assert timeline("Neem-Sensor") != timeline("Jade-Sensor")
    assert timeline("Neem-Sensor") == timeline("Neem-Sensor")
