"""IdSource determinism and uniqueness."""

import numpy as np

from repro.util import IdSource


def test_uuid_shape():
    ids = IdSource(np.random.default_rng(1))
    uid = ids.uuid()
    parts = uid.split("-")
    assert [len(p) for p in parts] == [8, 4, 4, 4, 12]
    int(uid.replace("-", ""), 16)  # hex throughout


def test_uuids_unique():
    ids = IdSource(np.random.default_rng(1))
    batch = {ids.uuid() for _ in range(500)}
    assert len(batch) == 500


def test_same_seed_same_sequence():
    a = IdSource(np.random.default_rng(7))
    b = IdSource(np.random.default_rng(7))
    assert [a.uuid() for _ in range(5)] == [b.uuid() for _ in range(5)]


def test_different_seed_differs():
    a = IdSource(np.random.default_rng(1))
    b = IdSource(np.random.default_rng(2))
    assert a.uuid() != b.uuid()


def test_sequence_monotone():
    ids = IdSource(np.random.default_rng(1))
    values = [ids.sequence() for _ in range(10)]
    assert values == sorted(values)
    assert len(set(values)) == 10


def test_uuid_and_sequence_share_counter_without_collisions():
    ids = IdSource(np.random.default_rng(1))
    ids.uuid()
    n1 = ids.sequence()
    ids.uuid()
    n2 = ids.sequence()
    assert n2 > n1
