"""Crash-safe writes: commit publishes atomically, abort leaves no trace."""

import os

import pytest

from repro.util.atomicio import AtomicFile, atomic_write_bytes, atomic_write_text


def _temp_files(directory):
    return [name for name in sorted(os.listdir(directory)) if ".tmp." in name]


def test_write_text_round_trip(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, '{"a":1}\n')
    assert target.read_text(encoding="utf-8") == '{"a":1}\n'
    assert _temp_files(tmp_path) == []


def test_write_bytes_overwrites_previous(tmp_path):
    target = tmp_path / "artifact.bin"
    atomic_write_bytes(target, b"old")
    atomic_write_bytes(target, b"new")
    assert target.read_bytes() == b"new"
    assert _temp_files(tmp_path) == []


def test_abort_preserves_existing_content(tmp_path):
    target = tmp_path / "artifact.txt"
    atomic_write_text(target, "original\n")
    handle = AtomicFile(target)
    handle.write("half-writ")
    handle.abort()
    assert target.read_text(encoding="utf-8") == "original\n"
    assert _temp_files(tmp_path) == []


def test_abort_without_existing_leaves_nothing(tmp_path):
    target = tmp_path / "never.txt"
    handle = AtomicFile(target)
    handle.write("discarded")
    handle.abort()
    assert not target.exists()
    assert _temp_files(tmp_path) == []


def test_context_manager_commits_on_success(tmp_path):
    target = tmp_path / "ok.txt"
    with AtomicFile(target) as handle:
        handle.write("done\n")
    assert target.read_text(encoding="utf-8") == "done\n"


def test_context_manager_aborts_on_exception(tmp_path):
    target = tmp_path / "broken.txt"
    atomic_write_text(target, "before\n")
    with pytest.raises(RuntimeError):
        with AtomicFile(target) as handle:
            handle.write("partial")
            raise RuntimeError("writer died")
    assert target.read_text(encoding="utf-8") == "before\n"
    assert _temp_files(tmp_path) == []


def test_content_invisible_until_close(tmp_path):
    target = tmp_path / "staged.txt"
    handle = AtomicFile(target)
    handle.write("staged")
    assert not target.exists()
    handle.close()
    assert target.read_text(encoding="utf-8") == "staged"


def test_close_is_idempotent(tmp_path):
    target = tmp_path / "twice.txt"
    handle = AtomicFile(target)
    handle.write("x")
    handle.close()
    handle.close()
    handle.abort()  # after a commit, abort is a no-op too
    assert target.read_text(encoding="utf-8") == "x"


def test_binary_mode(tmp_path):
    target = tmp_path / "raw.bin"
    with AtomicFile(target, mode="wb") as handle:
        handle.write(b"\x00\xff")
    assert target.read_bytes() == b"\x00\xff"


def test_bad_mode_rejected(tmp_path):
    with pytest.raises(ValueError):
        AtomicFile(tmp_path / "x", mode="a")
