"""TimeSeriesStore: windowed rollups of the metrics registry."""

import pytest

from repro.observability import MetricsRegistry, TimeSeriesStore


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def store(registry):
    return TimeSeriesStore(registry, interval=1.0, retention=5)


def test_store_validates_parameters(registry):
    with pytest.raises(ValueError):
        TimeSeriesStore(registry, interval=0.0)
    with pytest.raises(ValueError):
        TimeSeriesStore(registry, retention=0)


def test_counter_windows_record_deltas_and_rates(registry, store):
    calls = registry.counter("rpc.calls", host="a")
    calls.inc(10)
    store.collect(1.0)
    calls.inc(4)
    store.collect(2.0)
    store.collect(3.0)  # idle window: appends nothing (sparse ring)
    series = store.series("rpc.calls{host=a}")
    assert [w.delta for w in series] == [10.0, 4.0]
    assert [w.rate for w in series] == [10.0, 4.0]
    # The readers reconstruct the implied zero window from the horizon.
    assert store.rate("rpc.calls{host=a}") == 0.0
    assert store.rate("rpc.calls{host=a}", windows=3) == pytest.approx(14 / 3)
    assert store.delta("rpc.calls{host=a}", windows=2) == 4.0


def test_gauge_windows_record_value_and_high_water(registry, store):
    depth = registry.gauge("queue.depth")
    depth.set(3)
    store.collect(1.0)
    depth.set(7)
    depth.set(2)
    store.collect(2.0)
    series = store.series("queue.depth")
    assert [w.value for w in series] == [3.0, 2.0]
    assert series[-1].max == 7.0  # high-water survives the dip
    assert store.value("queue.depth") == 2.0
    assert store.value("unknown") is None


def test_histogram_windows_use_window_deltas_not_cumulative(registry, store):
    lat = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 0.5, 0.5):
        lat.observe(v)
    store.collect(1.0)
    for v in (3.0, 3.0, 3.0):  # second window is all-slow
        lat.observe(v)
    store.collect(2.0)
    first, second = store.series("lat")
    assert first.count == 3 and second.count == 3
    assert first.p95 <= 1.0
    # Cumulative p95 would be dragged down by the three fast samples;
    # the window rollup must see only the slow ones.
    assert second.p50 > 2.0
    assert second.max == 4.0
    assert store.quantile("lat", 0.95) == second.p95
    assert store.quantile("lat", 0.95, windows=2) == second.p95  # worst wins


def test_quantile_rejects_unkept_quantiles(registry, store):
    registry.histogram("lat").observe(0.1)
    store.collect(1.0)
    with pytest.raises(ValueError):
        store.quantile("lat", 0.99)


def test_retention_ring_is_bounded(registry, store):
    counter = registry.counter("c")
    for tick in range(10):
        counter.inc()
        store.collect(float(tick))
    series = store.series("c")
    assert len(series) == 5  # retention
    assert series[0].t == 5.0  # oldest windows fell off


def test_sum_rate_collapses_labels(registry, store):
    registry.counter("exertion.failures", host="a").inc(2)
    registry.counter("exertion.failures", host="b").inc(4)
    registry.counter("exertion.retries", host="a").inc(100)
    store.collect(1.0)
    assert store.sum_rate("exertion.failures") == 6.0


def test_snapshot_is_sorted_and_plain(registry, store):
    registry.counter("b").inc()
    registry.gauge("a").set(1)
    store.collect(1.0)
    snap = store.snapshot()
    assert list(snap) == ["a", "b"]
    assert snap["b"] == [{"t": 1.0, "kind": "counter", "delta": 1.0,
                          "rate": 1.0}]


def test_metrics_created_after_first_collect_join_later(registry, store):
    registry.counter("early").inc()
    store.collect(1.0)
    registry.counter("late").inc(5)
    store.collect(2.0)
    # "early" was idle over the second window: sparse ring, one window.
    assert len(store.series("early")) == 1
    assert store.rate("early") == 0.0  # ...but the horizon reads as zero
    late = store.series("late")
    assert len(late) == 1 and late[0].delta == 5.0
