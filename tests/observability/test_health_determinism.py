"""Determinism of the management plane under partition/heal schedules.

The acceptance bar for the whole observability layer: two identical runs
(same seed, same fault schedule) must produce byte-identical canonical
status JSON and the exact same alert sequence. Hypothesis drives the
schedule; any divergence is a hidden source of nondeterminism (dict
ordering, wall-clock leakage, unseeded randomness) in the health path.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.observability import Slo
from repro.observability.status import status_json
from repro.scenarios import build_paper_lab

#: Trimmed lab — two ESPs are enough to exercise every health path.
SENSORS = ("Neem-Sensor", "Jade-Sensor")


def run_schedule(seed, victim, partition_at, heal_after):
    """Build a lab, partition one sensor host per the schedule, heal it,
    and return (canonical status JSON bytes, alert edge tuples)."""
    lab = build_paper_lab(seed=seed, sensor_names=SENSORS)
    lab.health.engine.add(Slo(
        f"{victim}-node-health", f"health.status{{entity=node:{victim}}}",
        1.0, kind="value", window=1, for_windows=1, clear_windows=2))
    lab.settle(5.0)
    others = [name for name in lab.hosts if name != victim]
    lab.env.run(until=partition_at)
    lab.net.partition([victim], others)
    lab.env.run(until=partition_at + heal_after)
    lab.net.heal_partition([victim], others)
    lab.env.run(until=partition_at + heal_after + 20.0)
    document = status_json(lab.health.snapshot(), seed=seed)
    alerts = [(a.t, a.slo, a.state, a.signal) for a in lab.health.engine.alerts]
    return document, alerts


@settings(max_examples=5)
@given(seed=st.integers(min_value=0, max_value=2**16),
       victim=st.sampled_from(["neem-host", "jade-host"]),
       partition_at=st.integers(min_value=6, max_value=15),
       heal_after=st.integers(min_value=5, max_value=40))
@example(seed=2009, victim="neem-host", partition_at=8, heal_after=35)
def test_same_seed_same_schedule_is_byte_identical(seed, victim,
                                                   partition_at, heal_after):
    first_json, first_alerts = run_schedule(seed, victim,
                                            partition_at, heal_after)
    second_json, second_alerts = run_schedule(seed, victim,
                                              partition_at, heal_after)
    assert first_json == second_json
    assert first_alerts == second_alerts


def test_long_partition_alert_sequence_is_reproducible():
    """A schedule long enough for the full DOWN walk replays its alert
    edges exactly, including timestamps."""
    _, first = run_schedule(2009, "neem-host", 8, 35)
    _, second = run_schedule(2009, "neem-host", 8, 35)
    assert first == second
    names = [slo for _, slo, state, _ in first if state == "firing"]
    assert "neem-host-node-health" in names
