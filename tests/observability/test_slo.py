"""SLO rules and the alert engine: thresholds, hysteresis, determinism."""

import pytest

from repro.observability import MetricsRegistry, Slo, SloEngine, TimeSeriesStore


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def store(registry):
    return TimeSeriesStore(registry, interval=1.0)


@pytest.fixture
def engine(store):
    return SloEngine(store)


def tick(registry, store, engine, now, failures=0):
    registry.counter("exertion.failures", host="a").inc(failures)
    store.collect(now)
    return engine.evaluate(now)


def test_slo_validates_fields():
    with pytest.raises(ValueError):
        Slo("bad", "m", 1.0, kind="p99")
    with pytest.raises(ValueError):
        Slo("bad", "m", 1.0, op="<")
    with pytest.raises(ValueError):
        Slo("bad", "m", 1.0, for_windows=0)
    with pytest.raises(ValueError):
        Slo("bad", "m", 1.0, burn_rate=0.0)
    with pytest.raises(ValueError):
        Slo("bad", "m", 1.0, kind="value", sum_prefix=True)


def test_threshold_scales_with_burn_rate():
    assert Slo("a", "m", 10.0, burn_rate=2.0).threshold == 20.0
    assert Slo("b", "m", 10.0, op=">=", burn_rate=2.0).threshold == 5.0


def test_missing_series_is_not_a_breach(store):
    slo = Slo("quiet", "never.observed", 0.0)
    assert slo.signal(store) == 0.0  # rate of absent counter
    value_slo = Slo("gauge", "never.observed", 0.0, kind="value")
    assert value_slo.signal(store) is None
    assert not value_slo.breached(value_slo.signal(store))


def test_engine_rejects_duplicate_names(engine):
    engine.add(Slo("dup", "m", 1.0))
    with pytest.raises(ValueError):
        engine.add(Slo("dup", "m", 2.0))


def test_alert_fires_after_for_windows_and_resolves_after_clear(
        registry, store, engine):
    engine.add(Slo("failures", "exertion.failures{host=a}", 1.0,
                   window=1, for_windows=2, clear_windows=2))
    assert tick(registry, store, engine, 1.0, failures=5) == []  # 1st breach
    alerts = tick(registry, store, engine, 2.0, failures=5)      # 2nd: fires
    assert [a.state for a in alerts] == ["firing"]
    assert alerts[0].t == 2.0 and alerts[0].signal == 5.0
    assert engine.firing() == ["failures"]
    assert tick(registry, store, engine, 3.0) == []              # 1st clear
    alerts = tick(registry, store, engine, 4.0)                  # 2nd: resolves
    assert [a.state for a in alerts] == ["resolved"]
    assert engine.firing() == []


def test_hysteresis_stops_flapping(registry, store, engine):
    engine.add(Slo("flappy", "exertion.failures{host=a}", 1.0,
                   window=1, for_windows=2, clear_windows=2))
    # Signal oscillates above/below threshold every window: the breach
    # streak never reaches 2, so no alert at all.
    for step in range(10):
        tick(registry, store, engine, float(step + 1),
             failures=5 if step % 2 == 0 else 0)
    assert engine.alerts == []


def test_gte_objective_alerts_on_shortfall(registry, store, engine):
    engine.add(Slo("throughput", "exertion.failures{host=a}", 3.0,
                   op=">=", window=1, for_windows=1, clear_windows=1))
    alerts = tick(registry, store, engine, 1.0, failures=1)  # 1.0 < 3.0
    assert [a.state for a in alerts] == ["firing"]
    alerts = tick(registry, store, engine, 2.0, failures=4)
    assert [a.state for a in alerts] == ["resolved"]


def test_listeners_hear_every_edge(registry, store, engine):
    heard = []
    engine.subscribe(heard.append)
    engine.add(Slo("failures", "exertion.failures{host=a}", 1.0,
                   window=1, for_windows=1, clear_windows=1))
    tick(registry, store, engine, 1.0, failures=5)
    tick(registry, store, engine, 2.0)
    assert [(a.slo, a.state) for a in heard] == [
        ("failures", "firing"), ("failures", "resolved")]


def test_snapshot_is_sorted_and_plain(registry, store, engine):
    engine.add(Slo("zeta", "exertion.failures{host=a}", 1.0, window=1,
                   for_windows=1))
    engine.add(Slo("alpha", "other", 2.0))
    tick(registry, store, engine, 1.0, failures=9)
    snap = engine.snapshot()
    assert [rule["name"] for rule in snap["slos"]] == ["alpha", "zeta"]
    zeta = snap["slos"][1]
    assert zeta["state"] == "firing" and zeta["signal"] == 9.0
    assert snap["alerts"][0]["state"] == "firing"


def test_sum_prefix_collapses_hosts(registry, store, engine):
    engine.add(Slo("total", "exertion.failures", 1.0, sum_prefix=True,
                   window=1, for_windows=1))
    registry.counter("exertion.failures", host="a").inc(1)
    registry.counter("exertion.failures", host="b").inc(1)
    store.collect(1.0)
    alerts = engine.evaluate(1.0)
    assert alerts and alerts[0].signal == 2.0
