"""Health-model recovery edges: a replacement provider reusing its name
on a different host, and the ordering of alert firing/clear edges."""

import numpy as np
import pytest

from repro.jini import JoinManager, LookupService, Name, ServiceItem
from repro.net import FixedLatency, Host, Network, rpc_endpoint
from repro.observability import DOWN, UP, Slo, health_monitor
from repro.observability.health import R_HOST_DOWN, default_slos
from repro.sim import Environment


class DummyService:
    REMOTE_TYPES = ("SensorDataAccessor",)

    def getValue(self):
        return 1.0


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return Network(env, rng=np.random.default_rng(7),
                   latency=FixedLatency(0.001))


def build_service(net, name="Svc", host_name="svc-host",
                  lease_duration=4.0, host=None):
    host = host if host is not None else Host(net, host_name)
    ref = rpc_endpoint(host).export(DummyService(), f"svc:{host.name}")
    item = ServiceItem(service_id=net.ids.uuid(), service=ref,
                       attributes=(Name(name),))
    jm = JoinManager(host, item, lease_duration=lease_duration,
                     maintenance_interval=1.0)
    jm.start()
    return host, item, jm


def transitions_of(monitor, entity):
    return [(t["t"], t["from"], t["to"])
            for t in monitor.model.transitions if t["entity"] == entity]


def test_replacement_on_different_host_recovers_same_entity(env, net):
    """Rio semantics: the provider is the *name*. When the original host
    dies and a replacement with the same name joins from another host, the
    model must close the incident on the one logical entity — DOWN -> UP —
    not invent a second entity or stay DOWN on the old host."""
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    host_a, _item, _jm = build_service(net, name="Rio-Svc",
                                       host_name="host-a")
    monitor = health_monitor(net)
    for slo in default_slos():
        monitor.engine.add(slo)

    def scenario():
        yield env.timeout(6.0)
        assert monitor.model.status_of("provider:Rio-Svc") == UP
        host_a.fail()
        # Renewals stop with the host; wait out lease expiry so the name
        # frees up (no name ambiguity: one live registration at a time).
        yield env.timeout(6.0)
        assert monitor.model.status_of("provider:Rio-Svc") == DOWN
        # Mid-SLO-window (federation-health is firing by now), the
        # provisioner brings a same-named replacement up elsewhere.
        build_service(net, name="Rio-Svc", host_name="host-b")
        yield env.timeout(8.0)

    env.run(until=env.process(scenario()))
    assert monitor.model.status_of("provider:Rio-Svc") == UP
    # One entity throughout: its transition log closes the incident.
    moves = transitions_of(monitor, "provider:Rio-Svc")
    assert [(f, t) for _t, f, t in moves] == [
        ("UNKNOWN", "UP"), ("UP", "DOWN"), ("DOWN", "UP")]
    # No name@host split entities appeared.
    assert not [e for e in monitor.model._status if e.startswith(
        "provider:Rio-Svc@")]
    # The tracked record followed the service to its new host.
    assert monitor.model._providers["Rio-Svc"].node == "host-b"
    down = [t for t in monitor.model.transitions
            if t["entity"] == "provider:Rio-Svc" and t["to"] == DOWN]
    assert down[0]["reasons"] == [R_HOST_DOWN]


def test_node_entity_recovers_with_replacement_host(env, net):
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    host_a, _item, _jm = build_service(net, name="Rio-Svc",
                                       host_name="host-a")
    monitor = health_monitor(net)

    def scenario():
        yield env.timeout(6.0)
        host_a.fail()
        yield env.timeout(6.0)
        build_service(net, name="Rio-Svc", host_name="host-b")
        yield env.timeout(8.0)

    env.run(until=env.process(scenario()))
    # The new node is tracked and UP; federation recovered.
    assert monitor.model.status_of("node:host-b") == UP
    assert monitor.model.status_of("federation") == UP


def test_alert_clear_ordering(env, net):
    """Alert edges must come out in (time, registration) order, resolve
    only after clear_windows healthy evaluations, and reach subscribers
    in exactly the emission order the alerts list records."""
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    host_a, _item, _jm = build_service(net, name="Rio-Svc",
                                       host_name="host-a")
    monitor = health_monitor(net)
    for slo in default_slos():
        monitor.engine.add(slo)
    monitor.engine.add(Slo(
        "svc-health", "health.status{entity=provider:Rio-Svc}", 1.0,
        kind="value", window=1, for_windows=1, clear_windows=2,
        description="Rio-Svc must not be DOWN"))
    seen = []
    monitor.engine.subscribe(lambda alert: seen.append(alert))

    def scenario():
        yield env.timeout(6.0)
        host_a.fail()
        yield env.timeout(8.0)
        build_service(net, name="Rio-Svc", host_name="host-b")
        yield env.timeout(10.0)

    env.run(until=env.process(scenario()))
    health_alerts = [a for a in monitor.engine.alerts
                     if a.slo == "svc-health"]
    assert [a.state for a in health_alerts] == ["firing", "resolved"]
    firing, resolved = health_alerts
    assert resolved.t > firing.t
    # clear_windows=2: the resolve lags recovery by at least one extra
    # evaluation window beyond the first healthy one.
    recovery_t = [t["t"] for t in monitor.model.transitions
                  if t["entity"] == "federation" and t["to"] == UP][-1]
    assert resolved.t >= recovery_t + monitor.interval
    # Subscribers saw exactly what the log recorded, in order.
    assert seen == monitor.engine.alerts
    # Nothing is left firing after recovery.
    assert monitor.engine.firing() == []
