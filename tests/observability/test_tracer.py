"""Unit tests for spans and the simulation-time tracer."""

import pytest

from repro.observability import (
    NULL_SPAN,
    TRACE_PARENT_PATH,
    Tracer,
    propagate_trace,
    render_span_tree,
    tracer_of,
)
from repro.sim import Environment
from repro.sorcer import ServiceContext


@pytest.fixture
def tracer():
    return Tracer(Environment())


def test_span_ids_and_trace_ids_are_counters(tracer):
    a = tracer.start_span("a")
    b = tracer.start_span("b", parent_id=a.span_id)
    c = tracer.start_span("c")
    assert (a.span_id, b.span_id, c.span_id) == (1, 2, 3)
    assert a.trace_id == b.trace_id == 1  # b joins a's trace
    assert c.trace_id == 3  # a root's trace id is its own span id


def test_parent_child_links(tracer):
    root = tracer.start_span("root")
    child = tracer.start_span("child", parent_id=root.span_id)
    assert child.parent_id == root.span_id
    assert tracer.roots() == [root]
    assert tracer.children(root) == [child]
    assert tracer.children(child) == []


def test_dangling_parent_becomes_root(tracer):
    span = tracer.start_span("lost", parent_id=999)
    assert span.parent_id is None
    assert tracer.roots() == [span]


def test_span_timing_and_status(tracer):
    env = tracer.env
    span = tracer.start_span("work")
    assert span.status == "open" and span.duration is None
    env.run(until=2.5)
    span.end("failed")
    assert span.ended_at == 2.5 and span.duration == 2.5
    assert span.status == "failed"
    # end() is idempotent: the first close wins.
    env.run(until=3.0)
    span.end("ok")
    assert span.ended_at == 2.5 and span.status == "failed"


def test_annotations_are_clock_stamped_tuples(tracer):
    span = tracer.start_span("work")
    tracer.env.run(until=1.0)
    span.annotate("retry_scheduled", attempt=0, delay=0.25)
    assert span.annotations == [
        (1.0, "retry_scheduled", (("attempt", 0), ("delay", 0.25)))]


def test_disabled_tracer_hands_out_null_span(tracer):
    tracer.enabled = False
    span = tracer.start_span("ignored")
    assert span is NULL_SPAN
    assert span.span_id is None
    # The whole surface no-ops.
    span.annotate("x", a=1).set_attribute("k", "v").end("failed")
    assert len(tracer) == 0


def test_find_and_open_spans(tracer):
    a = tracer.start_span("a", kind="exert")
    b = tracer.start_span("b", kind="rpc")
    b.end()
    assert tracer.find(kind="exert") == [a]
    assert tracer.find(name="b") == [b]
    assert tracer.open_spans() == [a]


def test_reset_restarts_id_counters(tracer):
    tracer.start_span("a")
    tracer.reset()
    assert len(tracer) == 0
    assert tracer.start_span("b").span_id == 1


def test_tracer_of_is_a_per_network_singleton():
    class FakeNetwork:
        env = Environment()

    net = FakeNetwork()
    assert tracer_of(net) is tracer_of(net)


def test_propagate_trace_copies_parent_link():
    src, dst = ServiceContext("src"), ServiceContext("dst")
    propagate_trace(src, dst)  # no link: no-op
    assert dst.get_value(TRACE_PARENT_PATH, None) is None
    src.put_value(TRACE_PARENT_PATH, 7)
    propagate_trace(src, dst)
    assert dst.get_value(TRACE_PARENT_PATH) == 7


def test_render_span_tree_indents_children(tracer):
    root = tracer.start_span("exert:q", kind="exert", host="h1")
    tracer.start_span("rpc:service", kind="rpc", parent_id=root.span_id).end()
    root.annotate("retry_scheduled", attempt=0)
    root.end()
    text = render_span_tree(tracer)
    lines = text.splitlines()
    assert lines[0].startswith("exert:q [exert] @h1")
    assert any(line.startswith("  * ") and "retry_scheduled" in line
               for line in lines)
    assert any(line.startswith("  rpc:service [rpc]") for line in lines)
    # Annotations can be switched off for terse output.
    assert "retry_scheduled" not in render_span_tree(tracer,
                                                     annotations=False)


def test_to_dict_round_trips_all_fields(tracer):
    span = tracer.start_span("exert:q", kind="exert", host="h1", peer="h2")
    span.annotate("note", detail=1)
    span.end()
    data = span.to_dict()
    assert data["span_id"] == 1 and data["trace_id"] == 1
    assert data["attributes"] == {"peer": "h2"}
    assert data["annotations"] == [
        {"time": 0.0, "name": "note", "fields": {"detail": 1}}]
