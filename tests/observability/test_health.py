"""Health model: lease-renewal liveness drives UP/DEGRADED/DOWN."""

import json

import numpy as np
import pytest

from repro.jini import JoinManager, LookupService, Name, ServiceItem
from repro.net import FixedLatency, Host, Network, rpc_endpoint
from repro.observability import DEGRADED, DOWN, UP, health_monitor
from repro.observability.health import (
    R_HOST_DOWN,
    R_LEASE_AT_RISK,
    R_LEASE_EXPIRED,
    R_BREAKER_OPEN,
)
from repro.resilience import BreakerRegistry
from repro.sim import Environment


class DummyService:
    REMOTE_TYPES = ("SensorDataAccessor",)

    def getValue(self):
        return 1.0


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return Network(env, rng=np.random.default_rng(7),
                   latency=FixedLatency(0.001))


def build_service(net, name="Svc", host_name="svc-host",
                  lease_duration=4.0):
    host = Host(net, host_name)
    ref = rpc_endpoint(host).export(DummyService(), f"svc:{host_name}")
    item = ServiceItem(service_id=net.ids.uuid(), service=ref,
                       attributes=(Name(name),))
    jm = JoinManager(host, item, lease_duration=lease_duration,
                     maintenance_interval=1.0)
    jm.start()
    return host, item, jm


def test_healthy_federation_is_up(env, net):
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    build_service(net)
    monitor = health_monitor(net)
    env.run(until=6.0)
    snap = monitor.snapshot()
    assert snap["federation"]["status"] == UP
    assert snap["providers"]["Svc"]["status"] == UP
    assert snap["nodes"]["svc-host"]["status"] == UP
    assert snap["nodes"]["svc-host"]["providers"] == ["Svc"]
    # LUS node shows up too (no providers of its own).
    assert snap["nodes"]["lus-host"]["status"] == UP


def test_partition_walks_up_degraded_down_and_back(env, net):
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    build_service(net, lease_duration=4.0)
    monitor = health_monitor(net)
    env.run(until=5.0)
    assert monitor.model.status_of("provider:Svc") == UP

    net.partition(["svc-host"], ["lus-host"])
    env.run(until=7.0)  # renewals fail; lease is at risk but not yet expired
    assert monitor.model.status_of("provider:Svc") == DEGRADED
    env.run(until=12.0)  # lease lapsed, LUS reaped the registration
    assert monitor.model.status_of("provider:Svc") == DOWN
    assert monitor.model.status_of("node:svc-host") == DOWN

    net.heal_partition(["svc-host"], ["lus-host"])
    env.run(until=20.0)  # rediscovery + re-registration
    assert monitor.model.status_of("provider:Svc") == UP
    assert monitor.model.status_of("node:svc-host") == UP

    # The walk happened in order, with reasons on each edge.
    walk = [(t["from"], t["to"]) for t in monitor.model.transitions
            if t["entity"] == "provider:Svc"]
    assert walk == [("UNKNOWN", UP), (UP, DEGRADED), (DEGRADED, DOWN),
                    (DOWN, UP)]
    degraded = next(t for t in monitor.model.transitions
                    if t["entity"] == "provider:Svc" and t["to"] == DEGRADED)
    assert R_LEASE_AT_RISK in degraded["reasons"]
    down = next(t for t in monitor.model.transitions
                if t["entity"] == "provider:Svc" and t["to"] == DOWN)
    assert down["reasons"] == [R_LEASE_EXPIRED]


def test_graceful_departure_is_forgotten_not_down(env, net):
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    _host, _item, jm = build_service(net)
    monitor = health_monitor(net)
    env.run(until=5.0)
    assert monitor.model.status_of("provider:Svc") == UP
    env.run(until=env.process(jm.terminate()))
    env.run(until=8.0)
    snap = monitor.snapshot()
    assert "Svc" not in snap["providers"]
    assert all(not (t["entity"] == "provider:Svc" and t["to"] == DOWN)
               for t in monitor.model.transitions)


def test_host_death_is_down_immediately(env, net):
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    host, _item, _jm = build_service(net)
    monitor = health_monitor(net)
    env.run(until=5.0)
    host.fail()
    env.run(until=6.5)  # one tick later, well before the lease lapses
    assert monitor.model.status_of("provider:Svc") == DOWN
    snap = monitor.snapshot()
    assert snap["providers"]["Svc"]["reasons"] == [R_HOST_DOWN]
    assert snap["nodes"]["svc-host"]["reasons"] == [R_HOST_DOWN]


def test_open_breaker_degrades_provider(env, net):
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    _host, item, _jm = build_service(net)
    monitor = health_monitor(net)
    caller = Host(net, "caller")
    breakers = BreakerRegistry(failure_threshold=1)
    caller._breaker_registry = breakers
    env.run(until=5.0)
    breakers.record_failure(item.service_id, env.now)  # opens immediately
    env.run(until=6.5)
    snap = monitor.snapshot()
    assert snap["providers"]["Svc"]["status"] == DEGRADED
    assert R_BREAKER_OPEN in snap["providers"]["Svc"]["reasons"]


def test_status_gauges_feed_the_time_series(env, net):
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    build_service(net)
    monitor = health_monitor(net)
    env.run(until=6.0)
    assert monitor.store.value("health.status{entity=federation}") == 0.0
    assert monitor.store.value("health.status{entity=provider:Svc}") == 0.0


def test_snapshot_is_json_serializable(env, net):
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    build_service(net)
    monitor = health_monitor(net)
    env.run(until=6.0)
    dumped = json.dumps(monitor.snapshot(), sort_keys=True)
    assert '"federation"' in dumped and '"slos"' in dumped


def test_disabled_monitor_does_not_collect(env, net):
    LookupService(Host(net, "lus-host"), announce_interval=2.0).start()
    build_service(net)
    monitor = health_monitor(net)
    monitor.enabled = False
    env.run(until=6.0)
    assert monitor.store.collections == 0
    assert monitor.model.transitions == []


def test_health_monitor_is_per_network_singleton(env, net):
    assert health_monitor(net) is health_monitor(net)
