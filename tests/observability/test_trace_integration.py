"""End-to-end tracing: whole federated requests fold into one span tree.

Exercises the wiring across the stack — facade, jobber, exerter, RPC,
CSP → child ESP — through the trace-based assertion helpers.
"""

import numpy as np
import pytest

from repro.core import (
    CompositeSensorProvider,
    ElementarySensorProvider,
    OP_GET_VALUE,
    SENSOR_DATA_ACCESSOR,
)
from repro.jini import LookupService
from repro.net import FixedLatency, Host, Network
from repro.observability import metrics_registry, tracer_of
from repro.scenarios import build_paper_lab
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sim import Environment
from repro.sorcer import (
    Exerter,
    Job,
    Jobber,
    ServiceContext,
    ServiceProvider,
    Signature,
    Task,
)
from tests.helpers.tracing import (
    assert_no_orphan_spans,
    assert_span_tree,
    spans_between,
    tree_shape,
)


def build_sensor_grid():
    """LUS + 2 ESPs + 1 CSP, all traced."""
    env = Environment()
    net = Network(env, rng=np.random.default_rng(11),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=11)
    LookupService(Host(net, "lus-host")).start()
    esps = []
    for index in range(2):
        name = f"S{index + 1}"
        probe = TemperatureProbe(env, name.lower(), world,
                                 (10.0 * index, 0.0),
                                 rng=np.random.default_rng(index),
                                 sensing_noise=0.0)
        esp = ElementarySensorProvider(Host(net, f"{name}-host"), name, probe,
                                       sample_interval=1.0)
        esp.start()
        esps.append(esp)
    csp = CompositeSensorProvider(Host(net, "csp-host"), "Composite")
    csp.start()
    for esp in esps:
        csp.add_child(esp.service_id, esp.name)
    env.run(until=3.0)
    return env, net, csp, esps


def exert_get_value(env, net, csp):
    exerter = Exerter(Host(net, "client-host"))
    task = Task("query", Signature(SENSOR_DATA_ACCESSOR, OP_GET_VALUE,
                                   service_id=csp.service_id),
                ServiceContext())
    return env.run(until=env.process(exerter.exert(task)))


def test_csp_query_produces_one_linked_tree():
    env, net, csp, esps = build_sensor_grid()
    tracer = tracer_of(net)
    tracer.reset()
    result = exert_get_value(env, net, csp)
    assert result.is_done, result.exceptions
    root = assert_span_tree(tracer, (
        "exert:query", [
            ("rpc:service", []),
            ("serve:query", [
                ("exert:collect-S1", [
                    ("rpc:service", []),
                    ("serve:collect-S1", ...),
                ]),
                ("exert:collect-S2", [
                    ("rpc:service", []),
                    ("serve:collect-S2", ...),
                ]),
            ]),
        ]))
    assert root.kind == "exert" and root.host == "client-host"
    # Every span in the tree shares the root's trace id and closed ok.
    tree = [s for s in tracer.spans if s.trace_id == root.trace_id]
    assert len(tree) >= 9
    assert all(s.status == "ok" for s in tree)
    assert_no_orphan_spans(tracer)


def test_serve_span_runs_on_the_provider_host():
    env, net, csp, esps = build_sensor_grid()
    tracer = tracer_of(net)
    tracer.reset()
    exert_get_value(env, net, csp)
    [serve] = tracer.find(name="serve:query")
    assert serve.host == "csp-host"
    assert serve.attributes["provider"] == "Composite"
    [child_serve] = tracer.find(name="serve:collect-S1")
    assert child_serve.host == "S1-host"


def test_spans_between_windows_by_start_time():
    env, net, csp, esps = build_sensor_grid()
    tracer = tracer_of(net)
    tracer.reset()
    started = env.now
    exert_get_value(env, net, csp)
    window = spans_between(tracer, started, env.now, kind="exert")
    assert {s.name for s in window} == {
        "exert:query", "exert:collect-S1", "exert:collect-S2"}
    assert spans_between(tracer, env.now + 1, env.now + 2) == []


def test_metrics_populated_by_the_run():
    env, net, csp, esps = build_sensor_grid()
    registry = metrics_registry(net)
    result = exert_get_value(env, net, csp)
    assert result.is_done
    assert registry.value("rpc.calls", host="client-host") >= 1
    assert registry.value("provider.served", provider="Composite") == 1
    assert registry.value("provider.served", provider="S1") == 1
    assert registry.value("esp.samples", provider="S1") >= 1
    lat = registry.histogram("exertion.latency", host="client-host")
    assert lat.count == 1 and lat.mean > 0
    inflight = registry.gauge("provider.inflight", provider="Composite")
    assert inflight.value == 0 and inflight.max_value >= 1


def test_retry_annotations_land_on_the_exert_span():
    env, net, csp, esps = build_sensor_grid()
    tracer = tracer_of(net)
    tracer.reset()
    net.partition(["client-host"], ["csp-host"])

    exerter = Exerter(Host(net, "client-host"))
    task = Task("cut-query", Signature(SENSOR_DATA_ACCESSOR, OP_GET_VALUE,
                                       service_id=csp.service_id),
                ServiceContext())
    task.control.retries = 2
    task.control.invocation_timeout = 0.5
    result = env.run(until=env.process(exerter.exert(task)))
    assert result.is_failed
    [root] = tracer.find(name="exert:cut-query")
    assert root.status == "failed"
    retries = [a for a in root.annotations if a[1] == "retry_scheduled"]
    assert len(retries) == 2
    # The timed-out RPC attempts hang under the same exert span.
    rpc_children = [s for s in tracer.children(root) if s.kind == "rpc"]
    assert len(rpc_children) == 3
    assert all(s.status == "timeout" for s in rpc_children)
    assert metrics_registry(net).value("rpc.timeouts",
                                       host="client-host") >= 3


def test_jobber_components_nest_under_its_serve_span():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(5),
                  latency=FixedLatency(0.001))
    LookupService(Host(net, "lus-host")).start()
    Jobber(Host(net, "jobber-host")).start()
    worker = ServiceProvider(Host(net, "worker-host"), "Worker",
                             service_types=("Doubler",))
    worker.add_operation("double", lambda ctx: ctx.get_value("arg/x") * 2)
    worker.start()
    env.run(until=3.0)
    tracer = tracer_of(net)
    tracer.reset()

    def component(name, x):
        ctx = ServiceContext()
        ctx.put_in_value("arg/x", x)
        return Task(name, Signature("Doubler", "double"), ctx)

    job = Job("batch", [component("one", 1), component("two", 2)])
    exerter = Exerter(Host(net, "client-host"))
    result = env.run(until=env.process(exerter.exert(job)))
    assert result.is_done, result.exceptions
    assert_span_tree(tracer, (
        "exert:batch", [
            ("serve:batch", [
                ("exert:one", [("serve:one", ...)]),
                ("exert:two", [("serve:two", ...)]),
            ]),
        ]))
    assert_no_orphan_spans(tracer)


def test_facade_request_traces_down_to_the_esp():
    lab = build_paper_lab(seed=321)
    lab.settle(6.0)
    tracer = tracer_of(lab.net)

    def build():
        yield from lab.browser.compose_service(
            "Composite-Service", ["Neem-Sensor", "Jade-Sensor"])
        return (yield from lab.browser.get_value("Composite-Service"))

    tracer.reset()
    value = lab.env.run(until=lab.env.process(build()))
    assert isinstance(value, float)
    # Browser -> facade -> CSP -> child ESP: one tree, four layers deep.
    assert_span_tree(tracer, (
        "exert:browser-getValue", [
            ("serve:browser-getValue", [
                ("exert:facade-getValue", [
                    ("serve:facade-getValue", [
                        ("exert:collect-Neem-Sensor", [
                            ("serve:collect-Neem-Sensor", ...)]),
                        ("exert:collect-Jade-Sensor", [
                            ("serve:collect-Jade-Sensor", ...)]),
                    ]),
                ]),
            ]),
        ]))
    assert_no_orphan_spans(tracer)


def test_mismatched_tree_fails_with_a_useful_message():
    env, net, csp, esps = build_sensor_grid()
    tracer = tracer_of(net)
    tracer.reset()
    exert_get_value(env, net, csp)
    with pytest.raises(AssertionError, match="no recorded trace matches"):
        assert_span_tree(tracer, ("exert:nonexistent", []))
    root = tracer.find(name="exert:query")[0]
    with pytest.raises(AssertionError, match="no child matching"):
        assert_span_tree(tracer, ("exert:query", [("serve:other", [])]),
                         root=root)


def test_tree_shape_is_hashable_and_stable():
    env, net, csp, esps = build_sensor_grid()
    tracer = tracer_of(net)
    tracer.reset()
    exert_get_value(env, net, csp)
    root = tracer.find(name="exert:query")[0]
    shape = tree_shape(tracer, root)
    assert shape[0] == "exert:query" and shape[1] == "ok"
    hash(shape)  # nested tuples: usable as a determinism fingerprint
