"""HistoryStore tests — sqlite spill round-trips, watermarks, schema.

The load-bearing property is *spill equivalence*: spilling a run's
windows periodically (with the in-memory ring evicting old windows
between spills) must produce byte-for-byte the same database as one
spill at the end. Hypothesis drives it with arbitrary window series and
arbitrary spill schedules; the stub ring below stands in for
:class:`TimeSeriesStore` so the generated series is exactly what the
spiller sees.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import HistoryStore
from repro.observability.store import SCHEMA_VERSION
from repro.observability.timeseries import Window


class StubRing:
    """The minimal TimeSeriesStore surface spill_windows() reads."""

    def __init__(self, series: dict):
        self._series = series

    def names(self, prefix: str = ""):
        return sorted(k for k in self._series if k.startswith(prefix))

    def series(self, key: str):
        return self._series[key]


def window(t, kind="counter", **fields):
    return Window(float(t), kind, **fields)


# -- strategies ----------------------------------------------------------------

_value = st.floats(min_value=0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


@st.composite
def window_series(draw):
    """A plausible per-key series: strictly increasing window ends, one
    kind throughout, sparse per-kind fields."""
    kind = draw(st.sampled_from(["counter", "gauge", "histogram"]))
    ts = sorted(draw(st.sets(st.integers(min_value=1, max_value=200),
                             min_size=1, max_size=12)))
    out = []
    for t in ts:
        if kind == "counter":
            delta = draw(_value)
            out.append(window(t, kind, delta=delta, rate=delta))
        elif kind == "gauge":
            out.append(window(t, kind, value=draw(_value),
                              max=draw(_value)))
        else:
            p50 = draw(_value)
            out.append(window(t, kind, count=draw(st.integers(0, 50)),
                              p50=p50, p95=p50 + draw(_value)))
    return out


_rings = st.dictionaries(
    st.text(alphabet="abc.{}=", min_size=1, max_size=8),
    window_series(), min_size=1, max_size=4)


# -- spill round-trip properties -----------------------------------------------


@settings(max_examples=60)
@given(series=_rings)
def test_spilled_windows_round_trip_exactly(series):
    with HistoryStore(":memory:") as store:
        store.begin_run("r", "test", 1, "calendar")
        store.spill_windows("r", StubRing(series))
        assert store.keys("r") == sorted(series)
        for key, windows in series.items():
            assert store.series("r", key) == \
                [w.to_dict() for w in windows]
            rehydrated = store.windows("r", key)
            assert [w.to_dict() for w in rehydrated] == \
                [w.to_dict() for w in windows]


@settings(max_examples=60)
@given(series=_rings, data=st.data())
def test_periodic_spill_equals_one_shot_spill(series, data):
    """Watermarking: spilling growing (and retention-evicted) views of
    the ring repeatedly writes each window exactly once."""
    with HistoryStore(":memory:") as periodic, \
            HistoryStore(":memory:") as oneshot:
        for store in (periodic, oneshot):
            store.begin_run("r", "test", 1, "calendar")
        cuts = data.draw(st.lists(st.integers(0, 12), min_size=1,
                                  max_size=4))
        retention = data.draw(st.integers(min_value=3, max_value=12))
        for cut in sorted(cuts) + [None]:
            view = {k: ws[:cut][-retention:] if cut is not None
                    else ws[-retention:]
                    for k, ws in series.items()}
            view = {k: ws for k, ws in view.items() if ws}
            if view:
                periodic.spill_windows("r", StubRing(view))
        # One-shot sees only the final ring contents; the periodic store
        # must agree wherever the one-shot store has data, and may have
        # strictly more history (windows the ring evicted).
        oneshot.spill_windows(
            "r", StubRing({k: ws[-retention:] for k, ws in series.items()}))
        for key in oneshot.keys("r"):
            tail = oneshot.series("r", key)
            since = tail[0]["t"]
            assert periodic.series("r", key, since=since) == tail


@settings(max_examples=40)
@given(series=_rings, since=st.integers(0, 200), until=st.integers(0, 200),
       limit=st.integers(1, 10))
def test_series_filters_are_consistent(series, since, until, limit):
    with HistoryStore(":memory:") as store:
        store.begin_run("r", "test", 1, "calendar")
        store.spill_windows("r", StubRing(series))
        for key, windows in series.items():
            expected = [w.to_dict() for w in windows
                        if since <= w.t <= until]
            assert store.series("r", key, since=since,
                                until=until) == expected
            clipped = store.series("r", key, limit=limit)
            assert clipped == [w.to_dict() for w in windows][-limit:]


# -- run registry --------------------------------------------------------------


def test_begin_run_rejects_duplicates_unless_replaced():
    with HistoryStore(":memory:") as store:
        store.begin_run("r", "soak", 7, "calendar")
        with pytest.raises(ValueError):
            store.begin_run("r", "soak", 7, "calendar")
        store.spill_windows("r", StubRing(
            {"k": [window(1, delta=2.0)]}))
        store.begin_run("r", "soak", 8, "heap", replace=True)
        assert store.run("r")["seed"] == 8
        assert store.keys("r") == []  # old windows went with the old run


def test_finish_run_merges_meta_and_seals():
    with HistoryStore(":memory:") as store:
        store.begin_run("r", "soak", 7, "calendar", meta={"a": 1})
        store.finish_run("r", sim_end=21600.0, events=1_000_000,
                         meta={"b": 2})
        entry = store.run("r")
        assert entry["finished"] and entry["events"] == 1_000_000
        assert entry["sim_end"] == 21600.0
        assert entry["meta"] == {"a": 1, "b": 2}


def test_delete_run_drops_all_tables_and_watermarks():
    with HistoryStore(":memory:") as store:
        store.begin_run("r", "t", 1, "calendar")
        store.spill_windows("r", StubRing({"k": [window(5, delta=1.0)]}))
        store.spill_profile("r", {
            "attribution": [{"event_type": "Timeout", "target": "p",
                             "count": 3, "wall_s": 0.1, "share": 0.5}],
            "throughput": [{"wall_s": 0.1, "sim_t": 5.0, "events": 3}]})
        store.delete_run("r")
        assert store.runs() == []
        assert store.profile("r") == [] and store.throughput("r") == []
        # A fresh same-name run starts from a clean watermark.
        store.begin_run("r", "t", 1, "calendar")
        store.spill_windows("r", StubRing({"k": [window(5, delta=9.0)]}))
        assert store.series("r", "k") == [
            {"t": 5.0, "kind": "counter", "delta": 9.0}]


# -- profile + throughput spill ------------------------------------------------


def test_spill_profile_converges_instead_of_duplicating():
    report_early = {
        "attribution": [{"event_type": "Timeout", "target": "process:a",
                         "count": 10, "wall_s": 0.1, "share": 0.4}],
        "throughput": [{"wall_s": 0.1, "sim_t": 10.0, "events": 4096}]}
    report_final = {
        "attribution": [
            {"event_type": "Timeout", "target": "process:a",
             "count": 25, "wall_s": 0.3, "share": 0.5},
            {"event_type": "Initialize", "target": "process:b",
             "count": 5, "wall_s": 0.1, "share": 0.2}],
        "throughput": [{"wall_s": 0.1, "sim_t": 10.0, "events": 4096},
                       {"wall_s": 0.2, "sim_t": 20.0, "events": 8192}]}
    with HistoryStore(":memory:") as store:
        store.begin_run("r", "t", 1, "calendar")
        store.spill_profile("r", report_early)
        store.spill_profile("r", report_final)
        profile = store.profile("r")
        assert [(p["event_type"], p["count"]) for p in profile] == \
            [("Timeout", 25), ("Initialize", 5)]  # hottest first, no dupes
        assert [t["events"] for t in store.throughput("r")] == [4096, 8192]


# -- stats ---------------------------------------------------------------------


def test_stats_aggregates_a_horizon():
    series = {"lat": [window(1, "histogram", count=4, p50=0.01, p95=0.05),
                      window(2, "histogram", count=2, p50=0.02, p95=0.03),
                      window(9, "histogram", count=1, p50=0.01, p95=0.09)]}
    with HistoryStore(":memory:") as store:
        store.begin_run("r", "t", 1, "calendar")
        store.spill_windows("r", StubRing(series))
        full = store.stats("r", "lat")
        assert full["windows"] == 3
        assert full["count"] == 7
        assert full["p95"] == 0.09       # worst window in horizon
        early = store.stats("r", "lat", until=2)
        assert early["windows"] == 2 and early["p95"] == 0.05
        assert store.stats("r", "missing") == {"windows": 0}


# -- durability ----------------------------------------------------------------


def test_reopened_store_keeps_spilling_incrementally(tmp_path):
    path = str(tmp_path / "h.sqlite")
    with HistoryStore(path) as store:
        store.begin_run("r", "t", 1, "calendar")
        store.spill_windows("r", StubRing({"k": [window(1, delta=1.0)]}))
    with HistoryStore(path) as store:  # fresh process: cold watermarks
        wrote = store.spill_windows("r", StubRing(
            {"k": [window(1, delta=1.0), window(2, delta=3.0)]}))
        assert wrote == 1  # only the new window; t=1 was already spilled
        assert [w["t"] for w in store.series("r", "k")] == [1.0, 2.0]


def test_schema_version_mismatch_refuses_to_open(tmp_path):
    path = str(tmp_path / "h.sqlite")
    HistoryStore(path).close()
    conn = sqlite3.connect(path)
    conn.execute(f"PRAGMA user_version={SCHEMA_VERSION + 1}")
    conn.commit()
    conn.close()
    with pytest.raises(ValueError, match="schema"):
        HistoryStore(path)
