"""Unit tests for the metrics registry."""

import pytest

from repro.metrics import Recorder, render_metrics
from repro.observability import Histogram, MetricsRegistry, metrics_registry


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_semantics(registry):
    c = registry.counter("rpc.calls", host="h1")
    c.inc()
    c.inc(2.0)
    assert c.value == 3.0
    with pytest.raises(ValueError):
        c.inc(-1.0)
    # Same name + labels: the same instrument.
    assert registry.counter("rpc.calls", host="h1") is c
    assert registry.counter("rpc.calls", host="h2") is not c


def test_gauge_tracks_high_water_mark(registry):
    g = registry.gauge("queue.depth")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2.0
    assert g.max_value == 4.0
    assert g.snapshot() == {"value": 2.0, "max": 4.0}


def test_histogram_buckets_and_quantiles(registry):
    h = registry.histogram("latency", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.05, 0.5, 5.0):
        h.observe(v)
    assert h.count == 5
    assert h.counts == [1, 2, 1, 1]  # last slot is +inf
    assert h.mean == pytest.approx(1.121)
    assert h.quantile(0.5) == 0.1
    assert h.quantile(1.0) == float("inf")
    empty = registry.histogram("empty")
    assert empty.mean is None and empty.quantile(0.5) is None


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(1.0, 0.5))
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())


def test_type_conflicts_are_errors(registry):
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_value_reads_without_creating(registry):
    assert registry.value("never.seen") == 0.0
    assert len(registry) == 0  # the read did not register anything
    registry.counter("c").inc(4)
    assert registry.value("c") == 4.0
    h = registry.histogram("h")
    h.observe(0.1)
    assert registry.value("h") == 1.0  # histograms read as their count


def test_snapshot_is_sorted_and_complete(registry):
    registry.counter("b.count").inc()
    registry.gauge("a.depth").set(2)
    registry.histogram("c.lat", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert list(snap) == ["a.depth", "b.count", "c.lat"]
    assert snap["b.count"] == {"type": "counter", "data": 1.0}
    assert snap["c.lat"]["data"]["counts"] == [1, 0]
    assert registry.names(prefix="a") == ["a.depth"]
    assert list(registry.snapshot(prefix="c")) == ["c.lat"]


def test_to_recorder_folds_into_existing_tooling(registry):
    registry.counter("rpc.calls").inc(7)
    registry.gauge("depth").set(3)
    registry.histogram("lat").observe(0.2)
    recorder = registry.to_recorder(Recorder())
    assert recorder.counter("rpc.calls") == 7.0
    assert recorder.counter("depth") == 3.0
    assert recorder.counter("lat") == 1.0


def test_render_metrics_table(registry):
    registry.counter("rpc.calls", host="h1").inc(3)
    registry.gauge("depth").set(2)
    registry.histogram("lat").observe(0.004)
    text = render_metrics(registry.snapshot(), title="After run")
    assert "After run" in text
    assert "rpc.calls{host=h1}" in text
    assert "3" in text and "depth" in text and "lat" in text


def test_metrics_registry_is_a_per_network_singleton():
    class FakeNetwork:
        pass

    net = FakeNetwork()
    assert metrics_registry(net) is metrics_registry(net)
