"""Flight-recorder tests — aggregation fidelity and the side-channel
contract (DESIGN §12).

Wall-clock *values* are machine noise, so every aggregation test injects
a fake clock that advances a fixed step per read: the recorder's sums,
counts and shares become exact arithmetic. The determinism tests then
pin the contract that matters in production — a run's simulation-side
output is byte-identical with no recorder, a sampled recorder and a
detail recorder, under tie-break shuffling too.
"""

import pytest

from repro.observability import (FlightRecorder, MetricsRegistry,
                                 profile_run, service_times, status_json)
from repro.scenarios import build_paper_lab
from repro.sim import Environment


class FakeClock:
    """Advances ``step`` seconds per read — wall time as arithmetic."""

    def __init__(self, step: float = 0.001):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def ticker_env(rounds: int = 50, procs: int = 2) -> Environment:
    """An Environment with ``procs`` named tickers of ``rounds`` timeouts."""
    env = Environment()

    def tick():
        for _ in range(rounds):
            yield env.timeout(1.0)

    for i in range(procs):
        env.process(tick(), name=f"tick-{i}")
    return env


def events_of(env: Environment) -> int:
    """Exact events processed so far: every event is one scheduler pop."""
    return env.scheduler_stats()["pops"]


# -- lifecycle -----------------------------------------------------------------


def test_hooks_raise_until_attached():
    recorder = FlightRecorder()
    with pytest.raises(RuntimeError):
        recorder.enter(None)


def test_one_profiler_per_environment():
    env = ticker_env()
    first = FlightRecorder().attach(env)
    with pytest.raises(ValueError):
        FlightRecorder().attach(env)
    first.detach()
    assert env._profiler is None  # kernel back on the fast path


def test_one_environment_per_recorder():
    recorder = FlightRecorder().attach(ticker_env())
    with pytest.raises(ValueError):
        recorder.attach(ticker_env())


def test_profile_run_detaches_on_exit():
    env = ticker_env()
    with profile_run(env) as recorder:
        env.run(until=10.0)
        assert recorder.attached
    assert not recorder.attached
    assert env._profiler is None
    assert recorder.events == events_of(env)


# -- sampled mode --------------------------------------------------------------


@pytest.mark.parametrize("period", [1, 3, 7, 32, 1000])
def test_sampled_event_count_is_exact_for_any_period(period):
    env = ticker_env()
    recorder = FlightRecorder(clock=FakeClock(), period=period).attach(env)
    env.run()
    recorder.detach()
    # The kernel countdown makes the count exact even mid-period (and for
    # a period longer than the whole run).
    assert recorder.events == events_of(env)


def test_sampled_period_one_is_exact_per_event_timing():
    clock = FakeClock(step=0.5)
    env = ticker_env(rounds=20, procs=1)
    recorder = FlightRecorder(clock=clock, period=1).attach(env)
    env.run()
    recorder.detach()
    report = recorder.report()
    events = events_of(env)
    # Every event took one stamp; each stamp advanced the fake clock one
    # step and charged exactly that step to a row.
    assert report["mode"] == "sampled"
    assert report["events"] == events
    assert sum(row["count"] for row in report["attribution"]) == events
    total = sum(row["wall_s"] for row in report["attribution"])
    assert total == pytest.approx(events * clock.step)
    targets = {row["target"] for row in report["attribution"]}
    assert "process:tick-0" in targets


def test_sampled_attribution_covers_the_run():
    env = ticker_env(rounds=200, procs=3)
    recorder = FlightRecorder(clock=FakeClock(), period=4).attach(env)
    env.run()
    recorder.detach()
    report = recorder.report()
    assert report["sample_period"] == 4
    # Every sample charges the full stretch since the previous stamp, so
    # attribution covers the run except the attach/detach framing and at
    # most period-1 trailing events.
    assert report["attributed_share"] >= 0.90
    # Sample counts scale into event estimates: off by at most one
    # period's worth per row boundary, exact in total.
    estimated = sum(row["count"] for row in report["attribution"])
    assert estimated == pytest.approx(report["events"], abs=4)


def test_throughput_samples_ride_along():
    env = ticker_env(rounds=300, procs=2)
    recorder = FlightRecorder(clock=FakeClock(), period=2,
                              sample_every=64).attach(env)
    env.run()
    recorder.detach()
    samples = recorder.report()["throughput"]
    assert len(samples) >= 2
    events = [s["events"] for s in samples]
    assert events == sorted(events)           # monotone
    assert all(n % 64 == 0 for n in events)   # on the configured grid
    assert all(s["sim_t"] <= env.now for s in samples)


def test_period_validation():
    with pytest.raises(ValueError):
        FlightRecorder(period=0)
    with pytest.raises(ValueError):
        FlightRecorder(sample_every=0)


# -- detail mode ---------------------------------------------------------------


def test_detail_mode_counts_are_exact_with_kernel_row():
    clock = FakeClock(step=0.25)
    env = ticker_env(rounds=40, procs=2)
    recorder = FlightRecorder(clock=clock, detail=True).attach(env)
    env.run()
    recorder.detach()
    report = recorder.report()
    events = events_of(env)
    assert report["mode"] == "detail"
    assert report["events"] == events
    rows = {(r["event_type"], r["target"]): r for r in report["attribution"]}
    kernel = rows.pop(("kernel", "scheduler+dispatch"))
    assert kernel["count"] == events
    # Exact per-row counts: the non-kernel rows partition the events.
    assert sum(r["count"] for r in rows.values()) == events
    assert report["kernel_share"] + report["callback_share"] == \
        pytest.approx(report["attributed_share"], abs=0.001)


def test_report_truncation_sums_the_tail():
    env = ticker_env(rounds=10, procs=6)
    recorder = FlightRecorder(clock=FakeClock(), period=1).attach(env)
    env.run()
    recorder.detach()
    full = recorder.report()
    clipped = recorder.report(top=3)
    assert len(clipped["attribution"]) == 3
    tail = clipped["truncated"]
    assert tail["rows"] == len(full["attribution"]) - 3
    assert tail["count"] == (sum(r["count"] for r in full["attribution"])
                             - sum(r["count"] for r in
                                   clipped["attribution"]))


def test_reattach_accumulates_without_double_counting():
    clock = FakeClock()
    env = ticker_env(rounds=100, procs=1)
    recorder = FlightRecorder(clock=clock, period=1).attach(env)
    env.run(until=20.0)
    recorder.detach()
    first_events = recorder.events
    first_wall = recorder.report()["wall_s"]
    recorder.attach(env)
    env.run(until=50.0)
    recorder.detach()
    report = recorder.report()
    assert first_events > 0
    assert report["events"] == events_of(env)
    assert report["wall_s"] > first_wall
    # Shares still sum to <= 1: nothing was charged twice.
    assert report["attributed_share"] <= 1.0


# -- service-time aggregation --------------------------------------------------


def test_service_times_summarizes_histograms():
    registry = MetricsRegistry()
    hist = registry.histogram("provider.service_time", provider="Neem")
    for value in (0.002, 0.004, 0.008):
        hist.observe(value)
    registry.histogram("rpc.rtt", host="h1").observe(0.003)
    registry.counter("provider.service_time_ignored").inc()
    out = service_times(registry)
    assert set(out) == {"providers", "rpc"}
    neem = out["providers"]["provider=Neem"]
    assert neem["count"] == 3
    assert neem["p50"] <= neem["p95"]
    assert out["rpc"]["host=h1"]["count"] == 1


# -- the side-channel contract (DESIGN §12) ------------------------------------


def _status_after_run(mode, seed=2009, until=30.0):
    lab = build_paper_lab(seed=seed)
    lab.settle(6.0)
    recorder = (None if mode == "off"
                else FlightRecorder(detail=(mode == "detail")))
    if recorder is not None:
        recorder.attach(lab.env)
    lab.env.run(until=until)
    if recorder is not None:
        recorder.detach()
    return status_json(lab.health.snapshot())


def test_recorder_never_changes_simulation_output():
    off = _status_after_run("off")
    assert off == _status_after_run("sampled")
    assert off == _status_after_run("detail")


def test_recorder_is_shuffle_invariant(shuffle_seed):
    """Tie-break shuffling exercises different same-time event orders;
    the recorder must stay a pure observer under every order."""
    assert _status_after_run("off") == _status_after_run("sampled")
