"""JSON-lines export: format and the byte-identical determinism guarantee."""

import json

from repro.observability import (
    MetricsRegistry,
    Tracer,
    dump_jsonl,
    metrics_registry,
    metrics_to_jsonl,
    trace_to_jsonl,
    tracer_of,
)
from repro.scenarios import build_paper_lab
from repro.sim import Environment


def test_trace_to_jsonl_one_sorted_line_per_span():
    tracer = Tracer(Environment())
    root = tracer.start_span("exert:q", kind="exert", host="h1")
    tracer.start_span("rpc:service", kind="rpc",
                      parent_id=root.span_id).end()
    root.end()
    lines = trace_to_jsonl(tracer).splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert all(r["record"] == "span" for r in records)
    assert [r["span_id"] for r in records] == [1, 2]
    # Keys are sorted, separators compact: the byte layout is canonical.
    assert lines[0] == json.dumps(records[0], sort_keys=True,
                                  separators=(",", ":"))


def test_metrics_to_jsonl_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("z.last").inc()
    registry.counter("a.first").inc(2)
    records = [json.loads(line)
               for line in metrics_to_jsonl(registry).splitlines()]
    assert [r["name"] for r in records] == ["a.first", "z.last"]
    assert all(r["record"] == "metric" for r in records)


def test_dump_jsonl_writes_both_sections(tmp_path):
    tracer = Tracer(Environment())
    tracer.start_span("a").end()
    registry = MetricsRegistry()
    registry.counter("c").inc()
    path = tmp_path / "run.jsonl"
    lines = dump_jsonl(path, tracer, registry)
    assert lines == 2
    on_disk = path.read_text().splitlines()
    assert json.loads(on_disk[0])["record"] == "span"
    assert json.loads(on_disk[1])["record"] == "metric"
    # An empty run writes an empty file, not a blank line.
    empty = tmp_path / "empty.jsonl"
    assert dump_jsonl(empty, Tracer(Environment()), MetricsRegistry()) == 0
    assert empty.read_text() == ""


def _paper_lab_export(seed: int) -> str:
    """Run the six-step experiment and return its full JSONL export."""
    lab = build_paper_lab(seed=seed)
    lab.settle(6.0)
    browser = lab.browser

    def experiment():
        yield from browser.compose_service(
            "Composite-Service",
            ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
        yield from browser.add_expression("Composite-Service", "(a + b + c)/3")
        yield from browser.get_value("Composite-Service")

    lab.env.run(until=lab.env.process(experiment()))
    return (trace_to_jsonl(tracer_of(lab.net)) + "\n"
            + metrics_to_jsonl(metrics_registry(lab.net)))


def test_same_seed_exports_are_byte_identical():
    assert _paper_lab_export(2009) == _paper_lab_export(2009)


def test_different_seeds_export_differently():
    assert _paper_lab_export(2009) != _paper_lab_export(2010)
