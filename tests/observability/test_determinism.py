"""Property: the whole observable surface is a pure function of the seed.

Runs the partition/heal self-healing scenario (CSP with degraded fault
policy losing and regaining a child) and fingerprints the run as
(span tree shapes, metrics snapshot, JSONL export). Identical seeds must
reproduce the fingerprint byte for byte; different seeds must not.
"""

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    CompositeSensorProvider,
    ElementarySensorProvider,
    OP_GET_VALUE,
    SENSOR_DATA_ACCESSOR,
)
from repro.jini import LookupService
from repro.net import FixedLatency, Host, Network
from repro.observability import (
    metrics_registry,
    metrics_to_jsonl,
    trace_to_jsonl,
    tracer_of,
)
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sim import Environment
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from tests.helpers.tracing import assert_no_orphan_spans, tree_shape


def run_partition_heal_scenario(seed: int):
    """Two ESPs + a degraded CSP; query, partition, query, heal, query."""
    env = Environment()
    net = Network(env, rng=np.random.default_rng(seed),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=seed)
    LookupService(Host(net, "lus-host")).start()
    esps = []
    for index, location in enumerate([(0.0, 0.0), (60.0, 0.0)]):
        name = f"P{index + 1}"
        probe = TemperatureProbe(env, name.lower(), world, location,
                                 rng=np.random.default_rng(seed + index))
        esp = ElementarySensorProvider(Host(net, f"{name}-host"), name, probe,
                                       sample_interval=1.0)
        esp.start()
        esps.append(esp)
    csp = CompositeSensorProvider(Host(net, "csp-host"), "Composite",
                                  fault_policy="degraded",
                                  stale_max_age=120.0,
                                  child_wait=1.0, child_timeout=1.0)
    csp.start()
    for esp in esps:
        csp.add_child(esp.service_id, esp.name)
    env.run(until=3.0)

    exerter = Exerter(Host(net, "client-host"))

    def query(tag):
        task = Task(f"q-{tag}",
                    Signature(SENSOR_DATA_ACCESSOR, OP_GET_VALUE,
                              service_id=csp.service_id), ServiceContext())
        task.control.retries = 1
        task.control.invocation_timeout = 2.0
        return env.run(until=env.process(exerter.exert(task)))

    sides = (["csp-host"], ["P2-host"])
    query("warm")
    net.partition(*sides)
    query("cut")
    net.heal_partition(*sides)
    env.run(until=env.now + 12.0)
    query("healed")

    tracer = tracer_of(net)
    assert_no_orphan_spans(tracer)
    shapes = tuple(tree_shape(tracer, root) for root in tracer.roots())
    snapshot = json.dumps(metrics_registry(net).snapshot(), sort_keys=True)
    export = trace_to_jsonl(tracer) + "\n" + metrics_to_jsonl(
        metrics_registry(net))
    return shapes, snapshot, export


@settings(max_examples=4)
@given(seed=st.integers(min_value=0, max_value=2**16 - 1))
def test_same_seed_same_trace_and_metrics(seed):
    first = run_partition_heal_scenario(seed)
    second = run_partition_heal_scenario(seed)
    assert first[0] == second[0], "span tree shapes diverged"
    assert first[1] == second[1], "metric snapshots diverged"
    assert first[2] == second[2], "JSONL exports are not byte-identical"


@settings(max_examples=4)
@given(seeds=st.lists(st.integers(min_value=0, max_value=2**16 - 1),
                      min_size=2, max_size=2, unique=True))
def test_different_seeds_observably_differ(seeds):
    a = run_partition_heal_scenario(seeds[0])
    b = run_partition_heal_scenario(seeds[1])
    # Sensor noise and latency jitter differ, so the exports must too
    # (tree shapes may coincide; timings and readings cannot).
    assert a[2] != b[2]
