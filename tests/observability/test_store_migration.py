"""HistoryStore schema v1 -> v2 migration (the ``restored_from`` marker)."""

import sqlite3

import pytest

from repro.observability.store import SCHEMA_VERSION, _SCHEMA, HistoryStore

V1_SCHEMA = _SCHEMA.replace(",\n    restored_from TEXT", "")


def _create_v1(path):
    conn = sqlite3.connect(path)
    conn.executescript(V1_SCHEMA)
    conn.execute(
        "INSERT INTO runs (run_id, scenario, seed, scheduler, meta) "
        "VALUES ('old-run', 'paper-lab', 2009, 'heap', '{}')")
    conn.execute("PRAGMA user_version=1")
    conn.commit()
    conn.close()


def test_schema_version_is_two():
    assert SCHEMA_VERSION == 2
    assert "restored_from TEXT" in _SCHEMA
    assert "restored_from" not in V1_SCHEMA  # the fixture really is v1


def test_v1_database_migrates_in_place(tmp_path):
    db = tmp_path / "old.db"
    _create_v1(db)
    with HistoryStore(db) as store:
        (run,) = store.runs()
        # Pre-existing rows carry the NULL marker: nothing before v2 was
        # a snapshot restore.
        assert run["run_id"] == "old-run"
        assert run["restored_from"] is None
        # And the migrated file accepts v2 writes immediately.
        store.begin_run("resumed", "paper-lab", 2009, "heap",
                        restored_from="abc123")
    conn = sqlite3.connect(db)
    assert conn.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
    conn.close()


def test_migration_is_idempotent(tmp_path):
    db = tmp_path / "old.db"
    _create_v1(db)
    HistoryStore(db).close()
    with HistoryStore(db) as store:  # second open: already v2, no ALTER
        assert [run["run_id"] for run in store.runs()] == ["old-run"]


def test_restored_from_round_trips(tmp_path):
    with HistoryStore(tmp_path / "new.db") as store:
        store.begin_run("plain", "paper-lab", 1, "heap")
        store.begin_run("resumed", "paper-lab", 2, "calendar",
                        restored_from="d" * 64)
        runs = {run["run_id"]: run["restored_from"] for run in store.runs()}
    assert runs == {"plain": None, "resumed": "d" * 64}


def test_future_schema_still_refused(tmp_path):
    db = tmp_path / "future.db"
    conn = sqlite3.connect(db)
    conn.executescript(_SCHEMA)
    conn.execute(f"PRAGMA user_version={SCHEMA_VERSION + 1}")
    conn.commit()
    conn.close()
    with pytest.raises(ValueError, match="schema"):
        HistoryStore(db)
