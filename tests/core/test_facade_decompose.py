"""Façade decomposeService — runtime re-grouping through the browser."""

import pytest

from repro.net import Host
from repro.sorcer import Jobber
from repro.core import SensorBrowser, SensorcerFacade

from .conftest import make_esp


def test_decompose_restores_smaller_group(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "S2", location=(100.0, 0.0))
    esp3 = make_esp(net, world, "S3", location=(200.0, 0.0))
    from repro.core import CompositeSensorProvider
    csp = CompositeSensorProvider(Host(net, "csp-host"), "Group")
    csp.start()
    SensorcerFacade(Host(net, "facade-host")).start()
    browser = SensorBrowser(Host(net, "browser-host"))

    def proc():
        yield env.timeout(3.0)
        yield from browser.compose_service("Group", ["S1", "S2", "S3"])
        yield from browser.add_expression("Group", "(a + b + c)/3")
        three = yield from browser.get_value("Group")
        # Narrow to two sensors: expression must be retargeted first.
        yield from browser.add_expression("Group", "(a + b)/2")
        yield from browser.decompose_service("Group", "S3")
        two = yield from browser.get_value("Group")
        info = yield from browser.get_info("Group")
        return three, two, info

    three, two, info = env.run(until=env.process(proc()))
    truth3 = world.mean_over("temperature", [(0, 0), (100, 0), (200, 0)], env.now)
    truth2 = world.mean_over("temperature", [(0, 0), (100, 0)], env.now)
    assert abs(three - truth3) < 1.0
    assert abs(two - truth2) < 1.0
    assert info["contained_services"] == ["S1", "S2"]


def test_decompose_unknown_child_reports(grid):
    env, net, world, lus = grid
    from repro.core import BrowserError, CompositeSensorProvider
    make_esp(net, world, "S1")
    csp = CompositeSensorProvider(Host(net, "csp-host"), "Group")
    csp.start()
    SensorcerFacade(Host(net, "facade-host")).start()
    browser = SensorBrowser(Host(net, "browser-host"))

    def proc():
        yield env.timeout(3.0)
        yield from browser.compose_service("Group", ["S1"])
        try:
            yield from browser.decompose_service("Group", "Ghost")
        except BrowserError:
            return "reported"

    assert env.run(until=env.process(proc())) == "reported"
