"""ESP push subscriptions — on-the-fly sensor data (§II.5)."""

import pytest

from repro.net import Host, rpc_endpoint
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.core import SENSOR_DATA_ACCESSOR, SensorReadingEvent

from .conftest import make_esp


class Listener:
    REMOTE_TYPES = ("RemoteEventListener",)

    def __init__(self):
        self.events = []

    def notify(self, event):
        self.events.append(event)


def facade_op(env, net, esp, selector, client_tag, **args):
    host = Host(net, f"sub-client-{client_tag}")
    ep = rpc_endpoint(host)
    listener = Listener()
    listener_ref = ep.export(listener, "listener")
    exerter = Exerter(host)

    def call(selector, **op_args):
        ctx = ServiceContext()
        for key, value in op_args.items():
            ctx.put_in_value(f"arg/{key}", value)
        task = Task(f"s-{selector}",
                    Signature(SENSOR_DATA_ACCESSOR, selector,
                              service_id=esp.service_id), ctx)
        result = yield env.process(exerter.exert(task))
        assert result.is_done, result.exceptions
        return result.get_return_value()

    return listener, listener_ref, call


def test_subscriber_receives_pushed_readings(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1", sample_interval=1.0)
    listener, listener_ref, call = facade_op(env, net, esp, "subscribe", "a")

    def proc():
        yield env.timeout(2.0)
        sub = yield from call("subscribe", listener=listener_ref,
                              lease_duration=60.0)
        yield env.timeout(10.0)
        return sub

    sub = env.run(until=env.process(proc()))
    assert len(listener.events) >= 8
    event = listener.events[0]
    assert isinstance(event, SensorReadingEvent)
    assert event.sensor_name == "T1"
    assert event.reading.unit == "celsius"
    # Sequence numbers are gapless and increasing.
    assert [e.sequence for e in listener.events] == list(
        range(1, len(listener.events) + 1))


def test_min_interval_throttles(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1", sample_interval=0.5)
    listener, listener_ref, call = facade_op(env, net, esp, "subscribe", "a")

    def proc():
        yield env.timeout(2.0)
        yield from call("subscribe", listener=listener_ref,
                        min_interval=2.0, lease_duration=60.0)
        yield env.timeout(10.0)

    env.run(until=env.process(proc()))
    # 10s at >= 2s spacing: at most ~6 pushes (not the ~20 samples taken).
    assert 3 <= len(listener.events) <= 6
    times = [e.reading.timestamp for e in listener.events]
    assert all(b - a >= 2.0 for a, b in zip(times, times[1:]))


def test_lease_expiry_stops_push(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1", sample_interval=0.5)
    listener, listener_ref, call = facade_op(env, net, esp, "subscribe", "a")

    def proc():
        yield env.timeout(2.0)
        yield from call("subscribe", listener=listener_ref,
                        lease_duration=3.0)
        yield env.timeout(20.0)

    env.run(until=env.process(proc()))
    count = len(listener.events)
    assert count > 0
    # All events arrived within the lease window (+1 sweep).
    last = listener.events[-1].reading.timestamp
    assert last <= 2.0 + 3.0 + 1.0


def test_renew_extends_subscription(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1", sample_interval=0.5)
    listener, listener_ref, call = facade_op(env, net, esp, "subscribe", "a")

    def proc():
        yield env.timeout(2.0)
        sub = yield from call("subscribe", listener=listener_ref,
                              lease_duration=3.0)
        for _ in range(6):
            yield env.timeout(1.5)
            yield from call("renewSubscription", lease_id=sub.lease_id,
                            lease_duration=3.0)
        yield env.timeout(1.0)

    env.run(until=env.process(proc()))
    last = listener.events[-1].reading.timestamp
    assert last > 10.0  # events kept flowing well past the original lease


def test_unsubscribe_stops_immediately(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1", sample_interval=0.5)
    listener, listener_ref, call = facade_op(env, net, esp, "subscribe", "a")

    def proc():
        yield env.timeout(2.0)
        sub = yield from call("subscribe", listener=listener_ref,
                              lease_duration=600.0)
        yield env.timeout(3.0)
        yield from call("unsubscribe", lease_id=sub.lease_id)
        stopped_at = env.now
        yield env.timeout(10.0)
        return stopped_at

    stopped_at = env.run(until=env.process(proc()))
    assert all(e.reading.timestamp <= stopped_at for e in listener.events)


def test_dead_subscriber_lease_lapses_quietly(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1", sample_interval=0.5)
    listener, listener_ref, call = facade_op(env, net, esp, "subscribe", "a")
    client_host = net.hosts["sub-client-a"]

    def proc():
        yield env.timeout(2.0)
        yield from call("subscribe", listener=listener_ref,
                        lease_duration=5.0)
        yield env.timeout(2.0)

    env.run(until=env.process(proc()))
    client_host.fail()
    env.run(until=30.0)
    # Subscription reaped; the sampler keeps running unharmed.
    assert esp._subscribers == {}
    assert esp.buffer.last().timestamp > 25.0


def test_two_subscribers_independent(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1", sample_interval=1.0)
    l1, ref1, call1 = facade_op(env, net, esp, "subscribe", "a")
    l2, ref2, call2 = facade_op(env, net, esp, "subscribe", "b")

    def proc():
        yield env.timeout(2.0)
        yield from call1("subscribe", listener=ref1, lease_duration=60.0)
        yield from call2("subscribe", listener=ref2, min_interval=3.0,
                         lease_duration=60.0)
        yield env.timeout(9.0)

    env.run(until=env.process(proc()))
    assert len(l1.events) > len(l2.events) > 0
