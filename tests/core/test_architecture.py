"""FIG1 — the component architecture of the paper's UML diagram.

Fig 1 shows: Sensor Probe (only sensor-dependent part) -> ESP via the
DataCollection interface -> SensorDataAccessor exposed to requestors; CSP
composing ESPs/CSPs with Sensor Computation; the Façade with Sensor Network
Manager, Service Accessor and Sensor Service Provisioner. These tests pin
the code to that structure.
"""

import inspect

from repro.core import (
    COMPOSITE_PROVIDER,
    CompositeSensorProvider,
    DATA_COLLECTION,
    ELEMENTARY_PROVIDER,
    ElementarySensorProvider,
    FACADE,
    SENSOR_DATA_ACCESSOR,
    SensorcerFacade,
    SensorNetworkManager,
    SensorServiceProvisioner,
)
from repro.sensors import BaseProbe, SensorProbe
from repro.sorcer import ServiceProvider
from repro.sorcer.accessor import ServiceAccessor


def test_esp_implements_sensor_data_accessor_and_data_collection():
    assert SENSOR_DATA_ACCESSOR in ElementarySensorProvider.SERVICE_TYPES
    assert DATA_COLLECTION in ElementarySensorProvider.SERVICE_TYPES
    assert ELEMENTARY_PROVIDER in ElementarySensorProvider.SERVICE_TYPES


def test_csp_implements_sensor_data_accessor():
    assert SENSOR_DATA_ACCESSOR in CompositeSensorProvider.SERVICE_TYPES
    assert COMPOSITE_PROVIDER in CompositeSensorProvider.SERVICE_TYPES


def test_esp_and_csp_share_the_common_interface():
    """Clients address both uniformly — the paper's uniform aggregation
    interface (§II.6)."""
    shared = (set(ElementarySensorProvider.SERVICE_TYPES)
              & set(CompositeSensorProvider.SERVICE_TYPES))
    assert SENSOR_DATA_ACCESSOR in shared


def test_providers_are_servicers():
    """All providers expose only service(exertion, txn) remotely (§IV.D)."""
    for cls in (ElementarySensorProvider, CompositeSensorProvider,
                SensorcerFacade):
        assert issubclass(cls, ServiceProvider)
        assert callable(getattr(cls, "service"))


def test_probe_is_the_only_sensor_dependent_component():
    """The ESP depends on the probe *interface*, not on a concrete driver."""
    signature = inspect.signature(ElementarySensorProvider.__init__)
    assert "probe" in signature.parameters
    # Drivers subclass the abstract probe; the ESP module must not import
    # any concrete driver.
    import repro.core.esp as esp_module
    source = inspect.getsource(esp_module)
    for driver in ("TemperatureProbe", "SunSpot", "HumidityProbe"):
        assert driver not in source
    assert issubclass(BaseProbe, SensorProbe)


def test_facade_wires_manager_accessor_and_provisioner():
    """Fig 1: the façade uses Sensor Network Manager, Service Accessor and
    Sensor Service Provisioner."""
    signature = inspect.signature(SensorcerFacade.__init__)
    assert "provisioner" in signature.parameters
    # Attribute wiring is established in the constructor source.
    source = inspect.getsource(SensorcerFacade.__init__)
    assert "SensorNetworkManager" in source
    assert "provisioner" in source
    assert "accessor" in source


def test_facade_exposes_the_fig2_operations():
    facade_ops = {"listSensors", "getValue", "getSensorInfo",
                  "composeService", "addExpression", "createService",
                  "networkSnapshot"}
    source = inspect.getsource(SensorcerFacade.__init__)
    for op in facade_ops:
        assert op in source


def test_csp_management_reduces_to_single_provider():
    """§V.B: network management semantics reduce to managing one CSP."""
    csp = CompositeSensorProvider.__new__(CompositeSensorProvider)
    # Operations are registered in __init__; assert against the selector
    # constants the operations use.
    source = inspect.getsource(CompositeSensorProvider.__init__)
    for constant in ("OP_ADD_SERVICE", "OP_REMOVE_SERVICE",
                     "OP_SET_EXPRESSION", "OP_LIST_SERVICES"):
        assert constant in source


def test_provisioner_is_rio_backed():
    source = inspect.getsource(SensorServiceProvisioner)
    assert "OperationalString" in source
    assert "ProvisionMonitor" in source or "MONITOR_TYPE" in source


def test_accessor_is_shared_component():
    assert isinstance(SensorcerFacade.__init__.__doc__ or "", str)
    signature = inspect.signature(SensorServiceProvisioner.__init__)
    assert "accessor" in signature.parameters
    assert ServiceAccessor is not None
