"""Unit tests for composition plans (the declarative network state)."""

import pytest

from repro.core import CompositionPlan
from repro.core.plan import PlanEntry


def test_add_builds_ordered_entries():
    plan = CompositionPlan()
    plan.add("Subnet", ["s1", "s2"], "(a+b)/2").add("Network",
                                                    ["Subnet", "s3"])
    assert len(plan) == 2
    assert plan.composites() == ["Subnet", "Network"]  # leaves-first order
    entry = plan.entry_for("Subnet")
    assert entry.children == ("s1", "s2")
    assert entry.expression == "(a+b)/2"
    assert plan.entry_for("Network").expression is None


def test_children_are_frozen_as_tuples():
    children = ["a", "b"]
    plan = CompositionPlan().add("C", children)
    children.append("c")  # later mutation must not leak into the plan
    assert plan.entry_for("C").children == ("a", "b")
    with pytest.raises(Exception):  # frozen dataclass
        plan.entry_for("C").children = ()


def test_duplicate_composite_rejected():
    plan = CompositionPlan().add("C", ["x"])
    with pytest.raises(ValueError):
        plan.add("C", ["y"])
    assert len(plan) == 1  # the failed add left no partial entry


def test_entry_for_unknown_composite_is_none():
    assert CompositionPlan().entry_for("missing") is None


def test_entries_compare_by_value():
    assert PlanEntry("C", ("a",), "a") == PlanEntry("C", ("a",), "a")
    assert PlanEntry("C", ("a",)) != PlanEntry("C", ("b",))
