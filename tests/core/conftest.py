"""Fixtures for core-layer tests: a lab with LUS + jobber + sensors."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService
from repro.jini.entries import Location
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sorcer import Jobber
from repro.core import ElementarySensorProvider


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return Network(env, rng=np.random.default_rng(31),
                   latency=FixedLatency(0.001))


@pytest.fixture
def world():
    return PhysicalEnvironment(seed=31)


@pytest.fixture
def grid(env, net, world):
    """LUS + jobber; returns (env, net, world, lus)."""
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    Jobber(Host(net, "jobber-host")).start()
    return env, net, world, lus


def make_esp(net, world, name, location=(0.0, 0.0), sample_interval=1.0,
             seed=0, probe=None):
    """Start an ESP with a plain temperature probe on its own host."""
    host = Host(net, f"{name}-host")
    if probe is None:
        probe = TemperatureProbe(net.env, name.lower(), world, location,
                                 rng=np.random.default_rng(seed),
                                 sensing_noise=0.0)
    esp = ElementarySensorProvider(host, name, probe,
                                   sample_interval=sample_interval,
                                   location=Location(building="Lab"))
    esp.start()
    return esp
