"""CSP read coalescing: concurrent ``getValue`` exertions share one
child fan-out instead of multiplying it N-fold under pressure."""

import pytest

from repro.core import (
    OP_GET_VALUE,
    SENSOR_DATA_ACCESSOR,
)
from repro.net import Host
from repro.observability import metrics_registry
from repro.sorcer import Exerter, ServiceContext, Signature, Task

from .conftest import make_esp
from .test_csp import make_csp


def fanout_values(env, net, csp, concurrency, settle=2.0):
    """Fire ``concurrency`` same-instant getValue exertions; return the
    per-request results once all complete."""
    exerter = Exerter(Host(net, f"coalesce-req-{len(net.hosts)}"))
    results = []

    def one(index):
        task = Task(f"get-{index}",
                    Signature(SENSOR_DATA_ACCESSOR, OP_GET_VALUE,
                              service_id=csp.service_id),
                    ServiceContext())
        result = yield env.process(exerter.exert(task))
        results.append(result)

    def burst():
        yield env.timeout(settle)
        procs = [env.process(one(i), name=f"co:{i}")
                 for i in range(concurrency)]
        yield env.all_of(procs)

    env.run(until=env.process(burst()))
    return results


def coalesced_count(net, csp):
    snap = metrics_registry(net).snapshot()
    entry = snap.get(f"csp.coalesced{{provider={csp.name}}}")
    return entry["data"] if entry else 0


def test_concurrent_reads_share_one_collection(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "S2", location=(60.0, 0.0))
    csp = make_csp(net)
    csp.coalesce = True
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    results = fanout_values(env, net, csp, concurrency=4)
    assert all(r.is_done for r in results)
    values = {r.get_return_value() for r in results}
    assert len(values) == 1, "joiners must see the leader's bindings"
    # One leader + three joiners.
    assert coalesced_count(net, csp) == 3
    # Each child answered one collection's worth of reads, not four.
    assert csp._inflight_read is None


def test_coalescing_off_by_default(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "S1")
    csp = make_csp(net)
    csp.add_child(esp.service_id, esp.name)
    results = fanout_values(env, net, csp, concurrency=3)
    assert all(r.is_done for r in results)
    assert coalesced_count(net, csp) == 0


def test_composition_change_invalidates_the_epoch(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1")
    esp2 = make_esp(net, world, "S2")
    csp = make_csp(net)
    csp.coalesce = True
    csp.add_child(esp1.service_id, esp1.name)
    first = fanout_values(env, net, csp, concurrency=2)
    assert all(r.is_done for r in first)
    # Recomposing bumps the epoch: later reads must not join any stale
    # in-flight token.
    csp.add_child(esp2.service_id, esp2.name)
    second = fanout_values(env, net, csp, concurrency=2, settle=0.5)
    assert all(r.is_done for r in second)
    # One joiner per burst, never across the recomposition.
    assert coalesced_count(net, csp) == 2


def test_leader_failure_propagates_to_joiners(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "S1")
    csp = make_csp(net)
    csp.coalesce = True
    csp.child_wait = 1.0
    csp.add_child(esp.service_id, esp.name)
    env.run(until=3.0)
    esp.host.fail()
    env.run(until=60.0)  # lease lapses, the child vanishes
    results = fanout_values(env, net, csp, concurrency=3, settle=0.5)
    assert all(r.is_failed for r in results), (
        "joiners must fail when the shared collection fails")
    assert csp._inflight_read is None, "a failed token must not linger"
