"""Composite sensor provider: composition, expressions, nesting, cycles."""

import pytest

from repro.net import Host
from repro.sorcer import Exerter, ServiceContext, Signature, Strategy, Task
from repro.core import (
    CompositeSensorProvider,
    CompositionError,
    KIND_COMPOSITE,
    OP_ADD_SERVICE,
    OP_GET_INFO,
    OP_GET_VALUE,
    OP_LIST_SERVICES,
    OP_SET_EXPRESSION,
    SENSOR_DATA_ACCESSOR,
    variable_name,
)

from .conftest import make_esp


def make_csp(net, name="Composite", strategy=Strategy.PARALLEL):
    csp = CompositeSensorProvider(Host(net, f"{name}-host"), name,
                                  strategy=strategy)
    csp.start()
    return csp


def exert_value(env, net, target, settle=2.0, requestor_suffix=""):
    exerter = Exerter(Host(net, f"value-req{requestor_suffix}"))

    def proc():
        yield env.timeout(settle)
        task = Task("get", Signature(SENSOR_DATA_ACCESSOR, OP_GET_VALUE,
                                     service_id=target.service_id),
                    ServiceContext())
        result = yield env.process(exerter.exert(task))
        return result

    return env.run(until=env.process(proc()))


def test_variable_name_sequence():
    assert [variable_name(i) for i in range(4)] == ["a", "b", "c", "d"]
    assert variable_name(25) == "z"
    assert variable_name(26) == "aa"
    assert variable_name(27) == "ab"
    assert variable_name(52) == "ba"


def test_add_child_assigns_variables_in_order(grid):
    env, net, world, lus = grid
    csp = make_csp(net)
    assert csp.add_child("id-1", "S1") == "a"
    assert csp.add_child("id-2", "S2") == "b"
    assert csp.add_child("id-3", "S3") == "c"
    assert csp.variable_of("id-2") == "b"


def test_cannot_contain_itself(grid):
    env, net, world, lus = grid
    csp = make_csp(net)
    with pytest.raises(CompositionError):
        csp.add_child(csp.service_id, csp.name)


def test_duplicate_child_rejected(grid):
    env, net, world, lus = grid
    csp = make_csp(net)
    csp.add_child("id-1", "S1")
    with pytest.raises(CompositionError):
        csp.add_child("id-1", "S1")


def test_remove_child_reassigns_variables(grid):
    env, net, world, lus = grid
    csp = make_csp(net)
    csp.add_child("id-1", "S1")
    csp.add_child("id-2", "S2")
    csp.remove_child("id-1")
    assert csp.variable_of("id-2") == "a"


def test_expression_validation(grid):
    env, net, world, lus = grid
    csp = make_csp(net)
    csp.add_child("id-1", "S1")
    with pytest.raises(CompositionError):
        csp.set_expression("(a + b)/2")  # b unbound
    csp.add_child("id-2", "S2")
    csp.set_expression("(a + b)/2")  # now fine
    with pytest.raises(CompositionError):
        csp.set_expression("a +")  # syntax error
    csp.set_expression(None)
    assert csp.expression is None


def test_removing_child_invalidates_expression(grid):
    env, net, world, lus = grid
    csp = make_csp(net)
    csp.add_child("id-1", "S1")
    csp.add_child("id-2", "S2")
    csp.set_expression("(a + b)/2")
    with pytest.raises(CompositionError):
        csp.remove_child("id-2")


def test_average_expression_over_live_sensors(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "S2", location=(50.0, 0.0))
    esp3 = make_esp(net, world, "S3", location=(0.0, 50.0))
    csp = make_csp(net)
    for esp in (esp1, esp2, esp3):
        csp.add_child(esp.service_id, esp.name)
    csp.set_expression("(a + b + c)/3")
    result = exert_value(env, net, csp)
    assert result.is_done
    value = result.get_return_value()
    truth = world.mean_over("temperature",
                            [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)], env.now)
    assert abs(value - truth) < 1.0


def test_default_aggregation_is_mean(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "S2", location=(100.0, 0.0))
    csp = make_csp(net)
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    result = exert_value(env, net, csp)
    value = result.get_return_value()
    truth = world.mean_over("temperature", [(0, 0), (100, 0)], env.now)
    assert abs(value - truth) < 1.0


def test_expression_can_use_functions(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "S2", location=(100.0, 0.0))
    csp = make_csp(net)
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    csp.set_expression("max(a, b) - min(a, b)")
    result = exert_value(env, net, csp)
    assert result.is_done
    assert result.get_return_value() >= 0.0


def test_empty_composite_fails(grid):
    env, net, world, lus = grid
    csp = make_csp(net)
    result = exert_value(env, net, csp)
    assert result.is_failed
    assert "no composed services" in result.exceptions[0]


def test_nested_composites(grid):
    """Fig 3's structure: network = composite(subnet, extra-sensor)."""
    env, net, world, lus = grid
    s1 = make_esp(net, world, "S1", location=(0.0, 0.0))
    s2 = make_esp(net, world, "S2", location=(10.0, 0.0))
    s3 = make_esp(net, world, "S3", location=(20.0, 0.0))
    subnet = make_csp(net, "Subnet")
    subnet.add_child(s1.service_id, s1.name)
    subnet.add_child(s2.service_id, s2.name)
    subnet.set_expression("(a + b)/2")
    network = make_csp(net, "Network")
    network.add_child(subnet.service_id, subnet.name)
    network.add_child(s3.service_id, s3.name)
    network.set_expression("(a + b)/2")
    result = exert_value(env, net, network, settle=3.0)
    assert result.is_done
    value = result.get_return_value()
    t = env.now
    truth = (world.mean_over("temperature", [(0, 0), (10, 0)], t)
             + world.sample("temperature", (20, 0), t)) / 2
    assert abs(value - truth) < 1.0


def test_composition_cycle_detected_at_query(grid):
    env, net, world, lus = grid
    a = make_csp(net, "A")
    b = make_csp(net, "B")
    # Build a cycle behind the manager's back: A contains B, B contains A.
    a.add_child(b.service_id, "B")
    b.add_child(a.service_id, "A")
    result = exert_value(env, net, a, settle=3.0)
    assert result.is_failed
    assert "cycle" in str(result.exceptions).lower()


def test_dead_child_fails_collection(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "S1")
    csp = make_csp(net)
    csp.add_child(esp.service_id, esp.name)
    csp.child_wait = 1.0
    env.run(until=3.0)
    esp.host.fail()
    env.run(until=60.0)  # lease lapses, service vanishes
    result = exert_value(env, net, csp, settle=0.5)
    assert result.is_failed


def test_sequential_strategy_also_works(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1")
    esp2 = make_esp(net, world, "S2")
    csp = make_csp(net, strategy=Strategy.SEQUENTIAL)
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    result = exert_value(env, net, csp)
    assert result.is_done


def test_management_via_exertions(grid):
    """add/setExpression/list/getInfo through the Servicer interface."""
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1")
    esp2 = make_esp(net, world, "S2")
    csp = make_csp(net)
    exerter = Exerter(Host(net, "mgmt-req"))

    def op(selector, **args):
        ctx = ServiceContext()
        for key, value in args.items():
            ctx.put_in_value(f"arg/{key}", value)
        task = Task(f"m-{selector}",
                    Signature(SENSOR_DATA_ACCESSOR, selector,
                              service_id=csp.service_id), ctx)
        result = yield env.process(exerter.exert(task))
        assert result.is_done, result.exceptions
        return result.get_return_value()

    def proc():
        yield env.timeout(2.0)
        var1 = yield from op(OP_ADD_SERVICE, service_id=esp1.service_id, name="S1")
        var2 = yield from op(OP_ADD_SERVICE, service_id=esp2.service_id, name="S2")
        yield from op(OP_SET_EXPRESSION, expression="(a + b)/2")
        listed = yield from op(OP_LIST_SERVICES)
        info = yield from op(OP_GET_INFO)
        return var1, var2, listed, info

    var1, var2, listed, info = env.run(until=env.process(proc()))
    assert (var1, var2) == ("a", "b")
    assert [entry["variable"] for entry in listed] == ["a", "b"]
    assert info["service_type"] == KIND_COMPOSITE
    assert info["expression"] == "(a + b)/2"
    assert info["contained_services"] == ["S1", "S2"]


def test_variable_name_index_roundtrip():
    from repro.core import variable_index

    for index in list(range(100)) + [25, 26, 27, 51, 52, 701, 702]:
        assert variable_index(variable_name(index)) == index


def test_variable_index_validation():
    from repro.core import variable_index
    with pytest.raises(ValueError):
        variable_index("")
    with pytest.raises(ValueError):
        variable_index("A1")
    with pytest.raises(ValueError):
        variable_name(-1)
