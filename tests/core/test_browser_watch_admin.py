"""Browser watch (time series) and admin (registry) panes."""

import pytest

from repro.scenarios import SENSOR_NAMES, build_paper_lab


@pytest.fixture(scope="module")
def lab():
    lab = build_paper_lab(seed=314)
    lab.settle(6.0)
    return lab


def run(lab, gen):
    return lab.env.run(until=lab.env.process(gen))


def test_watch_collects_series(lab):
    series = run(lab, lab.browser.watch(["Neem-Sensor", "Coral-Sensor"],
                                        interval=2.0, rounds=4))
    assert set(series) == {"Neem-Sensor", "Coral-Sensor"}
    for points in series.values():
        assert len(points) == 4
        times = [t for t, _ in points]
        assert times == sorted(times)
        assert all(isinstance(v, float) for _, v in points)
    # Sampling respected the interval.
    neem_times = [t for t, _ in series["Neem-Sensor"]]
    gaps = [b - a for a, b in zip(neem_times, neem_times[1:])]
    assert all(g >= 2.0 for g in gaps)


def test_watch_pane_renders(lab):
    run(lab, lab.browser.watch(["Neem-Sensor"], interval=1.0, rounds=2))
    pane = lab.browser.render_watch_pane()
    assert "Watch" in pane
    assert "Neem-Sensor" in pane
    assert len(pane.splitlines()) == 5  # title + rule + header + 2 rows


def test_watch_handles_unknown_service(lab):
    series = run(lab, lab.browser.watch(["Ghost"], interval=1.0, rounds=2))
    assert series["Ghost"] == [(pytest.approx(series["Ghost"][0][0]), None),
                               (pytest.approx(series["Ghost"][1][0]), None)]
    pane = lab.browser.render_watch_pane()
    assert "-" in pane


def test_registry_admin_lists_all_registrations(lab):
    admin = run(lab, lab.browser.registry_admin())
    assert len(admin) == 1  # one registrar in the paper lab
    rows = next(iter(admin.values()))
    names = {row["name"] for row in rows}
    assert set(SENSOR_NAMES) <= names
    for row in rows:
        assert row["lease_remaining"] is not None
        assert row["lease_remaining"] >= 0.0
    pane = lab.browser.render_admin_pane()
    assert "registrar" in pane
    assert "Neem-Sensor" in pane
