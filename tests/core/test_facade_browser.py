"""Façade + browser against the full paper-lab deployment (Fig 2 / Fig 3)."""

import pytest

from repro.scenarios import SENSOR_NAMES, build_paper_lab
from repro.jini import ServiceTemplate
from repro.core import SENSOR_DATA_ACCESSOR


@pytest.fixture(scope="module")
def lab():
    lab = build_paper_lab(seed=2009)
    lab.settle(6.0)
    return lab


def run(lab, gen):
    return lab.env.run(until=lab.env.process(gen))


def test_fig2_service_inventory(lab):
    """Every service of the paper's Fig 2 listing is registered."""
    names = {item.name() for item in lab.lus.lookup_all()}
    expected = {
        "Transaction Manager", "Event Mailbox", "Lease Renewal Service",
        "Lookup Discovery Service", "Monitor", "Jobber",
        "Composite-Service", "SenSORCER Facade",
        *SENSOR_NAMES,
    }
    assert expected <= names
    # Two cybernodes, both named "Cybernode" like the Fig 2 listing.
    cybernodes = lab.lus.lookup(ServiceTemplate.by_type("Cybernode"), 10)
    assert len(cybernodes) == 2


def test_browser_lists_sensor_services(lab):
    sensors = run(lab, lab.browser.get_sensor_list())
    names = {s["name"] for s in sensors}
    assert set(SENSOR_NAMES) <= names
    assert "Composite-Service" in names
    rendered = lab.browser.render_service_list()
    for name in SENSOR_NAMES:
        assert name in rendered


def test_browser_reads_sensor_value(lab):
    value = run(lab, lab.browser.get_value("Neem-Sensor"))
    truth = lab.world.sample("temperature", (0.0, 0.0), lab.env.now)
    assert abs(value - truth) < 1.5


def test_facade_get_info_elementary(lab):
    info = run(lab, lab.browser.get_info("Jade-Sensor"))
    assert info["service_type"] == "ELEMENTARY"
    assert info["quantity"] == "temperature"
    assert info["model"] == "SunSPOT/ADT7411"


def test_unknown_sensor_is_reported(lab):
    from repro.core import BrowserError
    with pytest.raises(BrowserError):
        run(lab, lab.browser.get_value("Ghost-Sensor"))


def test_fig3_six_step_experiment(lab):
    """The paper's §VI experiment, steps 1-6, end to end."""
    browser, env, world = lab.browser, lab.env, lab.world

    def experiment():
        # Step 1: form a subnet of three elementary services.
        assigned = yield from browser.compose_service(
            "Composite-Service", ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
        assert assigned == {"Neem-Sensor": "a", "Jade-Sensor": "b",
                            "Diamond-Sensor": "c"}
        # Step 2: average-of-three expression.
        yield from browser.add_expression("Composite-Service", "(a + b + c)/3")
        # Step 3: provision a new composite service onto the network.
        created = yield from browser.create_service("New-Composite")
        assert created["name"] == "New-Composite"
        # Step 4: network = {subnet from step 1, Coral-Sensor}.
        assigned2 = yield from browser.compose_service(
            "New-Composite", ["Composite-Service", "Coral-Sensor"])
        assert assigned2 == {"Composite-Service": "a", "Coral-Sensor": "b"}
        # Step 5: average of the two composed services.
        yield from browser.add_expression("New-Composite", "(a + b)/2")
        # Step 6: read the sensor value from the new composite.
        value = yield from browser.get_value("New-Composite")
        return value

    value = env.run(until=env.process(experiment()))
    t = env.now
    subnet_locations = [(0.0, 0.0), (8.0, 2.0), (12.0, 7.0)]  # Neem/Jade/Diamond
    truth = (world.mean_over("temperature", subnet_locations, t)
             + world.sample("temperature", (3.0, 9.0), t)) / 2
    assert abs(value - truth) < 1.5

    # The provisioned service landed on one of the two cybernodes.
    items = lab.lus.lookup(
        ServiceTemplate(types=(SENSOR_DATA_ACCESSOR,)), 64)
    new_composite = [i for i in items if i.name() == "New-Composite"]
    assert len(new_composite) == 1
    assert new_composite[0].service.host in ("cybernode-0", "cybernode-1")


def test_info_pane_after_experiment(lab):
    """Fig 3's 'Sensor Service Information' for the provisioned composite."""
    info = run(lab, lab.browser.get_info("New-Composite"))
    assert info["service_type"] == "COMPOSITE"
    assert info["contained_services"] == ["Composite-Service", "Coral-Sensor"]
    assert info["expression"] == "(a + b)/2"
    pane = lab.browser.render_info_pane()
    assert "New-Composite" in pane
    assert "COMPOSITE" in pane
    assert "(a + b)/2" in pane


def test_values_pane_lists_all_sensors(lab):
    values = run(lab, lab.browser.get_all_values())
    for name in SENSOR_NAMES:
        assert isinstance(values[name], float)
    pane = lab.browser.render_values_pane()
    assert "Neem-Sensor" in pane


def test_topology_reflects_composition(lab):
    snapshot = run(lab, lab.browser.refresh_topology())
    names = {n["name"]: n["service_id"] for n in snapshot["nodes"]}
    edges = {(e["parent"], e["child"]) for e in snapshot["edges"]}
    assert (names["New-Composite"], names["Composite-Service"]) in edges
    assert (names["Composite-Service"], names["Neem-Sensor"]) in edges
    rendered = lab.browser.render_topology()
    assert "New-Composite" in rendered


def test_compose_rejects_non_composite_target(lab):
    from repro.core import BrowserError
    with pytest.raises(BrowserError):
        run(lab, lab.browser.compose_service("Neem-Sensor", ["Jade-Sensor"]))


def test_facade_sensor_stats(lab):
    stats = run(lab, lab.browser.get_stats("Neem-Sensor"))
    assert stats["count"] > 0
    assert stats["min"] <= stats["mean"] <= stats["max"]
    windowed = run(lab, lab.browser.get_stats("Neem-Sensor", window=3))
    assert windowed["count"] == 3


def test_facade_stats_rejects_composites_gracefully(lab):
    from repro.core import BrowserError
    # Composites don't implement getStats; the failure is reported cleanly.
    with pytest.raises(BrowserError):
        run(lab, lab.browser.get_stats("Composite-Service"))


def test_batch_get_values_concurrent(lab):
    values = run(lab, lab.browser.get_values(list(SENSOR_NAMES)))
    assert set(values) == set(SENSOR_NAMES)
    assert all(isinstance(v, float) for v in values.values())


def test_batch_get_values_tolerates_unknown(lab):
    values = run(lab, lab.browser.get_values(["Neem-Sensor", "Ghost"]))
    assert isinstance(values["Neem-Sensor"], float)
    assert values["Ghost"] is None
