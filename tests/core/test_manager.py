"""SensorNetworkManager (the logical-network model)."""

import pytest

from repro.core import NetworkModelError, SensorNetworkManager


@pytest.fixture
def manager():
    m = SensorNetworkManager()
    m.register_service("c1", "Composite-1", "COMPOSITE")
    m.register_service("c2", "Composite-2", "COMPOSITE")
    m.register_service("s1", "Sensor-1", "ELEMENTARY")
    m.register_service("s2", "Sensor-2", "ELEMENTARY")
    return m


def test_register_and_lookup(manager):
    assert manager.has_service("s1")
    assert manager.name_of("s1") == "Sensor-1"
    assert manager.kind_of("c1") == "COMPOSITE"
    assert manager.services() == ["c1", "c2", "s1", "s2"]


def test_reregister_updates_metadata(manager):
    manager.register_service("s1", "Renamed", "ELEMENTARY")
    assert manager.name_of("s1") == "Renamed"
    assert len(manager.services()) == 4


def test_unregister(manager):
    manager.unregister_service("s2")
    assert not manager.has_service("s2")
    with pytest.raises(NetworkModelError):
        manager.unregister_service("s2")


def test_compose_and_children(manager):
    manager.compose("c1", "s1")
    manager.compose("c1", "s2")
    assert manager.children_of("c1") == ["s1", "s2"]
    assert manager.parents_of("s1") == ["c1"]


def test_self_composition_rejected(manager):
    with pytest.raises(NetworkModelError):
        manager.compose("c1", "c1")


def test_duplicate_edge_rejected(manager):
    manager.compose("c1", "s1")
    with pytest.raises(NetworkModelError):
        manager.compose("c1", "s1")


def test_cycle_rejected(manager):
    manager.compose("c1", "c2")
    with pytest.raises(NetworkModelError):
        manager.compose("c2", "c1")


def test_deep_cycle_rejected(manager):
    manager.register_service("c3", "Composite-3", "COMPOSITE")
    manager.compose("c1", "c2")
    manager.compose("c2", "c3")
    with pytest.raises(NetworkModelError):
        manager.compose("c3", "c1")


def test_decompose(manager):
    manager.compose("c1", "s1")
    manager.decompose("c1", "s1")
    assert manager.children_of("c1") == []
    with pytest.raises(NetworkModelError):
        manager.decompose("c1", "s1")


def test_subnet_members(manager):
    manager.compose("c1", "c2")
    manager.compose("c2", "s1")
    manager.compose("c2", "s2")
    assert manager.subnet_members("c1") == ["c2", "s1", "s2"]
    assert manager.subnet_members("c2") == ["s1", "s2"]


def test_roots(manager):
    manager.compose("c1", "s1")
    manager.compose("c1", "c2")
    assert manager.roots() == ["c1", "s2"]


def test_snapshot_roundtrip(manager):
    manager.compose("c1", "s1")
    snap = manager.snapshot()
    assert {"service_id": "s1", "name": "Sensor-1",
            "kind": "ELEMENTARY"} in snap["nodes"]
    assert {"parent": "c1", "child": "s1"} in snap["edges"]


def test_unknown_node_errors(manager):
    with pytest.raises(NetworkModelError):
        manager.compose("c1", "ghost")
    with pytest.raises(NetworkModelError):
        manager.children_of("ghost")
