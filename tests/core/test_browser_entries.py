"""Browser Entry Value pane (Fig 2's attribute table)."""

import pytest

from repro.scenarios import build_paper_lab
from repro.core import BrowserError
from repro.jini import Location, Name, SensorType


@pytest.fixture(scope="module")
def lab():
    lab = build_paper_lab(seed=77)
    lab.settle(6.0)
    return lab


def test_get_attributes_returns_entries(lab):
    attrs = lab.env.run(until=lab.env.process(
        lab.browser.get_attributes("Neem-Sensor")))
    kinds = {type(a) for a in attrs}
    assert Name in kinds
    assert SensorType in kinds
    assert Location in kinds
    location = next(a for a in attrs if isinstance(a, Location))
    # The paper's Fig 2 entry pane: floor 3, room 310, building CP TTU.
    assert (location.floor, location.room, location.building) == \
        ("3", "310", "CP TTU")


def test_render_entries_pane(lab):
    lab.env.run(until=lab.env.process(
        lab.browser.get_attributes("Jade-Sensor")))
    pane = lab.browser.render_entries_pane()
    assert "Jade-Sensor" in pane
    assert "Location.building" in pane
    assert "CP TTU" in pane
    assert "SensorType.quantity" in pane
    assert "temperature" in pane


def test_entries_pane_empty_without_selection(lab):
    lab.browser.model["entries"] = None
    assert "no service selected" in lab.browser.render_entries_pane()


def test_get_attributes_unknown_service(lab):
    with pytest.raises(BrowserError):
        lab.env.run(until=lab.env.process(
            lab.browser.get_attributes("Nope")))
