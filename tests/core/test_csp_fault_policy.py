"""CSP fault policies: strict vs skip aggregation."""

import pytest

from repro.net import Host
from repro.sorcer import Exerter, ServiceContext, Signature, Strategy, Task
from repro.core import (
    CompositeSensorProvider,
    CompositionError,
    OP_GET_VALUE,
    SENSOR_DATA_ACCESSOR,
)

from .conftest import make_esp


def make_csp(net, fault_policy):
    csp = CompositeSensorProvider(Host(net, f"csp-{fault_policy}-host"),
                                  f"Composite-{fault_policy}",
                                  fault_policy=fault_policy,
                                  child_wait=1.0)
    csp.start()
    return csp


def query(env, net, csp, tag):
    exerter = Exerter(Host(net, f"fp-client-{tag}"))

    def proc():
        yield env.timeout(2.0)
        task = Task("q", Signature(SENSOR_DATA_ACCESSOR, OP_GET_VALUE,
                                   service_id=csp.service_id),
                    ServiceContext())
        result = yield env.process(exerter.exert(task))
        return result

    return env.run(until=env.process(proc()))


def test_invalid_policy_rejected(grid):
    env, net, world, lus = grid
    with pytest.raises(ValueError):
        CompositeSensorProvider(Host(net, "bad-host"), "Bad",
                                fault_policy="lenient")


def test_skip_policy_aggregates_survivors(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "S2", location=(100.0, 0.0))
    esp3 = make_esp(net, world, "S3", location=(200.0, 0.0))
    csp = make_csp(net, "skip")
    for esp in (esp1, esp2, esp3):
        csp.add_child(esp.service_id, esp.name)
    env.run(until=3.0)
    esp2.host.fail()
    env.run(until=60.0)  # lease lapses
    result = query(env, net, csp, "skip")
    assert result.is_done, result.exceptions
    truth = world.mean_over("temperature", [(0, 0), (200, 0)], env.now)
    assert abs(result.get_return_value() - truth) < 1.0


def test_strict_policy_fails_on_dead_child(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1")
    esp2 = make_esp(net, world, "S2")
    csp = make_csp(net, "strict")
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    env.run(until=3.0)
    esp2.host.fail()
    env.run(until=60.0)
    result = query(env, net, csp, "strict")
    assert result.is_failed


def test_skip_policy_rejects_expressions(grid):
    env, net, world, lus = grid
    csp = make_csp(net, "skip")
    csp.add_child("id-1", "S1")
    csp.add_child("id-2", "S2")
    with pytest.raises(CompositionError):
        csp.set_expression("(a + b)/2")


def test_skip_policy_all_dead_still_fails(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "S1")
    csp = make_csp(net, "skip")
    csp.add_child(esp.service_id, esp.name)
    env.run(until=3.0)
    esp.host.fail()
    env.run(until=60.0)
    result = query(env, net, csp, "alldead")
    assert result.is_failed
    assert "no component answered" in str(result.exceptions) \
        or "no provider" in str(result.exceptions)
