"""CSP fault policies: strict vs skip vs degraded aggregation."""

import pytest

from repro.net import Host
from repro.sorcer import Exerter, ServiceContext, Signature, Strategy, Task
from repro.core import (
    STALE_PATH,
    CompositeSensorProvider,
    CompositionError,
    OP_GET_READING,
    OP_GET_VALUE,
    SENSOR_DATA_ACCESSOR,
)

from .conftest import make_esp


def make_csp(net, fault_policy, tag=None, **kwargs):
    tag = tag if tag is not None else fault_policy
    csp = CompositeSensorProvider(Host(net, f"csp-{tag}-host"),
                                  f"Composite-{tag}",
                                  fault_policy=fault_policy,
                                  child_wait=1.0, **kwargs)
    csp.start()
    return csp


def query(env, net, csp, tag, selector=OP_GET_VALUE):
    exerter = Exerter(Host(net, f"fp-client-{tag}"))

    def proc():
        yield env.timeout(2.0)
        task = Task("q", Signature(SENSOR_DATA_ACCESSOR, selector,
                                   service_id=csp.service_id),
                    ServiceContext())
        result = yield env.process(exerter.exert(task))
        return result

    return env.run(until=env.process(proc()))


def test_invalid_policy_rejected(grid):
    env, net, world, lus = grid
    with pytest.raises(ValueError):
        CompositeSensorProvider(Host(net, "bad-host"), "Bad",
                                fault_policy="lenient")


def test_skip_policy_aggregates_survivors(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "S2", location=(100.0, 0.0))
    esp3 = make_esp(net, world, "S3", location=(200.0, 0.0))
    csp = make_csp(net, "skip")
    for esp in (esp1, esp2, esp3):
        csp.add_child(esp.service_id, esp.name)
    env.run(until=3.0)
    esp2.host.fail()
    env.run(until=60.0)  # lease lapses
    result = query(env, net, csp, "skip")
    assert result.is_done, result.exceptions
    truth = world.mean_over("temperature", [(0, 0), (200, 0)], env.now)
    assert abs(result.get_return_value() - truth) < 1.0


def test_strict_policy_fails_on_dead_child(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "S1")
    esp2 = make_esp(net, world, "S2")
    csp = make_csp(net, "strict")
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    env.run(until=3.0)
    esp2.host.fail()
    env.run(until=60.0)
    result = query(env, net, csp, "strict")
    assert result.is_failed


def test_skip_policy_rejects_expressions(grid):
    env, net, world, lus = grid
    csp = make_csp(net, "skip")
    csp.add_child("id-1", "S1")
    csp.add_child("id-2", "S2")
    with pytest.raises(CompositionError):
        csp.set_expression("(a + b)/2")


def test_degraded_policy_substitutes_stale_value(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "D1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "D2", location=(100.0, 0.0))
    csp = make_csp(net, "degraded", stale_max_age=60.0, child_timeout=1.0)
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    env.run(until=3.0)
    # First query populates the last-known-good cache for both children.
    warm = query(env, net, csp, "deg-warm")
    assert warm.is_done, warm.exceptions
    assert len(csp.last_known_good) == 2
    esp2.host.fail()
    result = query(env, net, csp, "deg-stale")
    assert result.is_done, result.exceptions
    assert csp.stale_substitutions == 1
    notes = result.context.get_value(STALE_PATH)
    assert [n["child"] for n in notes] == ["D2"]
    assert notes[0]["variable"] == "b"
    assert notes[0]["age"] <= 60.0


def test_degraded_policy_allows_expressions(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "E1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "E2", location=(50.0, 0.0))
    csp = make_csp(net, "degraded", tag="deg-expr", stale_max_age=60.0,
                   child_timeout=1.0)
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    csp.set_expression("(a + b)/2")  # legal: bindings are preserved
    env.run(until=3.0)
    warm = query(env, net, csp, "expr-warm")
    assert warm.is_done, warm.exceptions
    esp2.host.fail()
    result = query(env, net, csp, "expr-stale")
    # The expression still had both variables bound — b came from cache.
    assert result.is_done, result.exceptions
    assert result.context.get_value(STALE_PATH) is not None


def test_degraded_reading_flagged_stale(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "R1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "R2", location=(50.0, 0.0))
    csp = make_csp(net, "degraded", tag="deg-read", stale_max_age=60.0,
                   child_timeout=1.0)
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    env.run(until=3.0)
    fresh = query(env, net, csp, "read-fresh", selector=OP_GET_READING)
    assert fresh.get_return_value().quality == "good"
    esp2.host.fail()
    stale = query(env, net, csp, "read-stale", selector=OP_GET_READING)
    assert stale.is_done, stale.exceptions
    assert stale.get_return_value().quality == "stale"


def test_degraded_policy_respects_staleness_bound(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "B1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "B2", location=(50.0, 0.0))
    csp = make_csp(net, "degraded", tag="deg-aged", stale_max_age=5.0,
                   child_timeout=1.0)
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    csp.set_expression("(a + b)/2")
    env.run(until=3.0)
    warm = query(env, net, csp, "aged-warm")
    assert warm.is_done, warm.exceptions
    esp2.host.fail()
    env.run(until=env.now + 20.0)  # the cached value ages past the bound
    result = query(env, net, csp, "aged-stale")
    # Too old to substitute: with an expression attached the query fails
    # rather than serving arbitrarily ancient data.
    assert result.is_failed
    assert csp.stale_substitutions == 0


def test_degraded_without_cache_behaves_like_skip(grid):
    env, net, world, lus = grid
    esp1 = make_esp(net, world, "N1", location=(0.0, 0.0))
    esp2 = make_esp(net, world, "N2", location=(50.0, 0.0))
    csp = make_csp(net, "degraded", tag="deg-cold", stale_max_age=60.0,
                   child_timeout=1.0)
    csp.add_child(esp1.service_id, esp1.name)
    csp.add_child(esp2.service_id, esp2.name)
    env.run(until=3.0)
    esp2.host.fail()  # dies before any query ever cached its value
    result = query(env, net, csp, "cold")
    # No expression: the surviving child carries the aggregate alone.
    assert result.is_done, result.exceptions
    assert csp.stale_substitutions == 0


def test_skip_policy_all_dead_still_fails(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "S1")
    csp = make_csp(net, "skip")
    csp.add_child(esp.service_id, esp.name)
    env.run(until=3.0)
    esp.host.fail()
    env.run(until=60.0)
    result = query(env, net, csp, "alldead")
    assert result.is_failed
    assert "no component answered" in str(result.exceptions) \
        or "no provider" in str(result.exceptions)
