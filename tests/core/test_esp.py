"""Elementary sensor provider behaviour."""

import numpy as np
import pytest

from repro.net import Host
from repro.jini import SensorType, ServiceTemplate
from repro.sensors import FaultInjector, FaultMode, Reading, TemperatureProbe
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.core import (
    KIND_ELEMENTARY,
    OP_GET_HISTORY,
    OP_GET_INFO,
    OP_GET_READING,
    OP_GET_STATS,
    OP_GET_VALUE,
    SENSOR_DATA_ACCESSOR,
)

from .conftest import make_esp


def exert_op(env, net, esp_name, selector, settle=2.0, **args):
    exerter = Exerter(Host(net, f"req-{selector}-{esp_name}"))

    def proc():
        yield env.timeout(settle)
        ctx = ServiceContext()
        for key, value in args.items():
            ctx.put_in_value(f"arg/{key}", value)
        task = Task(f"t-{selector}",
                    Signature(SENSOR_DATA_ACCESSOR, selector,
                              provider_name=esp_name), ctx)
        result = yield env.process(exerter.exert(task))
        return result

    return env.run(until=env.process(proc()))


def test_esp_registers_as_sensor_accessor(grid):
    env, net, world, lus = grid
    make_esp(net, world, "T1")
    env.run(until=3.0)
    items = lus.lookup(ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), 10)
    assert len(items) == 1
    assert items[0].name() == "T1"


def test_esp_sensor_type_entry(grid):
    env, net, world, lus = grid
    make_esp(net, world, "T1")
    env.run(until=3.0)
    items = lus.lookup(ServiceTemplate(attributes=(
        SensorType(quantity="temperature", service_kind=KIND_ELEMENTARY),)), 10)
    assert len(items) == 1


def test_get_value_matches_ground_truth(grid):
    env, net, world, lus = grid
    make_esp(net, world, "T1", location=(4.0, 2.0))
    result = exert_op(env, net, "T1", OP_GET_VALUE)
    assert result.is_done
    value = result.get_return_value()
    truth = world.sample("temperature", (4.0, 2.0), env.now)
    assert abs(value - truth) < 1.0


def test_sampler_fills_buffer(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1", sample_interval=0.5)
    env.run(until=10.0)
    assert len(esp.buffer) >= 15
    assert esp.buffer.last().timestamp <= env.now


def test_get_reading_returns_reading(grid):
    env, net, world, lus = grid
    make_esp(net, world, "T1")
    result = exert_op(env, net, "T1", OP_GET_READING)
    reading = result.get_return_value()
    assert isinstance(reading, Reading)
    assert reading.unit == "celsius"


def test_get_info_shape(grid):
    env, net, world, lus = grid
    make_esp(net, world, "T1")
    result = exert_op(env, net, "T1", OP_GET_INFO)
    info = result.get_return_value()
    assert info["name"] == "T1"
    assert info["service_type"] == KIND_ELEMENTARY
    assert info["quantity"] == "temperature"
    assert info["contained_services"] == []
    assert info["expression"] is None


def test_get_history_respects_count(grid):
    env, net, world, lus = grid
    make_esp(net, world, "T1", sample_interval=0.5)
    result = exert_op(env, net, "T1", OP_GET_HISTORY, settle=10.0, count=5)
    history = result.get_return_value()
    assert len(history) == 5
    assert all(isinstance(r, Reading) for r in history)
    # Oldest-first ordering.
    times = [r.timestamp for r in history]
    assert times == sorted(times)


def test_get_stats(grid):
    env, net, world, lus = grid
    make_esp(net, world, "T1", sample_interval=0.5)
    result = exert_op(env, net, "T1", OP_GET_STATS, settle=10.0)
    stats = result.get_return_value()
    assert stats["count"] >= 15
    assert stats["min"] <= stats["mean"] <= stats["max"]


def test_probe_faults_counted_not_fatal(grid):
    env, net, world, lus = grid
    injector = FaultInjector(np.random.default_rng(0))
    injector.schedule(FaultMode.DROPOUT, start=2.0, end=6.0)
    probe = TemperatureProbe(env, "t1", world, (0, 0),
                             rng=np.random.default_rng(1),
                             fault_injector=injector)
    esp = make_esp(net, world, "T1", sample_interval=0.5, probe=probe)
    env.run(until=12.0)
    assert esp.sample_errors > 0
    # Healthy again after the window: recent readings exist.
    assert esp.buffer.last().timestamp > 6.0


def test_fresh_read_when_buffer_stale(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1", sample_interval=1.0)
    env.run(until=5.0)
    esp._sampling = False  # sampling stops; buffer goes stale
    env.run(until=30.0)
    result = exert_op(env, net, "T1", OP_GET_VALUE, settle=0.1)
    reading = esp.buffer.last()
    # A fresh probe read happened at query time, not a stale buffered one.
    assert reading.timestamp > 29.0
    assert result.is_done


def test_destroy_disconnects_probe(grid):
    env, net, world, lus = grid
    esp = make_esp(net, world, "T1")
    env.run(until=3.0)

    def proc():
        yield env.process(esp.destroy())

    env.process(proc())
    env.run(until=10.0)
    assert not esp.probe.connected
    assert lus.lookup(ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), 10) == []
