"""Open-loop engine: seeded determinism, substream isolation, burst
composition and drained accounting."""

import json

import pytest

from repro.load import DEFAULT_TENANTS, TenantSpec, build_load_lab
from repro.scenarios.paper_lab import SENSOR_NAMES


def run_summary(seed=2009, **kwargs):
    kwargs.setdefault("duration", 2.0)
    return build_load_lab(seed=seed, **kwargs).run()


def canonical(summary):
    return json.dumps(summary, sort_keys=True, separators=(",", ":"))


def test_same_seed_same_summary_bytes():
    assert canonical(run_summary()) == canonical(run_summary())


def test_different_seed_different_arrivals():
    first = run_summary(seed=1)
    second = run_summary(seed=2)
    assert first["total"]["offered"] != second["total"]["offered"] or \
        canonical(first) != canonical(second)


def test_summary_byte_identical_across_shuffle_seeds(monkeypatch):
    from repro.sim.core import SHUFFLE_SEED_ENV
    blobs = set()
    for shuffle_seed in (11, 23, 47):
        monkeypatch.setenv(SHUFFLE_SEED_ENV, str(shuffle_seed))
        blobs.add(canonical(run_summary(scale=1.5)))
    assert len(blobs) == 1, "load summary depends on tie-break order"


def test_tenant_substreams_are_isolated():
    """Changing one tenant's rate must not move another's arrivals."""
    base = (TenantSpec("a", rate=10.0, targets=SENSOR_NAMES),
            TenantSpec("b", rate=10.0, targets=SENSOR_NAMES))
    bumped = (TenantSpec("a", rate=30.0, targets=SENSOR_NAMES),
              TenantSpec("b", rate=10.0, targets=SENSOR_NAMES))
    first = run_summary(tenants=base)
    second = run_summary(tenants=bumped)
    assert second["tenants"]["b"]["offered"] == \
        first["tenants"]["b"]["offered"]
    assert second["tenants"]["a"]["offered"] > \
        first["tenants"]["a"]["offered"]


def test_drained_accounting_balances():
    summary = run_summary(scale=3.0)  # firmly past the knee
    total = summary["total"]
    assert summary["inflight"] == 0
    assert total["offered"] == (total["completed"] + total["rejected"]
                                + total["failed"])
    assert total["rejected"] > 0, "scale 3 should saturate the lab"
    assert total["failed"] == 0, "overload must shed typed, not fail"


def test_trace_driven_arrivals_replace_poisson():
    # Trace times are absolute sim times; the lab settles to t=6 first.
    trace = {spec.name: [] for spec in DEFAULT_TENANTS}
    trace["gold"] = [6.1, 6.2, 6.3, 11.0]  # 11.0 is past t=6+duration
    load_lab = build_load_lab(seed=7, duration=2.0, trace=trace)
    summary = load_lab.run()
    assert summary["tenants"]["gold"]["offered"] == 3
    assert summary["tenants"]["silver"]["offered"] == 0
    assert summary["tenants"]["bronze"]["offered"] == 0


def test_burst_multiplies_offered_rate():
    lab_quiet = build_load_lab(seed=5, duration=2.0)
    quiet = lab_quiet.run()

    lab_burst = build_load_lab(seed=5, duration=2.0)
    lab_burst.engine.burst("gold", factor=4.0,
                           until=lab_burst.env.now + 2.0)
    burst = lab_burst.run()
    assert burst["tenants"]["gold"]["offered"] > \
        2 * quiet["tenants"]["gold"]["offered"]
    # Substream isolation holds under bursts too.
    assert burst["tenants"]["bronze"]["offered"] == \
        quiet["tenants"]["bronze"]["offered"]


def test_overlapping_bursts_compose_by_worst_case():
    load_lab = build_load_lab(seed=5, duration=2.0)
    engine = load_lab.engine
    now = load_lab.env.now
    engine.burst("gold", factor=2.0, until=now + 10.0)
    engine.burst("gold", factor=6.0, until=now + 5.0)
    assert engine.burst_factor("gold") == 6.0
    assert engine._bursts["gold"] == (6.0, now + 10.0)


def test_burst_expires_on_the_clock():
    load_lab = build_load_lab(seed=5, duration=2.0)
    engine = load_lab.engine
    engine.burst("gold", factor=5.0, until=load_lab.env.now + 1.0)
    assert engine.burst_factor("gold") == 5.0
    load_lab.env.run(until=load_lab.env.now + 1.5)
    assert engine.burst_factor("gold") == 1.0


def test_engine_requires_tenants():
    from repro.load import OpenLoopEngine
    load_lab = build_load_lab(seed=5, duration=1.0)
    with pytest.raises(ValueError):
        OpenLoopEngine(load_lab.engine.host, ())
