"""EventMailbox and LeaseRenewalService."""

import pytest

from repro.net import Host, rpc_endpoint
from repro.jini import (
    EventMailbox,
    LeaseRenewalService,
    LookupService,
    Name,
    RemoteEvent,
    ServiceItem,
    ServiceTemplate,
    ALL_TRANSITIONS,
)


class Target:
    REMOTE_TYPES = ("RemoteEventListener",)

    def __init__(self):
        self.events = []

    def notify(self, event):
        self.events.append(event)


def make_mailbox(net):
    host = Host(net, "mailbox-host")
    box = EventMailbox(host)
    client_host = Host(net, "client")
    client = rpc_endpoint(client_host)
    return host, box, client_host, client


_FIRER_SEQ = [0]


def fire(env, net, listener_ref, n=3):
    """Deliver n events to the given listener ref from a helper host."""
    _FIRER_SEQ[0] += 1
    host = Host(net, f"firer-{_FIRER_SEQ[0]}")
    ep = rpc_endpoint(host)

    def proc():
        for i in range(n):
            yield ep.call(listener_ref, "notify",
                          RemoteEvent(source="src", event_id=1, sequence=i + 1))

    return env.process(proc())


def test_collect_stored_events(env, net):
    mh, box, ch, client = make_mailbox(net)

    def proc():
        reg = yield client.call(box.ref, "register", 600.0)
        yield fire(env, net, reg.listener, 3)
        yield env.timeout(1.0)
        events = yield client.call(box.ref, "collect", reg.registration_id, 100)
        return [e.sequence for e in events]

    p = env.process(proc())
    assert env.run(until=p) == [1, 2, 3]


def test_collect_respects_max_and_drains(env, net):
    mh, box, ch, client = make_mailbox(net)

    def proc():
        reg = yield client.call(box.ref, "register", 600.0)
        yield fire(env, net, reg.listener, 5)
        yield env.timeout(1.0)
        first = yield client.call(box.ref, "collect", reg.registration_id, 2)
        rest = yield client.call(box.ref, "collect", reg.registration_id, 100)
        return len(first), len(rest)

    p = env.process(proc())
    assert env.run(until=p) == (2, 3)


def test_enable_delivery_pushes_stored_and_future(env, net):
    mh, box, ch, client = make_mailbox(net)
    target = Target()
    target_ref = client.export(target, "target")

    def proc():
        reg = yield client.call(box.ref, "register", 600.0)
        yield fire(env, net, reg.listener, 2)
        yield env.timeout(0.5)
        yield client.call(box.ref, "enable_delivery", reg.registration_id, target_ref)
        yield env.timeout(0.5)
        backlog = len(target.events)
        yield fire(env, net, reg.listener, 1)
        yield env.timeout(0.5)
        return backlog, len(target.events)

    p = env.process(proc())
    assert env.run(until=p) == (2, 3)


def test_mailbox_lease_expiry_drops_registration(env, net):
    from repro.net import RemoteError
    mh, box, ch, client = make_mailbox(net)

    def proc():
        reg = yield client.call(box.ref, "register", 2.0)
        yield env.timeout(20.0)
        try:
            yield client.call(box.ref, "collect", reg.registration_id, 10)
        except RemoteError as exc:
            return type(exc.cause).__name__

    p = env.process(proc())
    assert env.run(until=p) == "KeyError"


def test_renewal_service_keeps_lus_registration_alive(env, net):
    """A service whose host sleeps delegates renewal and stays registered."""
    lus_host = Host(net, "lus-host")
    lus = LookupService(lus_host)
    lus.start()
    norm_host = Host(net, "norm-host")
    norm = LeaseRenewalService(norm_host)

    svc_host = Host(net, "svc-host")
    ep = rpc_endpoint(svc_host)

    class Svc:
        REMOTE_TYPES = ("SensorDataAccessor",)

    ref = ep.export(Svc(), "svc")
    item = ServiceItem(service_id=net.ids.uuid(), service=ref,
                       attributes=(Name("Sleepy"),))

    def proc():
        reg = yield ep.call(lus.ref, "register", item, 5.0)
        set_id = yield ep.call(norm.ref, "create_set", 600.0)
        yield ep.call(norm.ref, "add_lease", set_id, lus.ref, reg.lease,
                      5.0, 100.0)
        svc_host.fail()  # the service itself goes quiet
        yield env.timeout(60.0)
        found = lus.lookup(ServiceTemplate.by_name("Sleepy"), 10)
        return len(found)

    # Run driver on another host since svc host dies.
    driver_host = Host(net, "driver")
    driver_ep = rpc_endpoint(driver_host)

    def driver():
        reg = yield driver_ep.call(lus.ref, "register", item, 5.0)
        set_id = yield driver_ep.call(norm.ref, "create_set", 600.0)
        yield driver_ep.call(norm.ref, "add_lease", set_id, lus.ref, reg.lease,
                             5.0, 100.0)
        yield env.timeout(60.0)
        return len(lus.lookup(ServiceTemplate.by_name("Sleepy"), 10))

    p = env.process(driver())
    assert env.run(until=p) == 1


def test_renewal_stops_after_until(env, net):
    lus_host = Host(net, "lus-host")
    lus = LookupService(lus_host)
    lus.start()
    norm_host = Host(net, "norm-host")
    norm = LeaseRenewalService(norm_host)
    driver_host = Host(net, "driver")
    ep = rpc_endpoint(driver_host)

    class Svc:
        REMOTE_TYPES = ("SensorDataAccessor",)

    ref = ep.export(Svc(), "svc")
    item = ServiceItem(service_id=net.ids.uuid(), service=ref,
                       attributes=(Name("Shortlived"),))

    def driver():
        reg = yield ep.call(lus.ref, "register", item, 5.0)
        set_id = yield ep.call(norm.ref, "create_set", 600.0)
        yield ep.call(norm.ref, "add_lease", set_id, lus.ref, reg.lease,
                      5.0, until=20.0)
        yield env.timeout(15.0)
        alive_mid = len(lus.lookup(ServiceTemplate.by_name("Shortlived"), 10))
        yield env.timeout(30.0)  # renewals stopped at t=20; lease lapses
        alive_end = len(lus.lookup(ServiceTemplate.by_name("Shortlived"), 10))
        return alive_mid, alive_end

    p = env.process(driver())
    assert env.run(until=p) == (1, 0)


def test_remove_set_stops_renewals(env, net):
    lus_host = Host(net, "lus-host")
    lus = LookupService(lus_host)
    lus.start()
    norm_host = Host(net, "norm-host")
    norm = LeaseRenewalService(norm_host)
    driver_host = Host(net, "driver")
    ep = rpc_endpoint(driver_host)

    class Svc:
        REMOTE_TYPES = ("SensorDataAccessor",)

    ref = ep.export(Svc(), "svc")
    item = ServiceItem(service_id=net.ids.uuid(), service=ref,
                       attributes=(Name("Abandoned"),))

    def driver():
        reg = yield ep.call(lus.ref, "register", item, 5.0)
        set_id = yield ep.call(norm.ref, "create_set", 600.0)
        yield ep.call(norm.ref, "add_lease", set_id, lus.ref, reg.lease,
                      5.0, until=1000.0)
        yield env.timeout(10.0)
        yield ep.call(norm.ref, "remove_set", set_id)
        yield env.timeout(30.0)
        return len(lus.lookup(ServiceTemplate.by_name("Abandoned"), 10))

    p = env.process(driver())
    assert env.run(until=p) == 0
