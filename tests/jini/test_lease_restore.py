"""Lease-layer restore edges (DESIGN §14).

Two states are easy to lose across a checkpoint and both are exercised
here with the record/replay restore semantics (run A captures at T and
continues; run B rebuilds, verifies its digest against A's at T, then
continues — byte-identical endings required):

* a lease that has **lapsed but not yet been reaped** at T — the
  restored run's sweeper must reap exactly what the original would have;
* a renewal service **mid-backoff after failed renewals** at T — the
  restored run must retry on the original schedule and recover (or lose)
  the same leases.
"""

import numpy as np
import pytest

from repro.jini import (
    Landlord,
    LeaseRenewalService,
    LookupService,
    Name,
    ServiceItem,
    ServiceTemplate,
)
from repro.net import FixedLatency, Host, Network, rpc_endpoint
from repro.sim import Environment
from repro.snapshot.checkpoint import Checkpointer
from repro.snapshot.registry import register_participant


# ---------------------------------------------------------------------------
# Expired-but-unreaped leases


def _landlord_run(checkpoint_at, on_capture=None):
    """Sweeper every 2s; 'lapser' expires at t=3 so the capture at t=3.5
    sees it lapsed but unreaped (the reap lands at t=4)."""
    env = Environment()
    expired = []
    landlord = Landlord(env, max_duration=60.0, on_expire=expired.append)
    register_participant(env, "jini.landlord", landlord.checkpoint_state)
    checkpointer = Checkpointer(env, checkpoint_at, on_capture=on_capture)
    env.process(landlord.sweeper(2.0), name="sweeper")

    def client():
        landlord.grant("keeper", 30.0)
        lease = landlord.grant("lapser", 3.0)
        yield env.timeout(5.0)
        landlord.renew(landlord.grant("late", 20.0).lease_id, 25.0)
        assert lease.is_expired(env.now)

    env.process(client(), name="client")
    env.run(until=10.0)
    return checkpointer, expired, landlord.checkpoint_state()


def test_capture_includes_lapsed_but_unreaped_lease():
    checkpointer, expired, _ = _landlord_run([3.5])
    (_, at, state, _) = checkpointer.captures[0]
    assert at == 3.5
    leases = state["jini.landlord"]["leases"]
    lapsed = [lease for lease in leases if lease["expiration"] <= at]
    assert [lease["resource"] for lease in lapsed] == ["'lapser'"]
    assert expired == ["lapser"]  # ...and the sweeper reaped it later


def test_restored_run_reaps_identically():
    original, expired_a, final_a = _landlord_run([3.5])
    (_, _, _, want_digest) = original.captures[0]

    def verify(index, at, state, digest):
        assert digest == want_digest, "replayed lease state diverged at T"

    replay, expired_b, final_b = _landlord_run([3.5], on_capture=verify)
    assert replay.captures[0][3] == want_digest
    assert expired_b == expired_a == ["lapser"]
    assert final_b == final_a
    assert final_a["next_id"] == 4  # grants continued past the checkpoint


# ---------------------------------------------------------------------------
# In-flight renewal backoff


def _renewal_run(checkpoint_at, on_capture=None):
    """Cut the norm<->lus link at t=6 and heal at t=11.5.

    The 16s lease comes due at t=8 (remaining <= half its duration), the
    renewal RPC is swallowed by the cut and times out at t=11, so a
    capture at t=11.05 sees the managed lease mid-backoff (failures > 0,
    next_attempt in the future); the healed continuation must retry on
    schedule and recover the lease identically."""
    env = Environment()
    net = Network(env, rng=np.random.default_rng(7),
                  latency=FixedLatency(0.001))
    checkpointer = Checkpointer(env, checkpoint_at, on_capture=on_capture)
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    norm = LeaseRenewalService(Host(net, "norm-host"))
    driver_host = Host(net, "driver")
    endpoint = rpc_endpoint(driver_host)

    class Svc:
        REMOTE_TYPES = ("SensorDataAccessor",)

    ref = endpoint.export(Svc(), "svc")
    item = ServiceItem(service_id=net.ids.uuid(), service=ref,
                       attributes=(Name("Napper"),))

    def driver():
        reg = yield endpoint.call(lus.ref, "register", item, 16.0)
        set_id = yield endpoint.call(norm.ref, "create_set", 600.0)
        yield endpoint.call(norm.ref, "add_lease", set_id, lus.ref,
                            reg.lease, 16.0, 200.0)
        yield env.timeout(6.0)
        net.cut_link("norm-host", "lus-host")
        yield env.timeout(5.5)
        net.heal_link("norm-host", "lus-host")

    env.process(driver(), name="driver")
    env.run(until=25.0)
    alive = len(lus.lookup(ServiceTemplate.by_name("Napper"), 10))
    return checkpointer, alive, norm.checkpoint_state()


def test_capture_includes_inflight_backoff():
    checkpointer, alive, _ = _renewal_run([11.05])
    (_, at, state, _) = checkpointer.captures[0]
    norm_key = "jini.norm.norm-host"
    managed = [entry for entries in state[norm_key]["sets"].values()
               for entry in entries]
    assert len(managed) == 1
    assert managed[0]["failures"] >= 1          # a renewal already failed
    assert managed[0]["next_attempt"] > at      # and the retry is pending
    assert managed[0]["alive"] is True
    assert alive == 1  # the healed continuation recovered the lease


def test_restored_renewal_sweeps_identically():
    original, alive_a, final_a = _renewal_run([11.05])
    (_, _, _, want_digest) = original.captures[0]
    failures = []

    def verify(index, at, state, digest):
        if digest != want_digest:
            failures.append(at)

    replay, alive_b, final_b = _renewal_run([11.05], on_capture=verify)
    assert not failures, "replayed renewal state diverged at T"
    assert alive_b == alive_a == 1
    assert final_b == final_a


def test_divergent_replay_is_detected():
    original, _, _ = _landlord_run([3.5])
    (_, _, _, want_digest) = original.captures[0]
    # Capture one tick later: the digest must differ (the sweeper reaped
    # in between), proving the verification is not vacuous.
    later, _, _ = _landlord_run([4.5])
    assert later.captures[0][3] != want_digest


@pytest.mark.parametrize("at", [3.5, 4.5])
def test_checkpointer_records_schedule(at):
    checkpointer, _, _ = _landlord_run([at])
    assert checkpointer.schedule == [at]
    assert [capture[1] for capture in checkpointer.captures] == [at]
