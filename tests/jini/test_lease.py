"""Landlord/lease semantics."""

import pytest

from repro.sim import Environment
from repro.jini import Landlord, LeaseDeniedError, UnknownLeaseError


def test_grant_sets_expiration():
    env = Environment()
    landlord = Landlord(env, max_duration=100.0)
    lease = landlord.grant("res", 30.0)
    assert lease.expiration == 30.0
    assert lease.duration == 30.0
    assert landlord.is_active(lease.lease_id)


def test_duration_clamped_to_max():
    env = Environment()
    landlord = Landlord(env, max_duration=10.0)
    lease = landlord.grant("res", 9999.0)
    assert lease.duration == 10.0


def test_nonpositive_duration_denied():
    env = Environment()
    landlord = Landlord(env)
    with pytest.raises(LeaseDeniedError):
        landlord.grant("res", 0.0)


def test_renew_extends():
    env = Environment()
    landlord = Landlord(env)

    def proc():
        lease = landlord.grant("res", 10.0)
        yield env.timeout(5.0)
        renewed = landlord.renew(lease.lease_id, 10.0)
        return renewed.expiration

    p = env.process(proc())
    assert env.run(until=p) == 15.0


def test_renew_expired_raises():
    env = Environment()
    landlord = Landlord(env)

    def proc():
        lease = landlord.grant("res", 1.0)
        yield env.timeout(2.0)
        try:
            landlord.renew(lease.lease_id, 10.0)
        except UnknownLeaseError:
            return "gone"

    p = env.process(proc())
    assert env.run(until=p) == "gone"


def test_renew_unknown_raises():
    env = Environment()
    landlord = Landlord(env)
    with pytest.raises(UnknownLeaseError):
        landlord.renew(999, 10.0)


def test_cancel_returns_resource():
    env = Environment()
    landlord = Landlord(env)
    lease = landlord.grant("the-resource", 10.0)
    assert landlord.cancel(lease.lease_id) == "the-resource"
    assert len(landlord) == 0


def test_cancel_does_not_fire_on_expire():
    env = Environment()
    expired = []
    landlord = Landlord(env, on_expire=expired.append)
    lease = landlord.grant("res", 10.0)
    landlord.cancel(lease.lease_id)
    assert expired == []


def test_reap_fires_on_expire():
    env = Environment()
    expired = []
    landlord = Landlord(env, on_expire=expired.append)

    def proc():
        landlord.grant("a", 1.0)
        landlord.grant("b", 5.0)
        yield env.timeout(2.0)
        reaped = landlord.reap()
        return reaped

    p = env.process(proc())
    assert env.run(until=p) == ["a"]
    assert expired == ["a"]
    assert len(landlord) == 1


def test_sweeper_process_reaps_periodically():
    env = Environment()
    expired = []
    landlord = Landlord(env, on_expire=expired.append)
    landlord.grant("x", 3.0)
    env.process(landlord.sweeper(1.0))
    env.run(until=10.0)
    assert expired == ["x"]
    assert len(landlord) == 0


def test_lease_remaining_and_is_expired():
    env = Environment()
    landlord = Landlord(env)
    lease = landlord.grant("r", 10.0)
    assert lease.remaining(0.0) == 10.0
    assert lease.remaining(4.0) == 6.0
    assert lease.remaining(11.0) == 0.0
    assert not lease.is_expired(9.9)
    assert lease.is_expired(10.0)
