"""LookupService: registration, template lookup, events, lease expiry."""

import pytest

from repro.net import Host, rpc_endpoint
from repro.jini import (
    LookupService,
    Name,
    SensorType,
    ServiceItem,
    ServiceTemplate,
    TRANSITION_MATCH_NOMATCH,
    TRANSITION_NOMATCH_MATCH,
    ALL_TRANSITIONS,
)


class DummyService:
    REMOTE_TYPES = ("SensorDataAccessor", "Servicer")

    def getValue(self):
        return 21.0


class Listener:
    REMOTE_TYPES = ("RemoteEventListener",)

    def __init__(self):
        self.events = []

    def notify(self, event):
        self.events.append(event)


def make_lus(net, host_name="lus-host"):
    host = Host(net, host_name)
    lus = LookupService(host)
    lus.start()
    return host, lus


def register_dummy(net, lus, name, host_name, types_obj=None):
    """Register a dummy service directly (no join manager)."""
    host = Host(net, host_name)
    ep = rpc_endpoint(host)
    obj = types_obj if types_obj is not None else DummyService()
    ref = ep.export(obj, f"svc:{host_name}")
    sid = net.ids.uuid()
    item = ServiceItem(service_id=sid, service=ref,
                       attributes=(Name(name), SensorType(quantity="temperature")))
    return host, ep, item


def test_register_and_lookup_by_name(env, net):
    lus_host, lus = make_lus(net)
    host, ep, item = register_dummy(net, lus, "Neem-Sensor", "h1")

    def proc():
        reg = yield ep.call(lus.ref, "register", item, 30.0)
        found = yield ep.call(lus.ref, "lookup",
                              ServiceTemplate.by_name("Neem-Sensor"), 10)
        return reg, found

    p = env.process(proc())
    reg, found = env.run(until=p)
    assert reg.service_id == item.service_id
    assert len(found) == 1
    assert found[0].service_id == item.service_id


def test_lookup_by_type(env, net):
    lus_host, lus = make_lus(net)
    host, ep, item = register_dummy(net, lus, "S1", "h1")

    def proc():
        yield ep.call(lus.ref, "register", item, 30.0)
        by_type = yield ep.call(lus.ref, "lookup",
                                ServiceTemplate.by_type("SensorDataAccessor"), 10)
        missing = yield ep.call(lus.ref, "lookup",
                                ServiceTemplate.by_type("NoSuchType"), 10)
        return by_type, missing

    p = env.process(proc())
    by_type, missing = env.run(until=p)
    assert len(by_type) == 1 and missing == []


def test_lookup_by_attribute_template(env, net):
    lus_host, lus = make_lus(net)
    h1, ep1, item1 = register_dummy(net, lus, "T1", "h1")
    h2, ep2, item2 = register_dummy(net, lus, "T2", "h2")
    item2 = item2.with_attributes((Name("T2"), SensorType(quantity="humidity")))

    def proc():
        yield ep1.call(lus.ref, "register", item1, 30.0)
        yield ep1.call(lus.ref, "register", item2, 30.0)
        temps = yield ep1.call(
            lus.ref, "lookup",
            ServiceTemplate(attributes=(SensorType(quantity="temperature"),)), 10)
        return [i.name() for i in temps]

    p = env.process(proc())
    assert env.run(until=p) == ["T1"]


def test_lookup_respects_max_matches(env, net):
    lus_host, lus = make_lus(net)
    items = []
    ep = None
    for i in range(5):
        h, e, item = register_dummy(net, lus, f"S{i}", f"h{i}")
        items.append(item)
        ep = e

    def proc():
        for item in items:
            yield ep.call(lus.ref, "register", item, 30.0)
        found = yield ep.call(lus.ref, "lookup",
                              ServiceTemplate.by_type("SensorDataAccessor"), 3)
        return len(found)

    p = env.process(proc())
    assert env.run(until=p) == 3


def test_lookup_by_service_id(env, net):
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "S", "h1")

    def proc():
        yield ep.call(lus.ref, "register", item, 30.0)
        found = yield ep.call(lus.ref, "lookup",
                              ServiceTemplate(service_id=item.service_id), 10)
        return found

    p = env.process(proc())
    assert len(env.run(until=p)) == 1


def test_lease_expiry_deregisters(env, net):
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "Ephemeral", "h1")

    def proc():
        yield ep.call(lus.ref, "register", item, 2.0)
        found1 = yield ep.call(lus.ref, "lookup",
                               ServiceTemplate.by_name("Ephemeral"), 10)
        yield env.timeout(5.0)  # no renewal
        found2 = yield ep.call(lus.ref, "lookup",
                               ServiceTemplate.by_name("Ephemeral"), 10)
        return len(found1), len(found2)

    p = env.process(proc())
    assert env.run(until=p) == (1, 0)


def test_cancel_lease_deregisters_immediately(env, net):
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "S", "h1")

    def proc():
        reg = yield ep.call(lus.ref, "register", item, 30.0)
        yield ep.call(lus.ref, "cancel_lease", reg.lease.lease_id)
        found = yield ep.call(lus.ref, "lookup", ServiceTemplate.by_name("S"), 10)
        return len(found)

    p = env.process(proc())
    assert env.run(until=p) == 0


def test_reregistration_replaces_attributes(env, net):
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "Old-Name", "h1")

    def proc():
        yield ep.call(lus.ref, "register", item, 30.0)
        updated = item.with_attributes((Name("New-Name"),))
        yield ep.call(lus.ref, "register", updated, 30.0)
        old = yield ep.call(lus.ref, "lookup", ServiceTemplate.by_name("Old-Name"), 10)
        new = yield ep.call(lus.ref, "lookup", ServiceTemplate.by_name("New-Name"), 10)
        all_items = yield ep.call(lus.ref, "lookup_all")
        return len(old), len(new), len(all_items)

    p = env.process(proc())
    assert env.run(until=p) == (0, 1, 1)


def test_event_on_arrival(env, net):
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "S", "h1")
    listener = Listener()
    listener_ref = ep.export(listener, "listener")

    def proc():
        yield ep.call(lus.ref, "notify",
                      ServiceTemplate.by_type("SensorDataAccessor"),
                      ALL_TRANSITIONS, listener_ref, "hb", 60.0)
        yield ep.call(lus.ref, "register", item, 30.0)
        yield env.timeout(1.0)
        return listener.events

    p = env.process(proc())
    events = env.run(until=p)
    assert len(events) == 1
    assert events[0].transition == TRANSITION_NOMATCH_MATCH
    assert events[0].service_id == item.service_id
    assert events[0].handback == "hb"
    assert events[0].sequence == 1


def test_event_on_departure_via_expiry(env, net):
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "S", "h1")
    listener = Listener()
    listener_ref = ep.export(listener, "listener")

    def proc():
        yield ep.call(lus.ref, "register", item, 2.0)
        yield ep.call(lus.ref, "notify",
                      ServiceTemplate.by_type("SensorDataAccessor"),
                      TRANSITION_MATCH_NOMATCH, listener_ref, None, 60.0)
        yield env.timeout(5.0)
        return listener.events

    p = env.process(proc())
    events = env.run(until=p)
    assert len(events) == 1
    assert events[0].transition == TRANSITION_MATCH_NOMATCH
    assert events[0].item is None


def test_event_transition_mask_filters(env, net):
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "S", "h1")
    listener = Listener()
    listener_ref = ep.export(listener, "listener")

    def proc():
        # Only interested in departures; arrival must not be delivered.
        yield ep.call(lus.ref, "notify",
                      ServiceTemplate.by_type("SensorDataAccessor"),
                      TRANSITION_MATCH_NOMATCH, listener_ref, None, 60.0)
        reg = yield ep.call(lus.ref, "register", item, 30.0)
        yield env.timeout(1.0)
        arrivals = len(listener.events)
        yield ep.call(lus.ref, "cancel_lease", reg.lease.lease_id)
        yield env.timeout(1.0)
        return arrivals, len(listener.events)

    p = env.process(proc())
    assert env.run(until=p) == (0, 1)


def test_event_sequence_increments(env, net):
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "S", "h1")
    listener = Listener()
    listener_ref = ep.export(listener, "listener")

    def proc():
        yield ep.call(lus.ref, "notify",
                      ServiceTemplate.by_type("SensorDataAccessor"),
                      ALL_TRANSITIONS, listener_ref, None, 60.0)
        yield ep.call(lus.ref, "register", item, 30.0)
        yield ep.call(lus.ref, "register", item, 30.0)  # MATCH_MATCH
        yield env.timeout(1.0)
        return [e.sequence for e in listener.events]

    p = env.process(proc())
    assert env.run(until=p) == [1, 2]


def test_lus_crash_wipes_registry(env, net):
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "S", "h1")

    def proc():
        yield ep.call(lus.ref, "register", item, 300.0)
        lus_host.fail()
        lus_host.recover()
        found = yield ep.call(lus.ref, "lookup", ServiceTemplate.by_name("S"), 10)
        return len(found)

    p = env.process(proc())
    assert env.run(until=p) == 0


def test_register_without_id_rejected(env, net):
    from repro.net import RemoteError
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "S", "h1")
    bad = ServiceItem(service_id="", service=item.service, attributes=item.attributes)

    def proc():
        try:
            yield ep.call(lus.ref, "register", bad, 30.0)
        except RemoteError as exc:
            return type(exc.cause).__name__

    p = env.process(proc())
    assert env.run(until=p) == "ValueError"


def test_notify_lease_expiry_stops_events(env, net):
    """An event registration whose lease lapses is reaped: no more events."""
    lus_host, lus = make_lus(net)
    h, ep, item = register_dummy(net, lus, "S", "h1")
    listener = Listener()
    listener_ref = ep.export(listener, "listener")

    def proc():
        # Short-lived interest.
        yield ep.call(lus.ref, "notify",
                      ServiceTemplate.by_type("SensorDataAccessor"),
                      ALL_TRANSITIONS, listener_ref, None, 2.0)
        yield env.timeout(5.0)  # interest lease lapses
        yield ep.call(lus.ref, "register", item, 30.0)
        yield env.timeout(2.0)
        return len(listener.events)

    p = env.process(proc())
    assert env.run(until=p) == 0
