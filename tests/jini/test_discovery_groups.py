"""Discovery group scoping — administrative domains on one LAN."""

import pytest

from repro.net import Host
from repro.jini import JoinManager, LookupService, Name, ServiceItem, \
    ServiceTemplate
from repro.jini.discovery import LookupDiscovery


class Dummy:
    REMOTE_TYPES = ("SensorDataAccessor",)


def make_lus(net, host_name, groups):
    host = Host(net, host_name)
    lus = LookupService(host, groups=groups, announce_interval=3.0)
    lus.start()
    return lus


def make_client(net, host_name, groups):
    host = Host(net, host_name)
    disc = LookupDiscovery(host, groups=groups)
    disc.start()
    return host, disc


def test_client_only_discovers_matching_groups(env, net):
    lab = make_lus(net, "lab-lus", groups=("lab",))
    prod = make_lus(net, "prod-lus", groups=("prod",))
    _, lab_client = make_client(net, "lab-client", groups=("lab",))
    _, prod_client = make_client(net, "prod-client", groups=("prod",))
    env.run(until=10.0)
    assert set(lab_client.registrars) == {lab.lus_id}
    assert set(prod_client.registrars) == {prod.lus_id}


def test_multi_group_lus_serves_both(env, net):
    shared = make_lus(net, "shared-lus", groups=("lab", "prod"))
    _, lab_client = make_client(net, "lab-client", groups=("lab",))
    _, prod_client = make_client(net, "prod-client", groups=("prod",))
    env.run(until=10.0)
    assert shared.lus_id in lab_client.registrars
    assert shared.lus_id in prod_client.registrars


def test_wildcard_client_sees_everything(env, net):
    lab = make_lus(net, "lab-lus", groups=("lab",))
    prod = make_lus(net, "prod-lus", groups=("prod",))
    _, admin = make_client(net, "admin-client", groups=("*",))
    env.run(until=10.0)
    assert set(admin.registrars) == {lab.lus_id, prod.lus_id}


def test_locator_bypasses_groups(env, net):
    prod = make_lus(net, "prod-lus", groups=("prod",))
    host, lab_client = make_client(net, "lab-client", groups=("lab",))
    env.run(until=10.0)
    assert lab_client.registrars == {}
    lab_client.add_locator("prod-lus")
    env.run(until=11.0)
    assert prod.lus_id in lab_client.registrars


def test_services_in_separate_groups_are_isolated(env, net):
    """A lab service never shows up in the prod registry."""
    from repro.net import rpc_endpoint
    lab = make_lus(net, "lab-lus", groups=("lab",))
    prod = make_lus(net, "prod-lus", groups=("prod",))
    svc_host = Host(net, "svc-host")
    # Install a lab-scoped manager as the host's shared discovery, so the
    # join manager below inherits the scoping.
    scoped = LookupDiscovery(svc_host, groups=("lab",))
    scoped.start()
    svc_host._lookup_discovery = scoped
    ep = rpc_endpoint(svc_host)
    ref = ep.export(Dummy(), "svc")
    item = ServiceItem(service_id=net.ids.uuid(), service=ref,
                       attributes=(Name("Lab-Sensor"),))
    jm = JoinManager(svc_host, item)
    jm.start()
    env.run(until=15.0)
    assert len(lab.lookup(ServiceTemplate.by_name("Lab-Sensor"), 5)) == 1
    assert len(prod.lookup(ServiceTemplate.by_name("Lab-Sensor"), 5)) == 0
