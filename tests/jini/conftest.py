"""Shared fixtures for jini-layer tests."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    """A quiet, fixed-latency network for deterministic assertions."""
    return Network(env, rng=np.random.default_rng(7), latency=FixedLatency(0.001))


def make_host(net, name):
    return Host(net, name)
