"""Entry matching semantics."""

from repro.jini import (
    Comment,
    Location,
    Name,
    SensorType,
    attributes_match,
    entry_matches,
)


def test_exact_match():
    assert entry_matches(Name("x"), Name("x"))


def test_mismatch():
    assert not entry_matches(Name("x"), Name("y"))


def test_none_is_wildcard():
    assert entry_matches(Name(None), Name("anything"))


def test_cross_class_never_matches():
    assert not entry_matches(Name("x"), Comment("x"))


def test_partial_wildcard_location():
    template = Location(building="CP TTU")
    assert entry_matches(template, Location(floor="3", room="310", building="CP TTU"))
    assert not entry_matches(template, Location(floor="3", room="310", building="Other"))


def test_sensor_type_quantity_filter():
    template = SensorType(quantity="temperature")
    assert entry_matches(template, SensorType(
        quantity="temperature", unit="celsius", technology="sunspot",
        service_kind="ELEMENTARY"))
    assert not entry_matches(template, SensorType(quantity="humidity"))


def test_attributes_match_requires_all_templates():
    attrs = [Name("Neem-Sensor"), SensorType(quantity="temperature")]
    assert attributes_match([Name("Neem-Sensor")], attrs)
    assert attributes_match(
        [Name("Neem-Sensor"), SensorType(quantity="temperature")], attrs)
    assert not attributes_match(
        [Name("Neem-Sensor"), SensorType(quantity="humidity")], attrs)


def test_attributes_match_empty_templates_always_true():
    assert attributes_match([], [Name("x")])
    assert attributes_match([], [])


def test_entries_hashable_and_frozen():
    assert hash(Name("a")) == hash(Name("a"))
    s = {Name("a"), Name("a"), Name("b")}
    assert len(s) == 2
