"""Discovery protocols and join manager behaviour (plug-and-play, E-PNP)."""

import pytest

from repro.net import Host, rpc_endpoint
from repro.jini import (
    JoinManager,
    LookupService,
    Name,
    ServiceItem,
    ServiceTemplate,
    lookup_discovery,
)


class DummyService:
    REMOTE_TYPES = ("SensorDataAccessor",)

    def getValue(self):
        return 1.0


def make_lus(net, host_name="lus-host", **kwargs):
    host = Host(net, host_name)
    lus = LookupService(host, **kwargs)
    lus.start()
    return host, lus


def make_service(net, host_name, name="Svc"):
    host = Host(net, host_name)
    ep = rpc_endpoint(host)
    ref = ep.export(DummyService(), f"svc:{host_name}")
    item = ServiceItem(service_id=net.ids.uuid(), service=ref,
                       attributes=(Name(name),))
    return host, ep, item


def test_client_discovers_lus_via_probe(env, net):
    lus_host, lus = make_lus(net)
    client_host = Host(net, "client")
    disc = lookup_discovery(client_host)
    env.run(until=2.0)
    assert lus.lus_id in disc.registrars


def test_client_discovers_lus_via_announcement(env, net):
    # Client starts first; LUS arrives later and multicasts announcements.
    client_host = Host(net, "client")
    disc = lookup_discovery(client_host)
    env.run(until=5.0)  # client probes find nothing
    assert disc.registrars == {}
    lus_host, lus = make_lus(net, announce_interval=3.0)
    env.run(until=10.0)
    assert lus.lus_id in disc.registrars


def test_discovered_callback_fires_once(env, net):
    lus_host, lus = make_lus(net)
    client_host = Host(net, "client")
    disc = lookup_discovery(client_host)
    seen = []
    disc.on_discovered(lambda lus_id, ref: seen.append(lus_id))
    env.run(until=30.0)  # multiple probes + announcements
    assert seen == [lus.lus_id]


def test_discard_then_rediscover_from_announcement(env, net):
    lus_host, lus = make_lus(net, announce_interval=2.0)
    client_host = Host(net, "client")
    disc = lookup_discovery(client_host)
    env.run(until=2.0)
    disc.discard(lus.lus_id)
    assert disc.registrars == {}
    env.run(until=10.0)
    assert lus.lus_id in disc.registrars


def test_silent_lus_reaped_after_timeout(env, net):
    lus_host, lus = make_lus(net, announce_interval=2.0)
    client_host = Host(net, "client")
    disc = lookup_discovery(client_host)
    env.run(until=2.0)
    assert lus.lus_id in disc.registrars
    lus_host.fail()  # announcements stop
    env.run(until=60.0)
    assert disc.registrars == {}


def test_unicast_locator_discovery(env, net):
    # Partitioned multicast club: simulate by a client in no group — here we
    # just verify the direct path works without waiting for probes.
    lus_host, lus = make_lus(net)
    client_host = Host(net, "client")
    disc = lookup_discovery(client_host)
    disc.add_locator("lus-host")
    env.run(until=0.5)
    assert lus.lus_id in disc.registrars


def test_join_manager_registers_service(env, net):
    lus_host, lus = make_lus(net)
    svc_host, ep, item = make_service(net, "svc-host", "Neem-Sensor")
    jm = JoinManager(svc_host, item, lease_duration=30.0)
    jm.start()
    env.run(until=5.0)
    assert jm.registered_with == [lus.lus_id]
    assert len(lus.lookup(ServiceTemplate.by_name("Neem-Sensor"), 10)) == 1


def test_join_manager_renews_lease(env, net):
    lus_host, lus = make_lus(net)
    svc_host, ep, item = make_service(net, "svc-host")
    jm = JoinManager(svc_host, item, lease_duration=4.0, maintenance_interval=1.0)
    jm.start()
    env.run(until=60.0)  # many lease periods
    assert len(lus.lookup(ServiceTemplate.by_name("Svc"), 10)) == 1


def test_service_disappears_when_host_dies(env, net):
    lus_host, lus = make_lus(net)
    svc_host, ep, item = make_service(net, "svc-host")
    jm = JoinManager(svc_host, item, lease_duration=4.0, maintenance_interval=1.0)
    jm.start()
    env.run(until=5.0)
    assert len(lus.lookup_all()) == 1
    svc_host.fail()  # renewals stop; lease lapses
    env.run(until=20.0)
    assert len(lus.lookup_all()) == 0


def test_join_manager_reregisters_after_lus_restart(env, net):
    lus_host, lus = make_lus(net, announce_interval=2.0)
    svc_host, ep, item = make_service(net, "svc-host")
    jm = JoinManager(svc_host, item, lease_duration=10.0, maintenance_interval=1.0)
    jm.start()
    env.run(until=5.0)
    lus_host.fail()   # registry wiped
    env.run(until=8.0)
    lus_host.recover()
    env.run(until=30.0)
    assert len(lus.lookup(ServiceTemplate.by_name("Svc"), 10)) == 1


def test_join_manager_terminate_cancels_registration(env, net):
    lus_host, lus = make_lus(net)
    svc_host, ep, item = make_service(net, "svc-host")
    jm = JoinManager(svc_host, item)
    jm.start()
    env.run(until=5.0)
    assert len(lus.lookup_all()) == 1

    def stop():
        yield env.process(jm.terminate())

    env.process(stop())
    env.run(until=10.0)
    assert len(lus.lookup_all()) == 0


def test_join_manager_update_attributes(env, net):
    lus_host, lus = make_lus(net)
    svc_host, ep, item = make_service(net, "svc-host", "Before")
    jm = JoinManager(svc_host, item, maintenance_interval=1.0)
    jm.start()
    env.run(until=5.0)
    jm.update_attributes((Name("After"),))
    env.run(until=10.0)
    assert len(lus.lookup(ServiceTemplate.by_name("Before"), 10)) == 0
    assert len(lus.lookup(ServiceTemplate.by_name("After"), 10)) == 1


def test_join_manager_registers_with_multiple_lus(env, net):
    lus1_host, lus1 = make_lus(net, "lus-1")
    lus2_host, lus2 = make_lus(net, "lus-2")
    svc_host, ep, item = make_service(net, "svc-host")
    jm = JoinManager(svc_host, item)
    jm.start()
    env.run(until=5.0)
    assert sorted(jm.registered_with) == sorted([lus1.lus_id, lus2.lus_id])
    assert len(lus1.lookup_all()) == 1
    assert len(lus2.lookup_all()) == 1


def test_join_manager_requires_service_id(env, net):
    svc_host, ep, item = make_service(net, "svc-host")
    bad = ServiceItem(service_id="", service=item.service)
    with pytest.raises(ValueError):
        JoinManager(svc_host, bad)


def test_late_lus_gets_existing_services(env, net):
    svc_host, ep, item = make_service(net, "svc-host")
    jm = JoinManager(svc_host, item, maintenance_interval=1.0)
    jm.start()
    env.run(until=5.0)
    lus_host, lus = make_lus(net, announce_interval=2.0)
    env.run(until=15.0)
    assert len(lus.lookup_all()) == 1
