"""Transaction manager: 2PC semantics."""

import pytest

from repro.net import Host, RemoteError, rpc_endpoint
from repro.jini import TransactionManager, TxnState, Vote
from repro.jini.txn import CannotCommitError, UnknownTransactionError
from repro.sim import Interrupt


class Participant:
    """A well-behaved 2PC participant recording its lifecycle."""

    REMOTE_TYPES = ("TransactionParticipant",)

    def __init__(self, vote=Vote.PREPARED):
        self.vote = vote
        self.log = []

    def prepare(self, txn_id):
        self.log.append(("prepare", txn_id))
        return self.vote

    def commit(self, txn_id):
        self.log.append(("commit", txn_id))

    def abort(self, txn_id):
        self.log.append(("abort", txn_id))


def setup_tm(net):
    host = Host(net, "txn-host")
    tm = TransactionManager(host)
    client_host = Host(net, "client")
    client = rpc_endpoint(client_host)
    return host, tm, client_host, client


def export_participant(net, name, vote=Vote.PREPARED):
    host = Host(net, name)
    ep = rpc_endpoint(host)
    p = Participant(vote)
    ref = ep.export(p, f"part:{name}")
    return host, p, ref


def test_create_join_commit(env, net):
    th, tm, ch, client = setup_tm(net)
    ph, participant, pref = export_participant(net, "p1")

    def proc():
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "join", created.txn_id, pref)
        state = yield client.call(tm.ref, "commit", created.txn_id)
        return created.txn_id, state

    p = env.process(proc())
    txn_id, state = env.run(until=p)
    assert state == TxnState.COMMITTED
    assert participant.log == [("prepare", txn_id), ("commit", txn_id)]


def test_commit_with_abort_vote_aborts_all(env, net):
    th, tm, ch, client = setup_tm(net)
    h1, p1, r1 = export_participant(net, "p1", Vote.PREPARED)
    h2, p2, r2 = export_participant(net, "p2", Vote.ABORTED)

    def proc():
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "join", created.txn_id, r1)
        yield client.call(tm.ref, "join", created.txn_id, r2)
        try:
            yield client.call(tm.ref, "commit", created.txn_id)
        except RemoteError as exc:
            return created.txn_id, type(exc.cause).__name__

    p = env.process(proc())
    txn_id, err = env.run(until=p)
    assert err == "CannotCommitError"
    # No one commits; everyone gets abort.
    assert ("commit", txn_id) not in p1.log
    assert ("abort", txn_id) in p1.log
    assert ("abort", txn_id) in p2.log


def test_notchanged_vote_skips_phase2(env, net):
    th, tm, ch, client = setup_tm(net)
    h1, p1, r1 = export_participant(net, "p1", Vote.NOTCHANGED)
    h2, p2, r2 = export_participant(net, "p2", Vote.PREPARED)

    def proc():
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "join", created.txn_id, r1)
        yield client.call(tm.ref, "join", created.txn_id, r2)
        yield client.call(tm.ref, "commit", created.txn_id)
        return created.txn_id

    p = env.process(proc())
    txn_id = env.run(until=p)
    assert ("commit", txn_id) not in p1.log
    assert ("commit", txn_id) in p2.log


def test_dead_participant_aborts_commit(env, net):
    th, tm, ch, client = setup_tm(net)
    h1, p1, r1 = export_participant(net, "p1")
    h1.fail()

    def proc():
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "join", created.txn_id, r1)
        try:
            yield client.call(tm.ref, "commit", created.txn_id, timeout=30.0)
        except RemoteError as exc:
            return type(exc.cause).__name__

    p = env.process(proc())
    assert env.run(until=p) == "CannotCommitError"


def test_explicit_abort(env, net):
    th, tm, ch, client = setup_tm(net)
    h1, p1, r1 = export_participant(net, "p1")

    def proc():
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "join", created.txn_id, r1)
        state = yield client.call(tm.ref, "abort", created.txn_id)
        txn_state = yield client.call(tm.ref, "get_state", created.txn_id)
        return created.txn_id, state, txn_state

    p = env.process(proc())
    txn_id, state, txn_state = env.run(until=p)
    assert state == TxnState.ABORTED
    assert txn_state == TxnState.ABORTED
    assert ("abort", txn_id) in p1.log


def test_commit_twice_rejected(env, net):
    th, tm, ch, client = setup_tm(net)

    def proc():
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "commit", created.txn_id)
        try:
            yield client.call(tm.ref, "commit", created.txn_id)
        except RemoteError as exc:
            return type(exc.cause).__name__

    p = env.process(proc())
    assert env.run(until=p) == "CannotCommitError"


def test_join_after_commit_rejected(env, net):
    th, tm, ch, client = setup_tm(net)
    h1, p1, r1 = export_participant(net, "p1")

    def proc():
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "commit", created.txn_id)
        try:
            yield client.call(tm.ref, "join", created.txn_id, r1)
        except RemoteError as exc:
            return type(exc.cause).__name__

    p = env.process(proc())
    assert env.run(until=p) == "CannotCommitError"


def test_unknown_txn(env, net):
    th, tm, ch, client = setup_tm(net)

    def proc():
        try:
            yield client.call(tm.ref, "get_state", 424242)
        except RemoteError as exc:
            return type(exc.cause).__name__

    p = env.process(proc())
    assert env.run(until=p) == "UnknownTransactionError"


def test_lease_expiry_aborts_active_txn(env, net):
    th, tm, ch, client = setup_tm(net)
    h1, p1, r1 = export_participant(net, "p1")

    def proc():
        created = yield client.call(tm.ref, "create", 2.0)
        yield client.call(tm.ref, "join", created.txn_id, r1)
        yield env.timeout(10.0)  # never committed, lease lapses
        state = yield client.call(tm.ref, "get_state", created.txn_id)
        return created.txn_id, state

    p = env.process(proc())
    txn_id, state = env.run(until=p)
    assert state == TxnState.ABORTED
    assert ("abort", txn_id) in p1.log


def test_interrupt_propagates_through_commit(env, net):
    """Regression: the 2PC prepare loop used to swallow Interrupt in its
    broad ``except Exception`` (Interrupt subclasses Exception), turning a
    kernel-level cancellation into a phantom ABORTED vote. An interrupt
    landing mid-prepare must propagate out of the commit process."""
    th, tm, ch, client = setup_tm(net)
    h1, p1, r1 = export_participant(net, "p1")

    def proc():
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "join", created.txn_id, r1)
        # Drive commit locally so the interrupt lands inside its frame.
        yield from tm.commit(created.txn_id)

    p = env.process(proc())

    def interrupter():
        # create + join cost two RPC round trips (4 hops x 1ms); strike
        # while the prepare call to p1 is still in flight.
        yield env.timeout(0.0045)
        p.interrupt(cause="operator abort")

    env.process(interrupter())
    with pytest.raises(Interrupt):
        env.run(until=p)
    # The participant was never told to commit.
    assert not any(action == "commit" for action, _ in p1.log)
