"""LookupDiscoveryService — discovery on behalf of clients (Fig 2)."""

import pytest

from repro.net import Host, rpc_endpoint
from repro.jini import LookupDiscoveryService, LookupService


class Listener:
    REMOTE_TYPES = ("RemoteEventListener",)

    def __init__(self):
        self.events = []

    def notify(self, payload):
        self.events.append(payload)


def test_registrars_proxy_view(env, net):
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    lds = LookupDiscoveryService(Host(net, "lds-host"))
    client = rpc_endpoint(Host(net, "client"))

    def proc():
        yield env.timeout(3.0)
        registrars = yield client.call(lds.ref, "registrars")
        return registrars

    registrars = env.run(until=env.process(proc()))
    assert lus.lus_id in registrars
    assert registrars[lus.lus_id].implements("ServiceRegistrar")


def test_listener_hears_discovery_events(env, net):
    lds = LookupDiscoveryService(Host(net, "lds-host"))
    client_host = Host(net, "client")
    client = rpc_endpoint(client_host)
    listener = Listener()
    listener_ref = client.export(listener, "listener")

    def proc():
        yield client.call(lds.ref, "register_listener", listener_ref)
        # A LUS arrives later; the LDS must push a 'discovered' event.
        lus = LookupService(Host(net, "late-lus"), announce_interval=2.0)
        lus.start()
        yield env.timeout(8.0)
        return lus

    lus = env.run(until=env.process(proc()))
    kinds = [e["event"] for e in listener.events]
    assert "discovered" in kinds
    discovered = next(e for e in listener.events if e["event"] == "discovered")
    assert discovered["lus_id"] == lus.lus_id


def test_listener_hears_discard(env, net):
    lus = LookupService(Host(net, "lus-host"), announce_interval=2.0)
    lus.start()
    lds = LookupDiscoveryService(Host(net, "lds-host"))
    client = rpc_endpoint(Host(net, "client"))
    listener = Listener()
    listener_ref = client.export(listener, "listener")

    def proc():
        yield env.timeout(3.0)
        yield client.call(lds.ref, "register_listener", listener_ref)
        lus.host.fail()  # announcements stop; reaper discards
        yield env.timeout(60.0)

    env.run(until=env.process(proc()))
    assert any(e["event"] == "discarded" for e in listener.events)


def test_unregister_listener_stops_events(env, net):
    lds = LookupDiscoveryService(Host(net, "lds-host"))
    client = rpc_endpoint(Host(net, "client"))
    listener = Listener()
    listener_ref = client.export(listener, "listener")

    def proc():
        listener_id = yield client.call(lds.ref, "register_listener",
                                        listener_ref)
        yield client.call(lds.ref, "unregister_listener", listener_id)
        lus = LookupService(Host(net, "late-lus"), announce_interval=2.0)
        lus.start()
        yield env.timeout(8.0)

    env.run(until=env.process(proc()))
    assert listener.events == []
