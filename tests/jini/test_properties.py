"""Property-based tests (hypothesis) for jini-layer invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.net.rpc import RemoteRef
from repro.jini import (
    Landlord,
    Name,
    SensorType,
    ServiceItem,
    ServiceTemplate,
    entry_matches,
)

names = st.text(alphabet="abcdefgh-", min_size=1, max_size=12)
quantities = st.sampled_from(["temperature", "humidity", "light", None])
types_pool = ["SensorDataAccessor", "Servicer", "Cybernode", "Jobber"]


def make_item(name, quantity, type_subset, sid="id-1"):
    attrs = [Name(name)]
    if quantity is not None:
        attrs.append(SensorType(quantity=quantity))
    ref = RemoteRef(host="h", object_id="o", type_names=tuple(type_subset))
    return ServiceItem(service_id=sid, service=ref, attributes=tuple(attrs))


@given(names, quantities, st.sets(st.sampled_from(types_pool), min_size=1))
def test_empty_template_matches_everything(name, quantity, type_subset):
    item = make_item(name, quantity, type_subset)
    assert ServiceTemplate().matches(item)


@given(names, quantities, st.sets(st.sampled_from(types_pool), min_size=1))
def test_exact_id_template(name, quantity, type_subset):
    item = make_item(name, quantity, type_subset)
    assert ServiceTemplate(service_id="id-1").matches(item)
    assert not ServiceTemplate(service_id="other").matches(item)


@given(names, st.sets(st.sampled_from(types_pool), min_size=1))
def test_type_template_subset_rule(name, type_subset):
    """A template with types T matches iff T is a subset of the proxy types."""
    item = make_item(name, None, type_subset)
    for t in types_pool:
        expected = t in type_subset
        assert ServiceTemplate(types=(t,)).matches(item) == expected
    assert ServiceTemplate(types=tuple(type_subset)).matches(item)


@given(names, names)
def test_name_template_iff_equal(a, b):
    item = make_item(a, None, ["Servicer"])
    assert ServiceTemplate(attributes=(Name(b),)).matches(item) == (a == b)


@given(names, quantities)
def test_template_strengthening_never_adds_matches(name, quantity):
    """Adding constraints can only shrink the match set (monotonicity)."""
    item = make_item(name, quantity, ["SensorDataAccessor", "Servicer"])
    weak = ServiceTemplate(types=("Servicer",))
    strong = ServiceTemplate(types=("Servicer",),
                             attributes=(SensorType(quantity="temperature"),))
    if strong.matches(item):
        assert weak.matches(item)


@given(st.lists(st.tuples(st.floats(min_value=0.1, max_value=100.0),
                          st.floats(min_value=0.1, max_value=50.0)),
                min_size=1, max_size=20))
def test_landlord_active_count_invariant(grants):
    """Active leases == grants minus (cancels + expiries); never negative."""
    env = Environment()
    landlord = Landlord(env, max_duration=1000.0)
    leases = []
    for duration, advance in grants:
        leases.append(landlord.grant("r", duration))
        env._now += advance  # direct clock manipulation is fine here
        landlord.reap()
        alive = sum(1 for lease in leases
                    if lease.expiration > env.now)
        # reap() may remove only lapsed leases — the landlord's view must
        # agree with the expiration timestamps it handed out (renewals
        # aside, which this test doesn't perform).
        assert len(landlord) == alive


@given(st.floats(min_value=0.1, max_value=10.0),
       st.floats(min_value=0.1, max_value=10.0))
def test_landlord_renewal_extends_from_now(first, second):
    env = Environment()
    landlord = Landlord(env, max_duration=1000.0)
    lease = landlord.grant("r", first)
    env._now += first / 2
    renewed = landlord.renew(lease.lease_id, second)
    assert renewed.expiration == env.now + second
    assert landlord.is_active(lease.lease_id)


@given(st.integers(min_value=1, max_value=30))
def test_landlord_clear_empties(n):
    env = Environment()
    expired = []
    landlord = Landlord(env, on_expire=expired.append)
    for i in range(n):
        landlord.grant(i, 10.0)
    landlord.clear()
    assert len(landlord) == 0
    assert expired == []  # clear() never fires expiry callbacks
