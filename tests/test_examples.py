"""Every example script must run end to end (they are part of the API)."""

import importlib.util
import io
import pathlib
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


def test_quickstart():
    output = run_example("quickstart")
    assert "Sensor Services" in output
    assert "Neem-Sensor" in output
    assert "(a + b)/2" in output


def test_paper_experiment():
    output = run_example("paper_experiment")
    assert "step 6: New-Composite value" in output
    assert "Logical Sensor Network" in output
    assert "ground truth" in output
    # The composition tree of Fig 3.
    assert "- New-Composite" in output
    assert "  - Composite-Service" in output


def test_farm_monitoring():
    output = run_example("farm_monitoring")
    assert "Field averages" in output
    assert "heat event detected" in output


def test_fault_tolerant_fleet():
    output = run_example("fault_tolerant_fleet")
    assert "re-provisioned Fleet-Telemetry" in output
    assert "fleet mean after self-healing" in output
    assert "survivors" in output


def test_space_computing():
    output = run_example("space_computing")
    assert "worker-0 crashed" in output
    assert "batch status: done" in output
    assert "anomaly scores" in output
