"""Global test configuration."""

import pytest
from hypothesis import HealthCheck, settings

#: Seeds the shuffle-harness fixture runs under. Three is the floor the
#: determinism contract asks for; CI additionally runs the integration
#: suite under REPRO_SHUFFLE_SEED as a matrix job.
SHUFFLE_SEEDS = (11, 23, 47)


@pytest.fixture(params=SHUFFLE_SEEDS)
def shuffle_seed(request, monkeypatch):
    """Parametrize a test over tie-break shuffle seeds.

    Sets ``REPRO_SHUFFLE_SEED`` so every :class:`repro.sim.Environment`
    built inside the test randomizes same-(time, priority) event order
    with that seed. Use it in tests asserting order-robustness.
    """
    from repro.sim.core import SHUFFLE_SEED_ENV
    monkeypatch.setenv(SHUFFLE_SEED_ENV, str(request.param))
    return request.param

# Simulation-heavy property tests can blow hypothesis's per-example
# deadline on a cold interpreter; wall-clock time is not what these tests
# are about, so disable it (and the matching health check).
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
