"""Global test configuration."""

from hypothesis import HealthCheck, settings

# Simulation-heavy property tests can blow hypothesis's per-example
# deadline on a cold interpreter; wall-clock time is not what these tests
# are about, so disable it (and the matching health check).
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
