"""Surrogate-architecture baseline (§III.B)."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network, rpc_endpoint
from repro.jini import LookupService, ServiceTemplate
from repro.sensors import PhysicalEnvironment, SunSpotDevice, \
    SunSpotTemperatureProbe, TemperatureProbe
from repro.baselines import DeviceLink, SurrogateHost


@pytest.fixture
def stack():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(29),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=29)
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    sh = SurrogateHost(Host(net, "surrogate-host"))
    client = rpc_endpoint(Host(net, "client"))
    return env, net, world, lus, sh, client


def make_probe(env, world, n=0):
    return TemperatureProbe(env, f"dev-{n}", world, (n * 10.0, 0.0),
                            rng=np.random.default_rng(n), sensing_noise=0.0)


def test_surrogate_registers_as_sensor_accessor(stack):
    env, net, world, lus, sh, client = stack
    sh.activate("Device-0", make_probe(env, world))
    env.run(until=5.0)
    items = lus.lookup(ServiceTemplate.by_type("SensorDataAccessor"), 10)
    assert len(items) == 1
    assert items[0].name() == "Device-0"
    assert items[0].service.implements("DeviceSurrogate")


def test_every_read_crosses_the_device_link(stack):
    env, net, world, lus, sh, client = stack
    link = DeviceLink(env, round_trip=0.1)
    surrogate = sh.activate("Device-0", make_probe(env, world), link)

    def proc():
        values = []
        for _ in range(5):
            value = yield client.call(surrogate.ref, "getValue", timeout=5.0)
            values.append(value)
        return values

    values = env.run(until=env.process(proc()))
    assert len(values) == 5
    assert link.requests == 5  # no caching anywhere
    truth = world.sample("temperature", (0, 0), env.now)
    assert abs(values[-1] - truth) < 1.0


def test_device_link_serializes_concurrent_requests(stack):
    """The mote's single radio is the §III.B bottleneck."""
    env, net, world, lus, sh, client = stack
    link = DeviceLink(env, round_trip=0.2)
    probe = make_probe(env, world)
    probe.read_latency = 0.0
    surrogate = sh.activate("Device-0", probe, link)
    finish_times = []

    def one_call():
        yield client.call(surrogate.ref, "getValue", timeout=30.0)
        finish_times.append(env.now)

    def proc():
        procs = [env.process(one_call()) for _ in range(4)]
        yield env.all_of(procs)

    env.run(until=env.process(proc()))
    # 4 requests x 0.2s of radio each, serialized: last finishes >= 0.8s.
    assert max(finish_times) >= 0.8
    assert link.requests == 4


def test_surrogate_charges_the_device_battery(stack):
    env, net, world, lus, sh, client = stack
    device = SunSpotDevice(env, "spot", battery_mah=720.0)
    probe = SunSpotTemperatureProbe(env, device, world, (0, 0),
                                    rng=np.random.default_rng(1))
    surrogate = sh.activate("Spot-0", probe)

    def proc():
        for _ in range(10):
            yield client.call(surrogate.ref, "getValue", timeout=5.0)

    env.run(until=env.process(proc()))
    assert device.total_reads == 10  # one device wake-up per client query


def test_deactivate_removes_surrogate(stack):
    env, net, world, lus, sh, client = stack
    surrogate = sh.activate("Device-0", make_probe(env, world))
    env.run(until=5.0)

    def proc():
        yield env.process(sh.deactivate("Device-0"))

    env.process(proc())
    env.run(until=10.0)
    assert lus.lookup(ServiceTemplate.by_type("SensorDataAccessor"), 10) == []
    with pytest.raises(KeyError):
        env.run(until=env.process(sh.deactivate("Device-0")))


def test_duplicate_activation_rejected(stack):
    env, net, world, lus, sh, client = stack
    sh.activate("Device-0", make_probe(env, world))
    with pytest.raises(ValueError):
        sh.activate("Device-0", make_probe(env, world, 1))


def test_getinfo(stack):
    env, net, world, lus, sh, client = stack
    surrogate = sh.activate("Device-0", make_probe(env, world))

    def proc():
        info = yield client.call(surrogate.ref, "getInfo", timeout=5.0)
        return info

    info = env.run(until=env.process(proc()))
    assert info["service_type"] == "SURROGATE"
    assert info["quantity"] == "temperature"
