"""TCI/SSP/ASP baseline framework."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network, RemoteError, rpc_endpoint
from repro.jini import LookupService, ServiceTemplate
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.baselines import (
    ApplicationServiceProvider,
    TciSensorServiceProvider,
    TerminalCommunicationInterface,
)


@pytest.fixture
def stack():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(19),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=19)
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    # Two TCIs with two sensors each.
    tcis = []
    for t in range(2):
        host = Host(net, f"tci-{t}")
        probes = {
            f"sensor-{t}-{s}": TemperatureProbe(
                env, f"probe-{t}-{s}", world, (t * 20.0 + s * 5.0, 0.0),
                rng=np.random.default_rng(t * 10 + s), sensing_noise=0.0)
            for s in range(2)
        }
        tci = TerminalCommunicationInterface(host, f"TCI-{t}", probes)
        tci.start()
        tcis.append(tci)
    ssp = TciSensorServiceProvider(Host(net, "ssp-host"))
    ssp.start()
    asp = ApplicationServiceProvider(Host(net, "asp-host"))
    asp.start()
    client = rpc_endpoint(Host(net, "client"))
    return env, net, world, lus, tcis, ssp, asp, client


def test_all_levels_register(stack):
    env, net, world, lus, tcis, ssp, asp, client = stack
    env.run(until=5.0)
    assert len(lus.lookup(ServiceTemplate.by_type("TCI"), 10)) == 2
    assert len(lus.lookup(ServiceTemplate.by_type("TciSSP"), 10)) == 1
    assert len(lus.lookup(ServiceTemplate.by_type("TciASP"), 10)) == 1


def test_tci_reads_its_sensors(stack):
    env, net, world, lus, tcis, ssp, asp, client = stack

    def proc():
        yield env.timeout(3.0)
        values = yield client.call(tcis[0].ref, "read_all")
        return values

    values = env.run(until=env.process(proc()))
    assert sorted(values) == ["sensor-0-0", "sensor-0-1"]
    truth = world.sample("temperature", (0.0, 0.0), env.now)
    assert abs(values["sensor-0-0"] - truth) < 1.0


def test_ssp_structures_by_tci(stack):
    env, net, world, lus, tcis, ssp, asp, client = stack

    def proc():
        yield env.timeout(3.0)
        structured = yield client.call(ssp.ref, "collect", timeout=20.0)
        return structured

    structured = env.run(until=env.process(proc()))
    assert sorted(structured) == ["TCI-0", "TCI-1"]
    assert sorted(structured["TCI-1"]) == ["sensor-1-0", "sensor-1-1"]


def test_asp_mean_matches_ground_truth(stack):
    env, net, world, lus, tcis, ssp, asp, client = stack

    def proc():
        yield env.timeout(3.0)
        value = yield client.call(asp.ref, "query", "mean", timeout=30.0)
        return value

    value = env.run(until=env.process(proc()))
    locations = [(0.0, 0.0), (5.0, 0.0), (20.0, 0.0), (25.0, 0.0)]
    truth = world.mean_over("temperature", locations, env.now)
    assert abs(value - truth) < 1.0


def test_asp_rejects_custom_computation(stack):
    """The rigidity SenSORCER fixes: no client-supplied expressions."""
    env, net, world, lus, tcis, ssp, asp, client = stack

    def proc():
        yield env.timeout(3.0)
        try:
            yield client.call(asp.ref, "query", "(a + b)/2", timeout=30.0)
        except RemoteError as exc:
            return type(exc.cause).__name__

    assert env.run(until=env.process(proc())) == "ValueError"


def test_regrouping_requires_new_asp(stack):
    """Selecting a sensor subset = deploy a replacement ASP."""
    env, net, world, lus, tcis, ssp, asp, client = stack

    def proc():
        yield env.timeout(3.0)
        # The running ASP aggregates everything; to focus on TCI-0's sensors
        # the old ASP must be destroyed and a new one deployed.
        yield env.process(asp.destroy())
        replacement = ApplicationServiceProvider(
            Host(net, "asp2-host"), name="ASP",
            include_sensors=["sensor-0-0", "sensor-0-1"])
        replacement.start()
        yield env.timeout(3.0)  # discovery/join of the new ASP
        value = yield client.call(replacement.ref, "query", "mean", timeout=30.0)
        return value

    value = env.run(until=env.process(proc()))
    truth = world.mean_over("temperature", [(0.0, 0.0), (5.0, 0.0)], env.now)
    assert abs(value - truth) < 1.0


def test_asp_count_operation(stack):
    env, net, world, lus, tcis, ssp, asp, client = stack

    def proc():
        yield env.timeout(3.0)
        count = yield client.call(asp.ref, "query", "count", timeout=30.0)
        return count

    assert env.run(until=env.process(proc())) == 4
