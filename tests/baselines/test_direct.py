"""Direct polling / streaming baselines."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.baselines import (
    DirectPollingCollector,
    DirectSensorNode,
    StreamCollector,
    StreamingSensorNode,
)


@pytest.fixture
def setup():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(17),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=17)
    return env, net, world


def add_nodes(env, net, world, n, spacing=10.0):
    addresses = []
    for i in range(n):
        host = Host(net, f"node-{i}")
        probe = TemperatureProbe(env, f"probe-{i}", world, (i * spacing, 0.0),
                                 rng=np.random.default_rng(i), sensing_noise=0.0)
        DirectSensorNode(host, probe)
        addresses.append(host.name)
    return addresses


def test_poll_one_node(setup):
    env, net, world = setup
    addresses = add_nodes(env, net, world, 1)
    collector = DirectPollingCollector(Host(net, "collector"), addresses)

    def proc():
        value = yield from collector.poll_one("node-0")
        return value

    value = env.run(until=env.process(proc()))
    truth = world.sample("temperature", (0.0, 0.0), env.now)
    assert abs(value - truth) < 1.0


def test_collect_all_parallel(setup):
    env, net, world = setup
    addresses = add_nodes(env, net, world, 5)
    collector = DirectPollingCollector(Host(net, "collector"), addresses)

    def proc():
        values = yield from collector.collect_all()
        return values, env.now

    values, elapsed = env.run(until=env.process(proc()))
    assert len(values) == 5
    assert all(v is not None for v in values.values())
    # Parallel: roughly one round trip + probe latency, not five.
    assert elapsed < 0.2


def test_collect_sequential_slower(setup):
    env, net, world = setup
    addresses = add_nodes(env, net, world, 5)
    c1 = DirectPollingCollector(Host(net, "collector-par"), addresses)
    c2 = DirectPollingCollector(Host(net, "collector-seq"), addresses)

    def proc():
        t0 = env.now
        yield from c1.collect_all()
        parallel_time = env.now - t0
        t1 = env.now
        yield from c2.collect_all_sequential()
        sequential_time = env.now - t1
        return parallel_time, sequential_time

    parallel_time, sequential_time = env.run(until=env.process(proc()))
    assert sequential_time > 3 * parallel_time


def test_dead_node_times_out(setup):
    env, net, world = setup
    addresses = add_nodes(env, net, world, 2)
    net.hosts["node-1"].fail()
    collector = DirectPollingCollector(Host(net, "collector"), addresses,
                                       reply_timeout=0.5)

    def proc():
        values = yield from collector.collect_all()
        return values

    values = env.run(until=env.process(proc()))
    assert values["node-0"] is not None
    assert values["node-1"] is None
    assert collector.timeouts == 1


def test_collect_average(setup):
    env, net, world = setup
    addresses = add_nodes(env, net, world, 4, spacing=100.0)
    collector = DirectPollingCollector(Host(net, "collector"), addresses)

    def proc():
        avg = yield from collector.collect_average()
        return avg

    avg = env.run(until=env.process(proc()))
    locations = [(i * 100.0, 0.0) for i in range(4)]
    truth = world.mean_over("temperature", locations, env.now)
    assert abs(avg - truth) < 1.0


def test_all_dead_raises(setup):
    env, net, world = setup
    addresses = add_nodes(env, net, world, 2)
    for address in addresses:
        net.hosts[address].fail()
    collector = DirectPollingCollector(Host(net, "collector"), addresses,
                                       reply_timeout=0.5)

    def proc():
        try:
            yield from collector.collect_average()
        except RuntimeError:
            return "failed"

    assert env.run(until=env.process(proc())) == "failed"


def test_streaming_pushes_samples(setup):
    env, net, world = setup
    collector_host = Host(net, "collector")
    collector = StreamCollector(collector_host)
    for i in range(3):
        host = Host(net, f"node-{i}")
        probe = TemperatureProbe(env, f"p{i}", world, (i * 5.0, 0.0),
                                 rng=np.random.default_rng(i))
        StreamingSensorNode(host, probe, "collector", interval=1.0).start()
    env.run(until=10.5)
    assert collector.received >= 27  # ~10 samples x 3 nodes
    assert len(collector.latest) == 3


def test_streaming_traffic_grows_per_sample(setup):
    """Every tiny sample pays the full TCP header — §II.1's complaint."""
    env, net, world = setup
    collector = StreamCollector(Host(net, "collector"))
    host = Host(net, "node-0")
    probe = TemperatureProbe(env, "p0", world, (0, 0),
                             rng=np.random.default_rng(0))
    StreamingSensorNode(host, probe, "collector", interval=1.0).start()
    env.run(until=20.5)
    stream = net.stats.by_kind["direct-stream"]
    assert stream["messages"] >= 19
    # Headers dominate the tiny payload.
    assert stream["header_bytes"] > stream["payload_bytes"]
