"""Property-based tests for the expression language (hypothesis)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import Expression, ExprError, evaluate, parse

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
var_names = st.sampled_from(list("abcdefgh"))


@given(finite)
def test_number_literal_roundtrip(x):
    # Format with repr to keep full precision; negative via unary minus.
    text = repr(abs(x))
    assert evaluate(text) == pytest.approx(abs(x))


@given(finite, finite)
def test_addition_commutative(a, b):
    bindings = {"a": a, "b": b}
    assert evaluate("a + b", bindings) == evaluate("b + a", bindings)


@given(finite, finite, finite)
def test_average_between_min_and_max(a, b, c):
    bindings = {"a": a, "b": b, "c": c}
    result = evaluate("(a + b + c)/3", bindings)
    assert min(a, b, c) - 1e-6 <= result <= max(a, b, c) + 1e-6


@given(finite, finite)
def test_ternary_matches_python_max(a, b):
    assert evaluate("a > b ? a : b", {"a": a, "b": b}) == max(a, b)


@given(st.lists(finite, min_size=1, max_size=8))
def test_avg_function_matches_mean(values):
    args = ", ".join(f"v{i}" for i in range(len(values)))
    bindings = {f"v{i}": v for i, v in enumerate(values)}
    assert evaluate(f"avg({args})", bindings) == pytest.approx(
        sum(values) / len(values))


@given(finite, finite, finite)
def test_clamp_within_bounds(x, lo, hi):
    lo, hi = min(lo, hi), max(lo, hi)
    result = evaluate("clamp(x, lo, hi)", {"x": x, "lo": lo, "hi": hi})
    assert lo <= result <= hi


@given(st.text(alphabet="abc+-*/()0123456789 .<>=!&|?:%^,", max_size=40))
def test_parser_never_crashes_unexpectedly(text):
    """Arbitrary input either parses or raises an ExprError — nothing else."""
    try:
        parse(text)
    except ExprError:
        pass


@given(var_names, finite)
def test_free_variables_found(name, value):
    expr = Expression(f"{name} * 2")
    assert expr.variables == (name,)
    assert expr.evaluate({name: value}) == pytest.approx(2 * value)


@given(finite)
def test_double_negation_identity(x):
    assert evaluate("- - x", {"x": x}) == x


@given(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=5))
def test_power_matches_python(base, exponent):
    assert evaluate(f"{base} ^ {exponent}") == base ** exponent


@given(finite, finite)
def test_comparisons_total_order(a, b):
    bindings = {"a": a, "b": b}
    lt = evaluate("a < b", bindings)
    gt = evaluate("a > b", bindings)
    eq = evaluate("a == b", bindings)
    assert lt + gt + eq == 1.0
