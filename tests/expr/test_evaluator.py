"""Evaluator tests, including the paper's exact expressions."""

import math

import pytest

from repro.expr import (
    ExprEvalError,
    ExprNameError,
    Expression,
    compile_expression,
    evaluate,
)


def test_paper_average_of_three():
    assert evaluate("(a + b + c)/3", {"a": 20.0, "b": 22.0, "c": 24.0}) == 22.0


def test_paper_average_of_two():
    assert evaluate("(a + b)/2", {"a": 22.0, "b": 26.0}) == 24.0


def test_arithmetic_basics():
    assert evaluate("2 + 3 * 4") == 14
    assert evaluate("(2 + 3) * 4") == 20
    assert evaluate("10 / 4") == 2.5
    assert evaluate("7 % 3") == 1
    assert evaluate("2 ^ 10") == 1024
    assert evaluate("-3 + 5") == 2
    assert evaluate("2 ^ 3 ^ 2") == 512  # right associative


def test_comparisons_return_zero_one():
    assert evaluate("3 > 2") == 1.0
    assert evaluate("3 < 2") == 0.0
    assert evaluate("2 >= 2") == 1.0
    assert evaluate("2 != 2") == 0.0
    assert evaluate("2 == 2") == 1.0


def test_boolean_operators():
    assert evaluate("1 && 1") == 1.0
    assert evaluate("1 && 0") == 0.0
    assert evaluate("0 || 1") == 1.0
    assert evaluate("0 || 0") == 0.0
    assert evaluate("!0") == 1.0
    assert evaluate("!5") == 0.0


def test_short_circuit_avoids_division_by_zero():
    # 0 && (1/0) must not evaluate the right side.
    assert evaluate("0 && 1 / 0") == 0.0
    assert evaluate("1 || 1 / 0") == 1.0


def test_ternary():
    assert evaluate("a > b ? a : b", {"a": 5, "b": 3}) == 5
    assert evaluate("a > b ? a : b", {"a": 1, "b": 3}) == 3


def test_functions():
    assert evaluate("avg(1, 2, 3)") == 2
    assert evaluate("min(3, 1, 2)") == 1
    assert evaluate("max(3, 1, 2)") == 3
    assert evaluate("sum(1, 2, 3)") == 6
    assert evaluate("abs(-4)") == 4
    assert evaluate("sqrt(9)") == 3
    assert evaluate("clamp(15, 0, 10)") == 10
    assert evaluate("floor(2.9)") == 2
    assert evaluate("ceil(2.1)") == 3
    assert evaluate("round(2.5)") == 2  # banker's rounding, like Python
    assert evaluate("if(1, 10, 20)") == 10
    assert evaluate("pow(2, 5)") == 32
    assert evaluate("log(exp(1))") == pytest.approx(1.0)
    assert evaluate("log(8, 2)") == pytest.approx(3.0)


def test_division_by_zero():
    with pytest.raises(ExprEvalError):
        evaluate("1 / 0")
    with pytest.raises(ExprEvalError):
        evaluate("1 % 0")


def test_domain_errors():
    with pytest.raises(ExprEvalError):
        evaluate("sqrt(-1)")
    with pytest.raises(ExprEvalError):
        evaluate("log(0)")
    with pytest.raises(ExprEvalError):
        evaluate("clamp(1, 5, 0)")


def test_arity_errors():
    with pytest.raises(ExprEvalError):
        evaluate("sqrt(1, 2)")
    with pytest.raises(ExprEvalError):
        evaluate("clamp(1)")
    with pytest.raises(ExprEvalError):
        evaluate("avg()")


def test_unbound_variable():
    with pytest.raises(ExprNameError):
        evaluate("a + 1")


def test_unknown_function():
    with pytest.raises(ExprNameError):
        evaluate("mystery(1)")


def test_non_numeric_binding_rejected():
    with pytest.raises(ExprEvalError):
        evaluate("a + 1", {"a": "not-a-number"})
    with pytest.raises(ExprEvalError):
        evaluate("a + 1", {"a": True})


def test_resolver_callable():
    values = {"x": 10.0}
    assert evaluate("x * 2", lambda name: values[name]) == 20.0


def test_compiled_expression_reuse():
    expr = compile_expression("(a + b)/2")
    assert expr.variables == ("a", "b")
    assert expr.evaluate({"a": 2, "b": 4}) == 3
    assert expr.evaluate({"a": 10, "b": 20}) == 15
    assert expr(a=1, b=3) == 2


def test_custom_function_table():
    expr = Expression("celsius_to_f(c)", functions={
        "celsius_to_f": lambda c: c * 9 / 5 + 32})
    assert expr.evaluate({"c": 100}) == 212


def test_variables_sorted_and_deduped():
    expr = compile_expression("b + a + b + avg(a, c)")
    assert expr.variables == ("a", "b", "c")


def test_scientific_notation():
    assert evaluate("1e3 + 2.5e-1") == pytest.approx(1000.25)


def test_large_expression():
    terms = " + ".join(f"v{i}" for i in range(100))
    bindings = {f"v{i}": float(i) for i in range(100)}
    assert evaluate(terms, bindings) == sum(range(100))


def test_constants():
    import math
    assert evaluate("PI") == pytest.approx(math.pi)
    assert evaluate("2 * PI") == pytest.approx(math.tau)
    assert evaluate("E") == pytest.approx(math.e)
    assert evaluate("TRUE && FALSE") == 0.0
    assert evaluate("TRUE || FALSE") == 1.0


def test_constants_are_not_free_variables():
    expr = compile_expression("a * PI + E")
    assert expr.variables == ("a",)
    assert expr.evaluate({"a": 2.0}) == pytest.approx(2 * 3.141592653589793
                                                      + 2.718281828459045)


def test_lowercase_e_stays_a_variable():
    # Composite variables are lowercase (a, b, ... e); only uppercase E is
    # the constant, so the 5th composed service binds cleanly.
    expr = compile_expression("e * 2")
    assert expr.variables == ("e",)
    assert expr.evaluate({"e": 10.0}) == 20.0


def test_constants_not_shadowed_by_bindings():
    # A binding named 'PI' is ignored; the constant wins (documented).
    assert evaluate("PI", {"PI": 99.0}) == pytest.approx(3.141592653589793)
