"""Lexer and parser unit tests."""

import pytest

from repro.expr import (
    Binary,
    Call,
    Conditional,
    ExprSyntaxError,
    Number,
    TokenType,
    Unary,
    Variable,
    parse,
    tokenize,
)


def kinds(text):
    return [t.type for t in tokenize(text)]


def test_tokenize_numbers():
    tokens = tokenize("1 2.5 .5 1e3 2.5e-2")
    numbers = [t.text for t in tokens if t.type is TokenType.NUMBER]
    assert numbers == ["1", "2.5", ".5", "1e3", "2.5e-2"]


def test_tokenize_identifiers():
    tokens = tokenize("a bc _x a1")
    idents = [t.text for t in tokens if t.type is TokenType.IDENT]
    assert idents == ["a", "bc", "_x", "a1"]


def test_tokenize_operators_maximal_munch():
    tokens = tokenize("a<=b!=c&&d")
    ops = [t.text for t in tokens if t.type is TokenType.OP]
    assert ops == ["<=", "!=", "&&"]


def test_tokenize_rejects_garbage():
    with pytest.raises(ExprSyntaxError):
        tokenize("a @ b")


def test_parse_paper_expression():
    # The exact expression from the paper's §VI experiment, step 2.
    ast = parse("(a + b + c)/3")
    assert isinstance(ast, Binary) and ast.op == "/"
    assert ast.right == Number(3.0)
    assert ast.free_variables() == {"a", "b", "c"}


def test_parse_second_paper_expression():
    ast = parse("(a + b)/2")
    assert ast.free_variables() == {"a", "b"}


def test_precedence_mul_over_add():
    ast = parse("a + b * c")
    assert isinstance(ast, Binary) and ast.op == "+"
    assert isinstance(ast.right, Binary) and ast.right.op == "*"


def test_power_right_associative():
    ast = parse("a ^ b ^ c")
    assert ast.op == "^"
    assert isinstance(ast.right, Binary) and ast.right.op == "^"
    assert ast.left == Variable("a")


def test_unary_minus_binds_tighter_than_mul():
    ast = parse("-a * b")
    assert isinstance(ast, Binary) and ast.op == "*"
    assert isinstance(ast.left, Unary)


def test_comparison_below_arithmetic():
    ast = parse("a + 1 > b * 2")
    assert ast.op == ">"


def test_ternary():
    ast = parse("a > b ? a : b")
    assert isinstance(ast, Conditional)
    assert isinstance(ast.condition, Binary)


def test_nested_ternary():
    ast = parse("a ? b : c ? d : e")
    # Right-associative: a ? b : (c ? d : e)
    assert isinstance(ast, Conditional)
    assert isinstance(ast.if_false, Conditional)


def test_function_call_args():
    ast = parse("avg(a, b, c)")
    assert isinstance(ast, Call)
    assert ast.func == "avg"
    assert len(ast.args) == 3


def test_function_call_no_args():
    ast = parse("foo()")
    assert isinstance(ast, Call) and ast.args == ()


def test_nested_calls():
    ast = parse("max(avg(a, b), abs(-c))")
    assert isinstance(ast, Call)
    assert ast.free_variables() == {"a", "b", "c"}


@pytest.mark.parametrize("bad", [
    "", "   ", "a +", "(a", "a)", "a b", "1 2", "avg(a,)", "? a : b",
    "a ? b", "a ? b :", "((a)", "+", "a +* b",
])
def test_syntax_errors(bad):
    with pytest.raises(ExprSyntaxError):
        parse(bad)


def test_trailing_input_rejected():
    with pytest.raises(ExprSyntaxError):
        parse("a + b c")


def test_deeply_nested_parens():
    ast = parse("(" * 50 + "a" + ")" * 50)
    assert ast == Variable("a")
