"""Exerter load-spreading, provider concurrency caps, and provisioning hook."""

import pytest

from repro.net import Host
from repro.sorcer import (
    Exerter,
    ExertionStatus,
    ServiceContext,
    Signature,
    Task,
    Tasker,
)


class SlowProvider(Tasker):
    SERVICE_TYPES = ("Slow",)

    def __init__(self, host, name, delay=0.5, **kw):
        super().__init__(host, name, **kw)
        self.delay = delay
        self.add_operation("work", self._work)

    def _work(self, ctx):
        yield self.env.timeout(self.delay)
        return self.name


def work_task(n):
    task = Task(f"w{n}", Signature("Slow", "work"), ServiceContext())
    task.control.invocation_timeout = 120.0
    return task


def test_round_robin_spreads_over_equivalent_providers(grid):
    env, net, lus = grid
    providers = [SlowProvider(Host(net, f"p-{i}"), f"Slow-{i}").start()
                 for i in range(3)]
    exerter = Exerter(Host(net, "client"))

    def proc():
        yield env.timeout(2.0)
        names = []
        for n in range(6):
            result = yield env.process(exerter.exert(work_task(n)))
            assert result.is_done
            names.append(result.get_return_value())
        return names

    names = env.run(until=env.process(proc()))
    # Each of the three providers served exactly two of six requests.
    assert sorted(set(names)) == ["Slow-0", "Slow-1", "Slow-2"]
    assert all(names.count(p) == 2 for p in set(names))


def test_concurrency_cap_serializes_requests(grid):
    env, net, lus = grid
    SlowProvider(Host(net, "p-0"), "Capped", delay=1.0,
                 max_concurrency=1).start()
    exerter = Exerter(Host(net, "client"))

    def proc():
        yield env.timeout(2.0)
        t0 = env.now
        procs = [env.process(exerter.exert(work_task(n))) for n in range(4)]
        results = yield env.all_of(procs)
        assert all(r.is_done for r in results)
        return env.now - t0

    elapsed = env.run(until=env.process(proc()))
    # Four 1s tasks through a single-slot provider: >= 4s, not ~1s.
    assert elapsed >= 4.0


def test_uncapped_provider_overlaps_requests(grid):
    env, net, lus = grid
    SlowProvider(Host(net, "p-0"), "Open", delay=1.0).start()
    exerter = Exerter(Host(net, "client"))

    def proc():
        yield env.timeout(2.0)
        t0 = env.now
        procs = [env.process(exerter.exert(work_task(n))) for n in range(4)]
        yield env.all_of(procs)
        return env.now - t0

    elapsed = env.run(until=env.process(proc()))
    assert elapsed < 2.0


def test_provisioner_hook_invoked_when_no_provider(grid):
    env, net, lus = grid
    client_host = Host(net, "client")
    spawned = []

    def provisioner(signature):
        # Instantiate a matching provider on demand, like Rio would.
        provider = SlowProvider(Host(net, "spawned"), "Spawned-Slow")
        provider.start()
        spawned.append(provider)
        yield env.timeout(1.0)  # let it join
        return True

    exerter = Exerter(client_host, provisioner=provisioner)

    def proc():
        yield env.timeout(2.0)
        task = Task("w", Signature("Slow", "work", provision=True),
                    ServiceContext())
        task.control.provider_wait = 5.0
        task.control.invocation_timeout = 60.0
        result = yield env.process(exerter.exert(task))
        return result

    result = env.run(until=env.process(proc()))
    assert len(spawned) == 1
    assert result.status is ExertionStatus.DONE
    assert result.get_return_value() == "Spawned-Slow"


def test_no_provision_without_flag(grid):
    env, net, lus = grid
    spawned = []

    def provisioner(signature):
        spawned.append(signature)
        return True
        yield

    exerter = Exerter(Host(net, "client"), provisioner=provisioner)

    def proc():
        yield env.timeout(2.0)
        task = Task("w", Signature("Slow", "work"), ServiceContext())
        task.control.provider_wait = 1.0
        result = yield env.process(exerter.exert(task))
        return result

    result = env.run(until=env.process(proc()))
    assert result.is_failed
    assert spawned == []
