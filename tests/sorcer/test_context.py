"""ServiceContext semantics."""

import pytest

from repro.sorcer import ContextError, ServiceContext


def test_put_get_roundtrip():
    ctx = ServiceContext()
    ctx.put_value("a/b/c", 42)
    assert ctx.get_value("a/b/c") == 42


def test_missing_path_raises():
    ctx = ServiceContext("test")
    with pytest.raises(ContextError):
        ctx.get_value("nope")


def test_missing_path_default():
    ctx = ServiceContext()
    assert ctx.get_value("nope", default="d") == "d"


def test_malformed_paths_rejected():
    ctx = ServiceContext()
    for bad in ("", "/lead", "trail/", "a//b"):
        with pytest.raises(ValueError):
            ctx.put_value(bad, 1)


def test_has_path_and_contains():
    ctx = ServiceContext()
    ctx.put_value("x", 1)
    assert ctx.has_path("x")
    assert "x" in ctx
    assert "y" not in ctx


def test_paths_sorted():
    ctx = ServiceContext()
    ctx.put_value("b", 2)
    ctx.put_value("a", 1)
    assert ctx.paths() == ["a", "b"]


def test_remove():
    ctx = ServiceContext()
    ctx.put_in_value("x", 1)
    ctx.remove("x")
    assert "x" not in ctx
    assert ctx.in_paths() == []


def test_in_out_markings():
    ctx = ServiceContext()
    ctx.put_in_value("in/a", 1)
    ctx.put_out_value("out/b")
    assert ctx.in_paths() == ["in/a"]
    assert ctx.out_paths() == ["out/b"]


def test_mark_unknown_path_raises():
    ctx = ServiceContext()
    with pytest.raises(ContextError):
        ctx.mark_in("ghost")


def test_return_value_default_path():
    ctx = ServiceContext()
    ctx.set_return_value(3.5)
    assert ctx.get_return_value() == 3.5
    assert ctx.get_value("result/value") == 3.5


def test_return_path_customizable():
    ctx = ServiceContext()
    ctx.set_return_path("sensor/avg")
    ctx.set_return_value(20.0)
    assert ctx.get_value("sensor/avg") == 20.0


def test_subcontext_relativizes():
    ctx = ServiceContext()
    ctx.put_value("sensor/temp/value", 21.0)
    ctx.put_value("sensor/temp/unit", "C")
    ctx.put_value("other/x", 9)
    sub = ctx.subcontext("sensor/temp")
    assert sub.get_value("value") == 21.0
    assert sub.get_value("unit") == "C"
    assert "other/x" not in sub


def test_merge_with_prefix():
    a = ServiceContext()
    b = ServiceContext()
    b.put_in_value("v", 1)
    a.merge(b, prefix="child")
    assert a.get_value("child/v") == 1
    assert a.in_paths() == ["child/v"]


def test_copy_is_deep():
    ctx = ServiceContext()
    ctx.put_value("list", [1, 2])
    dup = ctx.copy()
    dup.get_value("list").append(3)
    assert ctx.get_value("list") == [1, 2]


def test_iteration_yields_sorted_items():
    ctx = ServiceContext()
    ctx.put_value("b", 2)
    ctx.put_value("a", 1)
    assert list(ctx) == [("a", 1), ("b", 2)]


def test_len():
    ctx = ServiceContext()
    assert len(ctx) == 0
    ctx.put_value("a", 1)
    assert len(ctx) == 1


def test_constructor_data():
    ctx = ServiceContext(data={"a/b": 1, "c": 2})
    assert ctx.get_value("a/b") == 1
    assert ctx.get_value("c") == 2
