"""Provider dispatch + federated method invocation (exert)."""

import pytest

from repro.net import Host
from repro.sorcer import (
    Exerter,
    ExertionStatus,
    ServiceContext,
    ServiceProvider,
    Signature,
    Task,
    Tasker,
)


class AdderProvider(Tasker):
    SERVICE_TYPES = ("Arithmetic",)

    def __init__(self, host, name="Adder", **kw):
        super().__init__(host, name, **kw)
        self.add_operation("add", self._add)
        self.add_operation("slow_add", self._slow_add)
        self.add_operation("explode", self._explode)

    def _add(self, ctx):
        return ctx.get_value("arg/a") + ctx.get_value("arg/b")

    def _slow_add(self, ctx):
        yield self.env.timeout(1.0)
        return ctx.get_value("arg/a") + ctx.get_value("arg/b")

    def _explode(self, ctx):
        raise RuntimeError("op failure")


def add_task(name="t", selector="add", a=2, b=3):
    ctx = ServiceContext()
    ctx.put_in_value("arg/a", a)
    ctx.put_in_value("arg/b", b)
    return Task(name, Signature("Arithmetic", selector), ctx)


def start_provider(net, host_name="provider-host", name="Adder"):
    host = Host(net, host_name)
    provider = AdderProvider(host, name)
    provider.start()
    return host, provider


def test_exert_task_end_to_end(grid):
    env, net, lus = grid
    start_provider(net)
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)  # allow join
        result = yield env.process(exerter.exert(add_task()))
        return result

    p = env.process(proc())
    result = env.run(until=p)
    assert result.status is ExertionStatus.DONE
    assert result.get_return_value() == 5


def test_exert_records_trace(grid):
    env, net, lus = grid
    start_provider(net)
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(add_task()))
        return result

    result = env.run(until=env.process(proc()))
    assert len(result.trace) == 1
    rec = result.trace[0]
    assert rec.provider == "Adder"
    assert rec.host == "provider-host"
    assert rec.finished_at >= rec.started_at


def test_exert_does_not_mutate_requestor_copy(grid):
    env, net, lus = grid
    start_provider(net)
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)
    original = add_task()

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(original))
        return result

    result = env.run(until=env.process(proc()))
    assert original.status is ExertionStatus.INITIAL
    assert "result/value" not in original.context
    assert result is not original


def test_generator_operation_takes_time(grid):
    env, net, lus = grid
    start_provider(net)
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)
        started = env.now
        result = yield env.process(exerter.exert(add_task(selector="slow_add")))
        return result, env.now - started

    result, elapsed = env.run(until=env.process(proc()))
    assert result.get_return_value() == 5
    assert elapsed >= 1.0


def test_op_exception_marks_exertion_failed(grid):
    env, net, lus = grid
    start_provider(net)
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(add_task(selector="explode")))
        return result

    result = env.run(until=env.process(proc()))
    assert result.status is ExertionStatus.FAILED
    assert "op failure" in result.exceptions[0]


def test_unknown_selector_fails(grid):
    env, net, lus = grid
    start_provider(net)
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(add_task(selector="divide")))
        return result

    result = env.run(until=env.process(proc()))
    assert result.is_failed
    assert "divide" in result.exceptions[0]


def test_no_provider_fails_after_wait(grid):
    env, net, lus = grid
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)
    task = add_task()
    task.control.provider_wait = 2.0

    def proc():
        result = yield env.process(exerter.exert(task))
        return result, env.now

    result, when = env.run(until=env.process(proc()))
    assert result.is_failed
    assert "no provider" in result.exceptions[0]
    assert when >= 2.0


def test_failover_to_equivalent_provider(grid):
    """Paper §V.A: unavailable service -> request passed to equivalent one."""
    env, net, lus = grid
    h1, p1 = start_provider(net, "ph-1", "Adder-1")
    h2, p2 = start_provider(net, "ph-2", "Adder-2")
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)
        h1.fail()  # first candidate silently dead, lease not yet expired
        task = add_task()
        task.control.invocation_timeout = 1.0
        result = yield env.process(exerter.exert(task))
        return result

    result = env.run(until=env.process(proc()))
    assert result.status is ExertionStatus.DONE
    assert result.get_return_value() == 5
    # Executed by whichever provider was alive.
    assert result.trace[0].provider in ("Adder-1", "Adder-2")
    assert result.trace[0].host == "ph-2"


def test_exert_by_provider_name(grid):
    env, net, lus = grid
    start_provider(net, "ph-1", "Adder-1")
    start_provider(net, "ph-2", "Adder-2")
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)
        ctx = ServiceContext()
        ctx.put_in_value("arg/a", 1)
        ctx.put_in_value("arg/b", 1)
        task = Task("t", Signature("Arithmetic", "add", provider_name="Adder-2"), ctx)
        result = yield env.process(exerter.exert(task))
        return result

    result = env.run(until=env.process(proc()))
    assert result.trace[0].provider == "Adder-2"


def test_provider_stats_count_served(grid):
    env, net, lus = grid
    host, provider = start_provider(net)
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)
        for _ in range(3):
            yield env.process(exerter.exert(add_task()))
        yield env.process(exerter.exert(add_task(selector="explode")))

    env.run(until=env.process(proc()))
    assert provider.stats["served"] == 3
    assert provider.stats["failed"] == 1


def test_wrong_service_type_rejected(grid):
    env, net, lus = grid
    start_provider(net)
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)
        task = Task("t", Signature("Servicer", "add"), ServiceContext())
        task.control.provider_wait = 1.0
        result = yield env.process(exerter.exert(task))
        return result

    # Providers all implement Servicer so it *will* find one, then the
    # provider itself accepts (Servicer in service_types) but lacks data.
    result = env.run(until=env.process(proc()))
    assert result.is_failed  # no arg/a in context -> ContextError captured


def test_duplicate_operation_rejected(grid):
    env, net, lus = grid
    host = Host(net, "ph")
    provider = AdderProvider(host, "A")
    with pytest.raises(ValueError):
        provider.add_operation("add", lambda ctx: 0)


def test_destroy_leaves_network(grid):
    env, net, lus = grid
    host, provider = start_provider(net)
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)

    def proc():
        yield env.timeout(2.0)
        yield env.process(provider.destroy())
        task = add_task()
        task.control.provider_wait = 1.0
        result = yield env.process(exerter.exert(task))
        return result

    result = env.run(until=env.process(proc()))
    assert result.is_failed
