"""Exertion/Task/Job object model (no network involved)."""

import pytest

from repro.sorcer import (
    ExertionStatus,
    Job,
    ServiceContext,
    Signature,
    Strategy,
    Task,
)
from repro.jini import Name


def sig(selector="getValue"):
    return Signature("SensorDataAccessor", selector)


def test_task_defaults():
    t = Task("t1", sig())
    assert t.status is ExertionStatus.INITIAL
    assert not t.is_done and not t.is_failed
    assert t.context.name == "t1-ctx"


def test_report_exception_sets_failed():
    t = Task("t1", sig())
    t.report_exception(ValueError("x"))
    assert t.is_failed
    assert "x" in t.exceptions[0]


def test_copy_is_independent():
    t = Task("t1", sig())
    t.context.put_value("a", [1])
    dup = t.copy()
    dup.context.get_value("a").append(2)
    dup.status = ExertionStatus.DONE
    assert t.context.get_value("a") == [1]
    assert t.status is ExertionStatus.INITIAL


def test_job_add_and_component():
    job = Job("j")
    t1, t2 = Task("t1", sig()), Task("t2", sig())
    job.add(t1).add(t2)
    assert job.component("t2") is t2
    with pytest.raises(KeyError):
        job.component("missing")


def test_job_duplicate_component_name_rejected():
    job = Job("j")
    job.add(Task("t", sig()))
    with pytest.raises(ValueError):
        job.add(Task("t", sig()))


def test_pipe_validation_unknown_endpoint():
    job = Job("j", [Task("a", sig()), Task("b", sig())])
    with pytest.raises(KeyError):
        job.pipe("a", "p", "ghost", "q")


def test_pipe_must_flow_forward():
    job = Job("j", [Task("a", sig()), Task("b", sig())])
    with pytest.raises(ValueError):
        job.pipe("b", "p", "a", "q")
    job.pipe("a", "result/value", "b", "input/x")  # forward is fine
    assert len(job.pipes) == 1


def test_signature_template_includes_name_and_type():
    s = Signature("SensorDataAccessor", "getValue", provider_name="Neem-Sensor")
    template = s.template()
    assert template.types == ("SensorDataAccessor",)
    assert Name("Neem-Sensor") in template.attributes


def test_signature_str():
    assert str(sig()) == "SensorDataAccessor#getValue@*"
    assert "Neem" in str(Signature("X", "y", provider_name="Neem"))


def test_job_strategy_default_sequential():
    assert Job("j").control.strategy is Strategy.SEQUENTIAL


def test_get_return_value_shortcut():
    t = Task("t", sig())
    t.context.set_return_value(7)
    assert t.get_return_value() == 7
    assert Task("u", sig()).get_return_value() is None
