"""Property-based tests for ServiceContext structure operations."""

from hypothesis import given, strategies as st

from repro.sorcer import ServiceContext

segment = st.text(alphabet="abcdefg", min_size=1, max_size=4)
paths = st.builds("/".join, st.lists(segment, min_size=1, max_size=4))
values = st.one_of(st.integers(), st.floats(allow_nan=False),
                   st.text(max_size=8))


@given(st.dictionaries(paths, values, max_size=12))
def test_put_get_roundtrip(data):
    ctx = ServiceContext(data=data)
    for path, value in data.items():
        assert ctx.get_value(path) == value
    assert len(ctx) == len(data)


@given(st.dictionaries(paths, values, max_size=12), segment)
def test_merge_with_prefix_relocates_everything(data, prefix):
    source = ServiceContext(data=data)
    target = ServiceContext()
    target.merge(source, prefix=prefix)
    for path, value in data.items():
        assert target.get_value(f"{prefix}/{path}") == value
    assert len(target) == len(data)


@given(st.dictionaries(paths, values, min_size=1, max_size=12), segment)
def test_merge_then_subcontext_roundtrip(data, prefix):
    source = ServiceContext(data=data)
    target = ServiceContext()
    target.merge(source, prefix=prefix)
    back = target.subcontext(prefix)
    for path, value in data.items():
        assert back.get_value(path) == value


@given(st.dictionaries(paths, values, max_size=12))
def test_copy_independent(data):
    ctx = ServiceContext(data=data)
    dup = ctx.copy()
    for path in list(data):
        dup.remove(path)
    for path, value in data.items():
        assert ctx.get_value(path) == value


@given(st.dictionaries(paths, values, max_size=12))
def test_paths_sorted_and_complete(data):
    ctx = ServiceContext(data=data)
    assert ctx.paths() == sorted(data.keys())


@given(st.dictionaries(paths, values, max_size=8),
       st.dictionaries(paths, values, max_size=8))
def test_merge_without_prefix_is_overwrite_union(a, b):
    ctx = ServiceContext(data=a)
    ctx.merge(ServiceContext(data=b))
    expected = {**a, **b}
    assert ctx.as_dict() == expected
