"""ServiceProvider lifecycle details: attributes, operations, join helper."""

import pytest

from repro.net import Host
from repro.jini import Comment, Name, ServiceTemplate
from repro.sorcer import ServiceProvider, Tasker, join_service


class MiniProvider(Tasker):
    SERVICE_TYPES = ("Mini",)

    def __init__(self, host, name, **kw):
        super().__init__(host, name, **kw)
        self.add_operation("noop", lambda ctx: None)
        self.add_operation("other", lambda ctx: 1)


def test_operations_listing(grid):
    env, net, lus = grid
    provider = MiniProvider(Host(net, "p-host"), "Mini-1")
    assert provider.operations() == ["noop", "other"]


def test_service_types_mro_and_extras(grid):
    env, net, lus = grid
    provider = MiniProvider(Host(net, "p-host"), "Mini-1",
                            service_types=("Extra",))
    assert provider.service_types[0] == "Servicer"
    assert "Tasker" in provider.service_types
    assert "Mini" in provider.service_types
    assert "Extra" in provider.service_types
    # The exported proxy carries all of them.
    for t in provider.service_types:
        assert provider.ref.implements(t)


def test_attributes_include_name_and_extras(grid):
    env, net, lus = grid
    provider = MiniProvider(Host(net, "p-host"), "Mini-1",
                            attributes=(Comment("hello"),))
    attrs = provider.attributes()
    assert Name("Mini-1") in attrs
    assert Comment("hello") in attrs


def test_update_attributes_propagates(grid):
    env, net, lus = grid
    provider = MiniProvider(Host(net, "p-host"), "Mini-1",
                            attributes=(Comment("v1"),))
    provider.start()
    env.run(until=3.0)
    provider._extra_attributes = (Comment("v2"),)
    provider.update_attributes()
    env.run(until=6.0)
    items = lus.lookup(ServiceTemplate(attributes=(Comment("v2"),)), 5)
    assert len(items) == 1
    assert lus.lookup(ServiceTemplate(attributes=(Comment("v1"),)), 5) == []


def test_start_idempotent(grid):
    env, net, lus = grid
    provider = MiniProvider(Host(net, "p-host"), "Mini-1")
    provider.start()
    join1 = provider._join
    provider.start()
    assert provider._join is join1
    env.run(until=3.0)
    assert len(lus.lookup(ServiceTemplate.by_name("Mini-1"), 5)) == 1


def test_join_service_helper_registers_plain_object(grid):
    env, net, lus = grid
    host = Host(net, "obj-host")
    from repro.net import rpc_endpoint

    class Plain:
        REMOTE_TYPES = ("PlainThing",)

        def hello(self):
            return "hi"

    ref = rpc_endpoint(host).export(Plain(), "plain")
    join_service(host, ref, net.ids.uuid(), (Name("Plain-1"),))
    env.run(until=3.0)
    items = lus.lookup(ServiceTemplate.by_type("PlainThing"), 5)
    assert len(items) == 1
    assert items[0].name() == "Plain-1"
