"""Exertion space + Spacer + SpaceWorker (PULL dispatch, E-SPACE substrate)."""

import pytest

from repro.net import Host, rpc_endpoint
from repro.jini import Name, TransactionManager
from repro.sorcer import (
    Access,
    EnvelopeState,
    Exerter,
    ExertionStatus,
    ExertionSpace,
    Job,
    ServiceContext,
    Signature,
    SpaceTemplate,
    SpaceWorker,
    Spacer,
    Task,
    Tasker,
    join_service,
)


class MathProvider(Tasker):
    SERVICE_TYPES = ("Arithmetic",)

    def __init__(self, host, name="Math", delay=0.2, **kw):
        super().__init__(host, name, **kw)
        self.delay = delay
        self.add_operation("add", self._add)

    def _add(self, ctx):
        yield self.env.timeout(self.delay)
        return ctx.get_value("arg/a") + ctx.get_value("arg/b")


def add_task(name, a, b):
    ctx = ServiceContext()
    ctx.put_in_value("arg/a", a)
    ctx.put_in_value("arg/b", b)
    return Task(name, Signature("Arithmetic", "add"), ctx)


def make_space(net, host_name="space-host"):
    host = Host(net, host_name)
    space = ExertionSpace(host)
    join_service(host, space.ref, net.ids.uuid(), (Name("Exertion Space"),))
    return host, space


def test_write_then_take(env, net):
    sh, space = make_space(net)

    def proc():
        eid = space.write(add_task("t", 1, 2))
        envelope = yield env.process(
            space.take(SpaceTemplate(service_type="Arithmetic")))
        return eid, envelope

    eid, envelope = env.run(until=env.process(proc()))
    assert envelope.envelope_id == eid
    assert envelope.state is EnvelopeState.TAKEN


def test_take_blocks_until_write(env, net):
    sh, space = make_space(net)

    def taker():
        envelope = yield env.process(space.take(SpaceTemplate(), timeout=50.0))
        return env.now, envelope

    def writer():
        yield env.timeout(5.0)
        space.write(add_task("t", 1, 2))

    p = env.process(taker())
    env.process(writer())
    when, envelope = env.run(until=p)
    assert when >= 5.0
    assert envelope is not None


def test_take_timeout_returns_none(env, net):
    sh, space = make_space(net)

    def proc():
        envelope = yield env.process(space.take(SpaceTemplate(), timeout=1.0))
        return envelope, env.now

    envelope, when = env.run(until=env.process(proc()))
    assert envelope is None
    assert when == pytest.approx(1.0)


def test_template_filters_by_selector(env, net):
    sh, space = make_space(net)

    def proc():
        space.write(add_task("t", 1, 2))
        miss = yield env.process(
            space.take(SpaceTemplate(selector="multiply"), timeout=0.5))
        hit = yield env.process(
            space.take(SpaceTemplate(selector="add"), timeout=0.5))
        return miss, hit

    miss, hit = env.run(until=env.process(proc()))
    assert miss is None
    assert hit is not None


def test_result_roundtrip(env, net):
    sh, space = make_space(net)

    def proc():
        eid = space.write(add_task("t", 1, 2))
        envelope = yield env.process(space.take(SpaceTemplate()))
        done = envelope.task
        done.context.set_return_value(3)
        done.status = ExertionStatus.DONE
        space.write_result(eid, done)
        result = yield env.process(space.take_result(eid))
        return result

    result = env.run(until=env.process(proc()))
    assert result.get_return_value() == 3


def test_txn_abort_restores_envelope(env, net):
    sh, space = make_space(net)
    tm = TransactionManager(Host(net, "txn-host"))
    client = rpc_endpoint(Host(net, "client"))

    def proc():
        space.write(add_task("t", 1, 2))
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "join", created.txn_id, space.ref)
        envelope = yield env.process(
            space.take(SpaceTemplate(), created.txn_id))
        assert envelope is not None
        assert space.pending_count() == 0
        yield client.call(tm.ref, "abort", created.txn_id)
        yield env.timeout(1.0)
        return space.pending_count()

    assert env.run(until=env.process(proc())) == 1


def test_txn_commit_consumes_envelope(env, net):
    sh, space = make_space(net)
    tm = TransactionManager(Host(net, "txn-host"))
    client = rpc_endpoint(Host(net, "client"))

    def proc():
        space.write(add_task("t", 1, 2))
        created = yield client.call(tm.ref, "create", 60.0)
        yield client.call(tm.ref, "join", created.txn_id, space.ref)
        yield env.process(space.take(SpaceTemplate(), created.txn_id))
        yield client.call(tm.ref, "commit", created.txn_id)
        yield env.timeout(1.0)
        return space.pending_count()

    assert env.run(until=env.process(proc())) == 0


def test_txn_lease_expiry_restores_unfinished_take(env, net):
    """A worker that takes and dies loses its txn; the envelope returns."""
    sh, space = make_space(net)
    tm = TransactionManager(Host(net, "txn-host"))
    client = rpc_endpoint(Host(net, "client"))

    def proc():
        space.write(add_task("t", 1, 2))
        created = yield client.call(tm.ref, "create", 2.0)  # short lease
        yield client.call(tm.ref, "join", created.txn_id, space.ref)
        yield env.process(space.take(SpaceTemplate(), created.txn_id))
        # ... worker crashes here; no commit ever happens.
        yield env.timeout(10.0)
        return space.pending_count()

    assert env.run(until=env.process(proc())) == 1


def spacer_stack(env, net, workers=1, use_txn=False):
    """LUS + spacer + space + N worker-backed math providers."""
    from repro.jini import LookupService
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    sh, space = make_space(net)
    Spacer(Host(net, "spacer-host"), result_timeout=30.0).start()
    tm_ref = None
    if use_txn:
        tm = TransactionManager(Host(net, "txn-host"))
        tm_ref = tm.ref
    worker_objs = []
    for i in range(workers):
        host = Host(net, f"worker-{i}")
        provider = MathProvider(host, f"Math-{i}")
        # Short take-transactions: a crashed worker's envelopes come back
        # well before the spacer's result timeout.
        worker = SpaceWorker(provider, space.ref, txn_manager_ref=tm_ref,
                             poll_timeout=1.0, txn_duration=5.0)
        worker.start()
        worker_objs.append((host, provider, worker))
    exerter = Exerter(Host(net, "requestor"))
    return space, exerter, worker_objs


def test_pull_job_through_spacer(env, net):
    space, exerter, workers = spacer_stack(env, net, workers=2)
    job = Job("j", [add_task("t1", 1, 2), add_task("t2", 10, 20)],
              access=Access.PULL)
    job.control.invocation_timeout = 60.0

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(job))
        return result

    result = env.run(until=env.process(proc()))
    assert result.status is ExertionStatus.DONE
    assert result.context.get_value("t1/result/value") == 3
    assert result.context.get_value("t2/result/value") == 30


def test_pull_job_with_transactional_workers(env, net):
    space, exerter, workers = spacer_stack(env, net, workers=2, use_txn=True)
    job = Job("j", [add_task(f"t{i}", i, i) for i in range(4)],
              access=Access.PULL)
    job.control.invocation_timeout = 90.0

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(job))
        return result

    result = env.run(until=env.process(proc()))
    assert result.status is ExertionStatus.DONE
    for i in range(4):
        assert result.context.get_value(f"t{i}/result/value") == 2 * i


def test_worker_crash_recovery_via_txn(env, net):
    """Kill one worker mid-stream; the other finishes every task."""
    space, exerter, workers = spacer_stack(env, net, workers=2, use_txn=True)
    job = Job("j", [add_task(f"t{i}", i, 1) for i in range(6)],
              access=Access.PULL)
    job.control.invocation_timeout = 200.0

    def killer():
        yield env.timeout(2.5)
        workers[0][0].fail()  # worker-0 host dies

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(job))
        return result

    env.process(killer())
    result = env.run(until=env.process(proc()))
    assert result.status is ExertionStatus.DONE
    for i in range(6):
        assert result.context.get_value(f"t{i}/result/value") == i + 1


def test_pull_sequential_job_with_pipes(env, net):
    """Spacer honours SEQUENTIAL strategy and data pipes (like the Jobber)."""
    from repro.sorcer import Strategy
    space, exerter, workers = spacer_stack(env, net, workers=1)
    job = Job("piped", access=Access.PULL, strategy=Strategy.SEQUENTIAL)
    job.add(add_task("first", 3, 4))
    second = add_task("second", 0, 100)  # 'a' gets overwritten by the pipe
    job.add(second)
    job.pipe("first", "result/value", "second", "arg/a")
    job.control.invocation_timeout = 120.0

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(job))
        return result

    result = env.run(until=env.process(proc()))
    assert result.status is ExertionStatus.DONE, result.exceptions
    # first = 3+4 = 7; second = 7 + 100.
    assert result.context.get_value("second/result/value") == 107


def test_pull_parallel_with_pipes_rejected(env, net):
    from repro.sorcer import Strategy
    space, exerter, workers = spacer_stack(env, net, workers=1)
    job = Job("bad", access=Access.PULL, strategy=Strategy.PARALLEL)
    job.add(add_task("a", 1, 1))
    job.add(add_task("b", 2, 2))
    job.pipe("a", "result/value", "b", "arg/a")
    job.control.invocation_timeout = 60.0

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(job))
        return result

    result = env.run(until=env.process(proc()))
    assert result.is_failed
    assert "SEQUENTIAL" in result.exceptions[0]
