"""Jobber: composite exertion execution with strategies and pipes."""

import pytest

from repro.net import Host
from repro.sorcer import (
    Exerter,
    ExertionStatus,
    Job,
    Jobber,
    ServiceContext,
    Signature,
    Strategy,
    Task,
    Tasker,
)


class MathProvider(Tasker):
    SERVICE_TYPES = ("Arithmetic",)

    def __init__(self, host, name="Math", delay=0.5, **kw):
        super().__init__(host, name, **kw)
        self.delay = delay
        self.add_operation("add", self._add)
        self.add_operation("double", self._double)
        self.add_operation("fail", self._fail)

    def _add(self, ctx):
        yield self.env.timeout(self.delay)
        return ctx.get_value("arg/a") + ctx.get_value("arg/b")

    def _double(self, ctx):
        yield self.env.timeout(self.delay)
        return 2 * ctx.get_value("arg/x")

    def _fail(self, ctx):
        raise RuntimeError("deliberate")


def task(name, selector, **args):
    ctx = ServiceContext()
    for key, value in args.items():
        ctx.put_in_value(f"arg/{key}", value)
    return Task(name, Signature("Arithmetic", selector), ctx)


@pytest.fixture
def jobber_grid(grid):
    env, net, lus = grid
    Jobber(Host(net, "jobber-host")).start()
    MathProvider(Host(net, "math-host")).start()
    requestor = Host(net, "requestor")
    exerter = Exerter(requestor)
    return env, net, exerter


def run_job(env, exerter, job, settle=2.0):
    def proc():
        yield env.timeout(settle)
        result = yield env.process(exerter.exert(job))
        return result

    return env.run(until=env.process(proc()))


def test_sequential_job_collects_results(jobber_grid):
    env, net, exerter = jobber_grid
    job = Job("j", [task("t1", "add", a=1, b=2), task("t2", "add", a=10, b=20)])
    result = run_job(env, exerter, job)
    assert result.status is ExertionStatus.DONE
    assert result.context.get_value("t1/result/value") == 3
    assert result.context.get_value("t2/result/value") == 30


def test_pipe_feeds_downstream_task(jobber_grid):
    env, net, exerter = jobber_grid
    j = Job("j", [task("sum", "add", a=3, b=4), task("twice", "double")])
    j.pipe("sum", "result/value", "twice", "arg/x")
    result = run_job(env, exerter, j)
    assert result.status is ExertionStatus.DONE
    assert result.context.get_value("twice/result/value") == 14


def test_parallel_job_overlaps_execution(jobber_grid):
    env, net, exerter = jobber_grid
    seq = Job("seq", [task(f"t{i}", "add", a=i, b=i) for i in range(4)])
    par = Job("par", [task(f"t{i}", "add", a=i, b=i) for i in range(4)],
              strategy=Strategy.PARALLEL)

    def proc():
        yield env.timeout(2.0)
        t0 = env.now
        r1 = yield env.process(exerter.exert(seq))
        seq_elapsed = env.now - t0
        t1 = env.now
        r2 = yield env.process(exerter.exert(par))
        par_elapsed = env.now - t1
        return r1, seq_elapsed, r2, par_elapsed

    r1, seq_elapsed, r2, par_elapsed = env.run(until=env.process(proc()))
    assert r1.status is ExertionStatus.DONE
    assert r2.status is ExertionStatus.DONE
    # 4 tasks x 0.5s each: sequential ~2s, parallel ~0.5s.
    assert seq_elapsed > 3 * par_elapsed


def test_parallel_with_pipes_rejected(jobber_grid):
    env, net, exerter = jobber_grid
    j = Job("j", [task("a", "add", a=1, b=1), task("b", "double")],
            strategy=Strategy.PARALLEL)
    j.pipe("a", "result/value", "b", "arg/x")
    result = run_job(env, exerter, j)
    assert result.is_failed
    assert "SEQUENTIAL" in result.exceptions[0]


def test_component_failure_fails_job_and_skips_rest(jobber_grid):
    env, net, exerter = jobber_grid
    j = Job("j", [task("ok", "add", a=1, b=1), task("bad", "fail"),
                  task("never", "add", a=9, b=9)])
    result = run_job(env, exerter, j)
    assert result.is_failed
    assert result.component("ok").is_done
    assert result.component("bad").is_failed
    assert result.component("never").is_failed
    assert "skipped" in result.component("never").exceptions[0]


def test_nested_job(jobber_grid):
    env, net, exerter = jobber_grid
    inner = Job("inner", [task("i1", "add", a=1, b=1)])
    outer = Job("outer", [inner, task("o1", "add", a=2, b=2)])
    result = run_job(env, exerter, outer)
    assert result.status is ExertionStatus.DONE
    inner_result = result.component("inner")
    assert inner_result.is_done
    assert inner_result.context.get_value("i1/result/value") == 2
    assert result.context.get_value("o1/result/value") == 4


def test_job_without_jobber_fails(grid):
    env, net, lus = grid
    MathProvider(Host(net, "math-host")).start()
    exerter = Exerter(Host(net, "requestor"))
    job = Job("j", [task("t1", "add", a=1, b=2)])
    job.control.provider_wait = 1.0

    def proc():
        yield env.timeout(2.0)
        result = yield env.process(exerter.exert(job))
        return result

    result = env.run(until=env.process(proc()))
    assert result.is_failed
    assert "Jobber" in result.exceptions[0]


def test_empty_job_is_done(jobber_grid):
    env, net, exerter = jobber_grid
    result = run_job(env, exerter, Job("empty"))
    assert result.status is ExertionStatus.DONE
