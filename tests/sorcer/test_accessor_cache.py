"""ServiceAccessor lookup caching."""

import pytest

from repro.net import Host
from repro.sorcer import (
    Exerter,
    ServiceAccessor,
    ServiceContext,
    Signature,
    Task,
    Tasker,
)


class PingProvider(Tasker):
    SERVICE_TYPES = ("Ping",)

    def __init__(self, host, name="Ping", **kw):
        super().__init__(host, name, **kw)
        self.add_operation("ping", lambda ctx: "pong")


def ping_task():
    task = Task("p", Signature("Ping", "ping"), ServiceContext())
    task.control.invocation_timeout = 5.0
    return task


def run_queries(env, net, exerter, count):
    def proc():
        ok = 0
        for _ in range(count):
            result = yield env.process(exerter.exert(ping_task()))
            ok += 1 if result.is_done else 0
        return ok

    return env.run(until=env.process(proc()))


def test_cache_skips_lus_lookups(grid):
    env, net, lus = grid
    PingProvider(Host(net, "p-host")).start()
    env.run(until=3.0)
    client = Host(net, "client")
    accessor = ServiceAccessor(client, cache_ttl=30.0)
    exerter = Exerter(client, accessor=accessor)
    base = net.stats.by_kind["lus-lookup"]["messages"]
    assert run_queries(env, net, exerter, 10) == 10
    lookups = net.stats.by_kind["lus-lookup"]["messages"] - base
    assert lookups == 1  # one lookup request, then 9 cache hits
    assert accessor.cache_hits == 9
    assert accessor.cache_misses == 1


def test_no_cache_by_default(grid):
    env, net, lus = grid
    PingProvider(Host(net, "p-host")).start()
    env.run(until=3.0)
    client = Host(net, "client")
    exerter = Exerter(client)
    base = net.stats.by_kind["lus-lookup"]["messages"]
    assert run_queries(env, net, exerter, 10) == 10
    lookups = net.stats.by_kind["lus-lookup"]["messages"] - base
    assert lookups == 10  # every exert pays a lookup


def test_cache_expires(grid):
    env, net, lus = grid
    PingProvider(Host(net, "p-host")).start()
    env.run(until=3.0)
    client = Host(net, "client")
    accessor = ServiceAccessor(client, cache_ttl=2.0)
    exerter = Exerter(client, accessor=accessor)

    def proc():
        yield env.process(exerter.exert(ping_task()))
        yield env.timeout(5.0)  # past the TTL
        yield env.process(exerter.exert(ping_task()))

    env.run(until=env.process(proc()))
    assert accessor.cache_misses == 2


def test_stale_cache_tolerated_by_failover(grid):
    """A cached proxy to a dead provider: the exerter retries alternates,
    so the query still succeeds while the cache is stale."""
    env, net, lus = grid
    p1 = PingProvider(Host(net, "p-1"), "Ping-1")
    p1.start()
    p2 = PingProvider(Host(net, "p-2"), "Ping-2")
    p2.start()
    env.run(until=3.0)
    client = Host(net, "client")
    accessor = ServiceAccessor(client, cache_ttl=60.0)
    exerter = Exerter(client, accessor=accessor)
    assert run_queries(env, net, exerter, 1) == 1  # fill the cache
    p1.host.fail()
    task = ping_task()
    task.control.invocation_timeout = 0.5
    ok = run_queries(env, net, exerter, 4)
    assert ok == 4  # every query lands on the survivor eventually


def test_invalidate_clears(grid):
    env, net, lus = grid
    PingProvider(Host(net, "p-host")).start()
    env.run(until=3.0)
    client = Host(net, "client")
    accessor = ServiceAccessor(client, cache_ttl=60.0)
    exerter = Exerter(client, accessor=accessor)
    run_queries(env, net, exerter, 2)
    assert accessor.cache_hits == 1
    accessor.invalidate()
    run_queries(env, net, exerter, 1)
    assert accessor.cache_misses == 2
