"""Operation authorization: principals, ACL policies (§IV.D/§VIII)."""

import pytest

from repro.net import Host
from repro.sorcer import (
    AclPolicy,
    AllowAll,
    Exerter,
    ServiceContext,
    Signature,
    Task,
    Tasker,
)


class GuardedProvider(Tasker):
    SERVICE_TYPES = ("Guarded",)

    def __init__(self, host, name="Guarded", **kw):
        super().__init__(host, name, **kw)
        self.add_operation("read", lambda ctx: "data")
        self.add_operation("admin", lambda ctx: "root-data")


def acl():
    return AclPolicy({
        "read": {"*"},
        "admin": {"admin"},
    })


def exert_as(env, net, selector, principal, tag):
    exerter = Exerter(Host(net, f"sec-client-{tag}"))

    def proc():
        yield env.timeout(2.0)
        task = Task("t", Signature("Guarded", selector), ServiceContext(),
                    principal=principal)
        result = yield env.process(exerter.exert(task))
        return result

    return env.run(until=env.process(proc()))


def test_acl_table_semantics():
    policy = acl()
    assert policy.allows("anyone", "read")
    assert policy.allows("admin", "admin")
    assert not policy.allows("anyone", "admin")
    assert not policy.allows("anyone", "unlisted")


def test_acl_selector_wildcard():
    policy = AclPolicy({"*": {"admin"}})
    assert policy.allows("admin", "anything")
    assert not policy.allows("guest", "anything")


def test_allow_all():
    assert AllowAll().allows("anyone", "anything")


def test_open_provider_accepts_anonymous(grid):
    env, net, lus = grid
    GuardedProvider(Host(net, "p-host")).start()
    result = exert_as(env, net, "read", "anonymous", "a")
    assert result.is_done
    assert result.get_return_value() == "data"


def test_guarded_provider_allows_wildcard_read(grid):
    env, net, lus = grid
    GuardedProvider(Host(net, "p-host"), access_policy=acl()).start()
    result = exert_as(env, net, "read", "random-user", "b")
    assert result.is_done


def test_guarded_provider_denies_admin_to_stranger(grid):
    env, net, lus = grid
    GuardedProvider(Host(net, "p-host"), access_policy=acl()).start()
    result = exert_as(env, net, "admin", "random-user", "c")
    assert result.is_failed
    assert "may not invoke" in result.exceptions[0]


def test_guarded_provider_allows_admin_principal(grid):
    env, net, lus = grid
    GuardedProvider(Host(net, "p-host"), access_policy=acl()).start()
    result = exert_as(env, net, "admin", "admin", "d")
    assert result.is_done
    assert result.get_return_value() == "root-data"


def test_denial_counts_as_failure_stat(grid):
    env, net, lus = grid
    provider = GuardedProvider(Host(net, "p-host"), access_policy=acl())
    provider.start()
    exert_as(env, net, "admin", "intruder", "e")
    assert provider.stats["failed"] == 1
    assert provider.stats["served"] == 0


def test_principal_survives_copy():
    task = Task("t", Signature("X", "y"), principal="alice")
    assert task.copy().principal == "alice"
