"""Chaos plans: seed-determinism, canonical JSON, catalog filtering."""

from repro.chaos import FAULT_KINDS, ChaosPlan, FaultEvent, TargetCatalog

CATALOG = TargetCatalog(
    crash_hosts=["alpha", "beta"],
    link_pairs=[("alpha", "hub"), ("beta", "hub")],
    churn_services=["Svc-A", "Svc-B"],
    tenants=["gold", "bronze"])


def test_same_seed_same_plan():
    a = ChaosPlan.generate(7, CATALOG)
    b = ChaosPlan.generate(7, CATALOG)
    assert a.to_json() == b.to_json()
    assert a.events == b.events


def test_different_seeds_differ():
    plans = {ChaosPlan.generate(seed, CATALOG).to_json()
             for seed in range(1, 9)}
    assert len(plans) > 1


def test_json_round_trip_is_identity():
    plan = ChaosPlan.generate(11, CATALOG)
    again = ChaosPlan.from_json(plan.to_json())
    assert again.to_json() == plan.to_json()
    assert again.events == plan.events
    assert (again.seed, again.scenario, again.horizon) == (
        plan.seed, plan.scenario, plan.horizon)


def test_events_fall_in_fault_window():
    for seed in range(1, 21):
        plan = ChaosPlan.generate(seed, CATALOG, horizon=90.0,
                                  min_events=2, max_events=5)
        assert 2 <= len(plan.events) <= 5
        for event in plan.events:
            assert 10.0 <= event.start <= 90.0 * 0.55
            assert event.duration > 0
        # Sorted by (start, kind, target) — a stable execution order.
        keys = [(e.start, e.kind, e.target) for e in plan.events]
        assert keys == sorted(keys)


def test_last_fault_end():
    plan = ChaosPlan(seed=1, scenario="s", horizon=50.0, events=[
        FaultEvent("crash", "a", 10.0, 5.0),
        FaultEvent("crash", "b", 12.0, 9.0),
    ])
    assert plan.last_fault_end == 21.0
    assert plan.replace([]).last_fault_end == 0.0


def test_catalog_filters_unsupported_kinds():
    no_links = TargetCatalog(crash_hosts=["a"], link_pairs=[],
                             churn_services=[])
    assert "partition" not in no_links.kinds
    assert "link_chaos" not in no_links.kinds
    assert "lease_churn" not in no_links.kinds
    assert "tenant-burst" not in no_links.kinds  # no tenant pool
    assert "crash" in no_links.kinds
    assert "txn_abort" in no_links.kinds
    # Generation still works from the reduced pool.
    plan = ChaosPlan.generate(3, no_links)
    assert all(e.kind in no_links.kinds for e in plan.events)


def test_tenantless_catalog_plans_unchanged_by_tenant_burst_kind():
    """Scenarios without a load engine keep their existing plan bytes:
    the tenant-burst kind only enters the pool when tenants exist."""
    tenantless = TargetCatalog(
        crash_hosts=CATALOG.crash_hosts, link_pairs=CATALOG.link_pairs,
        churn_services=CATALOG.churn_services)
    for seed in range(1, 11):
        plan = ChaosPlan.generate(seed, tenantless)
        assert all(e.kind != "tenant-burst" for e in plan.events)


def test_tenant_burst_draw_targets_a_tenant_with_factor():
    import numpy as np
    rng = np.random.default_rng(4)
    for _ in range(20):
        target, params = CATALOG.draw("tenant-burst", rng)
        assert target in ("gold", "bronze")
        assert set(params) == {"factor"}
        assert 4.0 <= params["factor"] <= 12.0


def test_catalog_draw_covers_every_kind():
    import numpy as np
    rng = np.random.default_rng(0)
    for kind in FAULT_KINDS:
        target, params = CATALOG.draw(kind, rng)
        assert isinstance(target, str) and target
        if kind == "link_chaos":
            assert set(params) == {"drop_rate", "dup_rate", "delay", "jitter"}
        elif kind == "lease_churn":
            assert params["interval"] >= 1.0
        elif kind == "slowdown":
            assert params["delay"] >= 0.1
        elif kind == "tenant-burst":
            assert params["factor"] >= 4.0
