"""ChaosLink: hash-based drop/dup/delay decisions and RPC exactly-once
under duplication."""

import numpy as np

from repro.chaos import ChaosLink
from repro.net import FixedLatency, Host, Network, rpc_endpoint
from repro.sim import Environment


def make_net(latency=0.001):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(42),
                  latency=FixedLatency(latency))
    return env, net


def test_drop_rate_one_drops_everything():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(m.payload))
    net.add_link_filter(ChaosLink("a", "b", drop_rate=1.0, salt="t"))
    before = net.stats.dropped
    for i in range(5):
        a.send("b", "p", kind="test", payload=i)
    env.run()
    assert inbox == []
    assert net.stats.dropped == before + 5


def test_dup_rate_one_duplicates_every_message():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(m.payload))
    link = ChaosLink("a", "b", dup_rate=1.0, salt="t")
    net.add_link_filter(link)
    a.send("b", "p", kind="test", payload="x")
    env.run()
    assert inbox == ["x", "x"]
    assert link.duplicated == 1


def test_delay_shifts_delivery():
    env, net = make_net(latency=0.001)
    a, b = Host(net, "a"), Host(net, "b")
    arrivals = []
    b.open_port("p", lambda m: arrivals.append(env.now))
    net.add_link_filter(ChaosLink("a", "b", delay=0.5, salt="t"))
    a.send("b", "p", kind="test", payload=None)
    env.run()
    assert arrivals == [0.501]


def test_unmatched_traffic_untouched():
    env, net = make_net()
    a, b, c = Host(net, "a"), Host(net, "b"), Host(net, "c")
    inbox = []
    c.open_port("p", lambda m: inbox.append(m.payload))
    link = ChaosLink("a", "b", drop_rate=1.0, delay=1.0, salt="t")
    net.add_link_filter(link)
    a.send("c", "p", kind="test", payload="ok")
    env.run()
    assert inbox == ["ok"]
    assert link.dropped == 0


def test_one_sided_match_covers_both_directions():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    b.open_port("p", lambda m: None)
    a.open_port("p", lambda m: None)
    link = ChaosLink("a", drop_rate=1.0, salt="t")  # b=None: everything of a
    net.add_link_filter(link)
    a.send("b", "p", kind="t1", payload=None)
    b.send("a", "p", kind="t2", payload=None)
    env.run()
    assert link.dropped == 2


def test_decisions_are_run_stable():
    """Two identical runs see identical per-message verdicts — decisions
    hash message identity, not stream position."""
    def run_once():
        env, net = make_net()
        a, b = Host(net, "a"), Host(net, "b")
        arrivals = []
        b.open_port("p", lambda m: arrivals.append((m.payload, env.now)))

        def traffic():
            for i in range(20):
                a.send("b", "p", kind="test", payload=i)
                yield env.timeout(0.1)

        net.add_link_filter(ChaosLink("a", "b", drop_rate=0.4, dup_rate=0.3,
                                      jitter=0.05, salt="s"))
        env.process(traffic())
        env.run()
        return arrivals

    assert run_once() == run_once()


def test_distinct_salts_give_independent_verdicts():
    """The same traffic judged under two salts must not share coin flips
    (overlapping chaos windows each get their own decision stream)."""
    from repro.net import Message

    def verdict_bits(salt):
        link = ChaosLink("a", "b", drop_rate=0.5, salt=salt)
        bits = []
        for i in range(64):
            msg = Message(src="a", dst="b", port="p", kind="test",
                          payload=None)
            msg.sent_at = float(i)
            decision = link(msg)
            bits.append(decision is not None and decision.drop)
        return bits

    one, two = verdict_bits("s1"), verdict_bits("s2")
    assert one != two                     # independent streams
    assert verdict_bits("s1") == one      # but each is pure in its inputs
    assert 0 < sum(one) < 64 and 0 < sum(two) < 64


def test_rpc_executes_once_under_duplication():
    """Request duplication must not double-execute the handler, and reply
    duplication must not double-resolve the caller."""
    env, net = make_net()
    server_host, client_host = Host(net, "server"), Host(net, "client")
    server, client = rpc_endpoint(server_host), rpc_endpoint(client_host)

    class Counter:
        REMOTE_TYPES = ("Counter",)

        def __init__(self):
            self.calls = 0

        def bump(self):
            self.calls += 1
            return self.calls

    service = Counter()
    ref = server.export(service, "counter")
    net.add_link_filter(ChaosLink("server", "client", dup_rate=1.0,
                                  salt="dup"))

    def caller():
        results = []
        for _ in range(3):
            value = yield client.call(ref, "bump")
            results.append(value)
        return results

    p = env.process(caller())
    results = env.run(until=p)
    assert service.calls == 3
    assert results == [1, 2, 3]
