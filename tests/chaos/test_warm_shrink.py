"""Warm-restore shrinking: forked probes must agree with cold re-runs.

Seed 5 at a 45s horizon violates health-convergence (the campaign ends
before the last fault's recovery window closes), giving a real failing
plan to shrink both ways. The warm minimum is always cold-validated, so
``mode == "warm"`` certifies the forked probes told the truth.
"""

import pytest

from repro.chaos import (
    CampaignConfig,
    CampaignRunner,
    ChaosPlan,
    FaultEvent,
    WarmSession,
    shrink_failing_seed,
)

pytestmark = pytest.mark.skipif(not WarmSession.supported(),
                                reason="warm restore needs os.fork")

HORIZON = 45.0
FAILING_SEED = 5


def _runner():
    return CampaignRunner(scenario="paper-lab",
                          config=CampaignConfig(horizon=HORIZON))


def test_warm_and_cold_find_the_same_minimum():
    cold, verdict_cold = shrink_failing_seed(_runner(), FAILING_SEED,
                                             max_runs=30)
    warm, verdict_warm = shrink_failing_seed(_runner(), FAILING_SEED,
                                             max_runs=30, warm=True)
    assert cold is not None and warm is not None
    assert not verdict_cold["ok"] and not verdict_warm["ok"]
    assert cold.mode == "cold"
    assert warm.mode in ("warm", "warm-fallback")
    assert warm.plan.to_json() == cold.plan.to_json()


def test_warm_probe_verdict_matches_cold():
    runner = _runner()
    verdict = runner.run_seed(FAILING_SEED)
    assert not verdict["ok"]
    plan = ChaosPlan.from_dict(verdict["plan"])
    session = runner.warm_session(plan)
    probed = session.run_plan(plan)
    cold = _runner().run_plan(plan)
    assert probed["ok"] == cold["ok"]
    assert ([r["name"] for r in probed["invariants"] if not r["ok"]]
            == [r["name"] for r in cold["invariants"] if not r["ok"]])


def test_candidate_before_fork_point_rejected():
    runner = _runner()
    plan = ChaosPlan(seed=0, scenario="paper-lab", horizon=HORIZON, events=[
        FaultEvent("slowdown", "facade-host", 30.0, 5.0)])
    session = runner.warm_session(plan, margin=1.0)
    early = plan.replace([FaultEvent("slowdown", "facade-host", 10.0, 5.0)])
    with pytest.raises(ValueError, match="predates the warm prefix"):
        session.run_plan(early)


def test_empty_plan_has_no_warm_prefix():
    runner = _runner()
    with pytest.raises(ValueError):
        runner.warm_session(ChaosPlan(seed=0, scenario="paper-lab",
                                      horizon=HORIZON, events=[]))
