"""Invariant oracles: each flags its violation class and stays quiet on
healthy records."""

from types import SimpleNamespace

from repro.chaos import ChaosPlan, FaultEvent, RunRecord, builtin_invariants
from repro.chaos.invariants import (
    BreakerLiberation,
    HealthConvergence,
    SimSanity,
    WorkloadAccounting,
)


def make_record(**overrides):
    plan = ChaosPlan(seed=1, scenario="unit", horizon=60.0,
                     events=[FaultEvent("crash", "a", 10.0, 5.0)])
    env = SimpleNamespace(now=60.0, sanitizer=None)
    net = SimpleNamespace(hosts={})
    defaults = dict(env=env, net=net, plan=plan, issued=4, completed=3,
                    failed=1, inflight=0)
    defaults.update(overrides)
    return RunRecord(**defaults)


def test_workload_accounting_clean():
    assert WorkloadAccounting().check(make_record()).ok


def test_workload_accounting_flags_lost_request():
    result = WorkloadAccounting().check(
        make_record(issued=5, completed=3, failed=1, inflight=1))
    assert not result.ok
    assert any("in flight" in v for v in result.violations)
    assert any("issued 5" in v for v in result.violations)


def test_sim_sanity_flags_horizon_overrun():
    record = make_record()
    record.env.now = 120.0
    result = SimSanity().check(record)
    assert not result.ok and "past horizon" in result.violations[0]


def test_sim_sanity_flags_sanitizer_violations():
    record = make_record()
    record.env.sanitizer = SimpleNamespace(violations=["race at t=3"])
    result = SimSanity().check(record)
    assert not result.ok and "sanitizer" in result.violations[0]


class _FakeModel:
    def __init__(self, status, transitions):
        self._status = status
        self.transitions = transitions


def test_health_convergence_clean_within_bound():
    health = SimpleNamespace(model=_FakeModel(
        {"node:a": "UP"},
        [{"t": 12.0, "entity": "node:a", "from": "UP", "to": "DOWN"},
         {"t": 20.0, "entity": "node:a", "from": "DOWN", "to": "UP"}]))
    assert HealthConvergence(windows=25).check(
        make_record(health=health)).ok


def test_health_convergence_flags_unrecovered_entity():
    health = SimpleNamespace(model=_FakeModel(
        {"node:a": "DOWN"},
        [{"t": 12.0, "entity": "node:a", "from": "UP", "to": "DOWN"}]))
    result = HealthConvergence(windows=25).check(make_record(health=health))
    assert not result.ok and "ended DOWN" in result.violations[0]


def test_health_convergence_flags_late_recovery():
    # Fault ends at 15.0; 5 windows of 1.0 → bound 20.0; recovery at 43.
    health = SimpleNamespace(model=_FakeModel(
        {"node:a": "UP"},
        [{"t": 12.0, "entity": "node:a", "from": "UP", "to": "DOWN"},
         {"t": 43.0, "entity": "node:a", "from": "DOWN", "to": "UP"}]))
    result = HealthConvergence(windows=5).check(make_record(health=health))
    assert not result.ok and "only recovered" in result.violations[0]


def _host_with_breaker(breaker):
    registry = SimpleNamespace(_breakers={"svc": breaker})
    return SimpleNamespace(_breaker_registry=registry)


def test_breaker_liberation_flags_wedged_half_open():
    from repro.resilience import CircuitBreaker
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
    breaker.record_failure(0.0)            # -> OPEN at t=0
    assert breaker.try_acquire(11.0)       # -> HALF_OPEN, probe pinned
    # No outcome ever recorded; judged shortly after, before the stale
    # probe becomes reclaimable: wedged.
    record = make_record(net=SimpleNamespace(
        hosts={"h": _host_with_breaker(breaker)}))
    record.env.now = 15.0
    result = BreakerLiberation().check(record)
    assert not result.ok and "wedged half-open" in result.violations[0]


def test_breaker_liberation_accepts_reclaimable_probe():
    from repro.resilience import CircuitBreaker
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
    breaker.record_failure(0.0)
    assert breaker.try_acquire(11.0)
    record = make_record(net=SimpleNamespace(
        hosts={"h": _host_with_breaker(breaker)}))
    record.env.now = 30.0   # 19s of silence > reset_timeout: reclaimable
    assert BreakerLiberation().check(record).ok


def test_builtin_invariants_all_evaluate():
    from repro.chaos import evaluate_invariants
    results = evaluate_invariants(make_record(), builtin_invariants())
    names = [r.name for r in results]
    assert names == ["workload-accounting", "trace-integrity",
                     "txn-atomicity", "space-exactly-once",
                     "health-convergence", "breaker-liberation",
                     "overload-graceful", "sim-sanity"]
    assert all(r.ok for r in results)
    assert all(set(r.to_dict()) == {"name", "ok", "violations"}
               for r in results)


# -- overload-graceful ---------------------------------------------------------


def _load_summary(**overrides):
    """A drained, healthy OpenLoopEngine.summary() shape."""
    summary = {
        "inflight": 0,
        "deadline_max": 2.0,
        "total": {"offered": 100, "completed": 70, "goodput": 65,
                  "rejected": 28, "failed": 2,
                  "latency": {"p50": 0.1, "p95": 0.9, "p99": 1.4},
                  "goodput_rate": 0.65},
    }
    summary["total"].update(overrides.pop("total", {}))
    summary.update(overrides)
    return summary


def _overload_record(load):
    record = make_record()
    if load is not None:
        record.extra["load"] = load
    return record


def test_overload_graceful_vacuous_without_load_engine():
    from repro.chaos import OverloadGraceful
    assert OverloadGraceful().check(_overload_record(None)).ok


def test_overload_graceful_clean():
    from repro.chaos import OverloadGraceful
    assert OverloadGraceful().check(_overload_record(_load_summary())).ok


def test_overload_graceful_flags_lost_requests():
    from repro.chaos import OverloadGraceful
    result = OverloadGraceful().check(_overload_record(
        _load_summary(total={"completed": 60})))  # 60+28+2 != 100
    assert not result.ok and "load accounting" in result.violations[0]


def test_overload_graceful_flags_undrained_inflight():
    from repro.chaos import OverloadGraceful
    result = OverloadGraceful().check(_overload_record(
        _load_summary(inflight=3)))
    assert not result.ok and "still in flight" in result.violations[0]


def test_overload_graceful_flags_unbounded_latency():
    from repro.chaos import OverloadGraceful
    # Default bound = deadline_max + one RPC timeout = 7s.
    result = OverloadGraceful().check(_overload_record(
        _load_summary(total={"latency": {"p50": 1.0, "p95": 5.0,
                                         "p99": 8.5}})))
    assert not result.ok and "p99" in result.violations[0]
    # An explicit bound overrides the deadline-derived one.
    tight = OverloadGraceful(p99_bound=1.0).check(
        _overload_record(_load_summary()))
    assert not tight.ok and "bound 1.000s" in tight.violations[0]


def test_overload_graceful_flags_goodput_collapse():
    from repro.chaos import OverloadGraceful
    result = OverloadGraceful(goodput_floor=0.5).check(_overload_record(
        _load_summary(total={"goodput": 10, "goodput_rate": 0.1})))
    assert not result.ok and "goodput collapsed" in result.violations[0]


def test_overload_graceful_flags_failures_over_ceiling():
    from repro.chaos import OverloadGraceful
    # Shed-as-failure instead of typed rejection: 40 failed of 100.
    result = OverloadGraceful().check(_overload_record(
        _load_summary(total={"completed": 40, "rejected": 20,
                             "failed": 40, "goodput": 38,
                             "goodput_rate": 0.38})))
    assert not result.ok and "typed rejections" in result.violations[0]
