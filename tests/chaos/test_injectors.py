"""InjectorEngine: fault windows flip real state, refcounts compose
overlapping windows, churn storms force lease expiry."""

import numpy as np

from repro.chaos import ChaosPlan, FaultEvent, InjectorEngine
from repro.net import FixedLatency, Host, Network
from repro.sim import Environment


def make_net():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(42),
                  latency=FixedLatency(0.001))
    return env, net


def plan_of(*events, horizon=30.0):
    return ChaosPlan(seed=0, scenario="unit", events=list(events),
                     horizon=horizon)


def test_crash_window_fails_and_recovers_host():
    env, net = make_net()
    host = Host(net, "a")
    engine = InjectorEngine(net)
    engine.apply(plan_of(FaultEvent("crash", "a", 2.0, 3.0)))
    env.run(until=1.0)
    assert host.up
    env.run(until=2.5)
    assert not host.up
    env.run(until=6.0)
    assert host.up
    assert engine.applied["crash"] == 1


def test_overlapping_crashes_refcount():
    """The host recovers only when the *last* overlapping window closes —
    shrinking may keep any subset of events, so windows must compose."""
    env, net = make_net()
    host = Host(net, "a")
    engine = InjectorEngine(net)
    engine.apply(plan_of(FaultEvent("crash", "a", 2.0, 4.0),
                         FaultEvent("crash", "a", 3.0, 6.0)))
    env.run(until=6.5)   # first window ended at 6.0
    assert not host.up   # second still holds the host down
    env.run(until=9.5)
    assert host.up


def test_partition_cuts_and_heals_symmetrically():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(env.now))
    engine = InjectorEngine(net)
    engine.apply(plan_of(FaultEvent("partition", "a|b", 1.0, 2.0)))

    def traffic():
        for _ in range(5):
            a.send("b", "p", kind="t", payload=None)
            yield env.timeout(1.0)

    env.process(traffic())
    env.run()
    # Sends at t=0 and t>=3 arrive; t=1, t=2 fall inside the cut.
    assert [round(t) for t in inbox] == [0, 3, 4]


def test_asymmetric_partition_is_one_way():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    a_inbox, b_inbox = [], []
    a.open_port("p", lambda m: a_inbox.append(m.payload))
    b.open_port("p", lambda m: b_inbox.append(m.payload))
    engine = InjectorEngine(net)
    engine.apply(plan_of(FaultEvent("partition_asym", "a>b", 1.0, 5.0)))

    def traffic():
        yield env.timeout(2.0)   # inside the window
        a.send("b", "p", kind="t", payload="a-to-b")
        b.send("a", "p", kind="t", payload="b-to-a")

    env.process(traffic())
    env.run(until=4.0)
    assert b_inbox == []             # cut direction
    assert a_inbox == ["b-to-a"]     # reverse unaffected
    env.run(until=10.0)
    a.send("b", "p", kind="t", payload="healed")
    env.run()
    assert b_inbox == ["healed"]


def test_link_chaos_window_installs_and_removes_filter():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(env.now))
    engine = InjectorEngine(net, seed=9)
    engine.apply(plan_of(
        FaultEvent("link_chaos", "a|b", 1.0, 2.0,
                   {"drop_rate": 1.0})))

    def traffic():
        for _ in range(5):
            a.send("b", "p", kind="t", payload=None)
            yield env.timeout(1.0)

    env.process(traffic())
    env.run()
    assert [round(t) for t in inbox] == [0, 3, 4]
    assert engine.link_stats()["dropped"] == 2
    assert net._link_filters == []   # removed at window end


def test_slowdown_delays_every_message_of_target():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    arrivals = []
    b.open_port("p", lambda m: arrivals.append(env.now))
    engine = InjectorEngine(net, seed=9)
    engine.apply(plan_of(
        FaultEvent("slowdown", "a", 0.0, 10.0, {"delay": 0.5})))

    def traffic():
        yield env.timeout(1.0)
        a.send("b", "p", kind="t", payload=None)

    env.process(traffic())
    env.run(until=5.0)
    assert arrivals == [1.501]


def test_lease_churn_forces_expiry_each_interval():
    """Each storm beat force-expires the target's registration; the join
    manager re-registers, so the service keeps reappearing."""
    from repro.scenarios.paper_lab import build_paper_lab
    lab = build_paper_lab(seed=2009)
    env = lab.env
    env.run(until=6.0)

    def lookup_count():
        return len([item for item in lab.lus._items.values()
                    if item.name() == "Neem-Sensor"])

    assert lookup_count() == 1
    engine = InjectorEngine(lab.net, lus=lab.lus)
    engine.apply(plan_of(
        FaultEvent("lease_churn", "Neem-Sensor", 8.0, 4.0,
                   {"interval": 1.0}), horizon=40.0))
    env.run(until=8.1)
    assert lookup_count() == 0   # just expired
    env.run(until=30.0)
    assert lookup_count() == 1   # re-registered after the storm
    assert engine.applied["lease_churn"] == 1
