"""Campaign runs: verdict determinism (including under tie-break
shuffling), the pytest harness, and recovery accounting."""

import pytest

from repro.chaos import CampaignRunner, mttr_from_transitions, verdict_json
from repro.chaos.testing import chaos_campaign


def test_verdict_is_byte_identical_across_runs():
    a = CampaignRunner("paper-lab").run_seed(3)
    b = CampaignRunner("paper-lab").run_seed(3)
    assert verdict_json(a) == verdict_json(b)


def test_verdict_is_shuffle_invariant(shuffle_seed):
    """The whole campaign pipeline — plan, injection, invariants, recovery
    accounting — must not depend on same-timestamp tie-break order."""
    shuffled = CampaignRunner("paper-lab").run_seed(3)
    assert verdict_json(shuffled) == _BASELINE


def _baseline():
    import os
    env_key = "REPRO_SHUFFLE_SEED"
    saved = os.environ.pop(env_key, None)
    try:
        return verdict_json(CampaignRunner("paper-lab").run_seed(3))
    finally:
        if saved is not None:
            os.environ[env_key] = saved


_BASELINE = _baseline()


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        CampaignRunner("no-such-lab")


def test_verdict_shape():
    verdict = CampaignRunner("paper-lab").run_seed(5)
    assert set(verdict) == {"seed", "scenario", "ok", "plan", "invariants",
                            "workload", "faults", "recovery"}
    assert verdict["seed"] == 5
    assert verdict["workload"]["issued"] > 0
    counts = verdict["workload"]
    assert counts["issued"] == counts["completed"] + counts["failed"]
    assert set(verdict["recovery"]) == {"incidents", "recovered",
                                        "unrecovered", "mttr"}


@chaos_campaign(seeds=[1, 4])
def test_invariants_hold_via_harness(verdict):
    assert verdict["ok"], [r for r in verdict["invariants"] if not r["ok"]]


def test_mttr_accounting():
    transitions = [
        {"t": 10.0, "entity": "a", "from": "UP", "to": "DOWN"},
        {"t": 12.0, "entity": "a", "from": "DOWN", "to": "DEGRADED"},
        {"t": 16.0, "entity": "a", "from": "DEGRADED", "to": "UP"},
        {"t": 20.0, "entity": "b", "from": "UP", "to": "DEGRADED"},
    ]
    out = mttr_from_transitions(transitions)
    assert out == {"incidents": 2, "recovered": 1, "unrecovered": 1,
                   "mttr": 6.0}


def test_mttr_empty():
    assert mttr_from_transitions([]) == {
        "incidents": 0, "recovered": 0, "unrecovered": 0, "mttr": None}


# -- paper-lab-load: overload under chaos --------------------------------------


def test_load_scenario_verdict_carries_traffic_accounting():
    verdict = CampaignRunner("paper-lab-load").run_seed(1)
    assert set(verdict) == {"seed", "scenario", "ok", "plan", "invariants",
                            "workload", "faults", "recovery", "load"}
    load = verdict["load"]
    total = load["total"]
    assert total["offered"] > 0
    assert total["offered"] == (total["completed"] + total["rejected"]
                                + total["failed"])
    assert load["inflight"] == 0
    assert any(r["name"] == "overload-graceful"
               for r in verdict["invariants"])


def test_load_scenario_verdict_byte_identical_across_runs():
    a = CampaignRunner("paper-lab-load").run_seed(2)
    b = CampaignRunner("paper-lab-load").run_seed(2)
    assert verdict_json(a) == verdict_json(b)


@chaos_campaign(seeds=[1, 2, 3], scenario="paper-lab-load")
def test_overload_invariants_hold_under_chaos(verdict):
    assert verdict["ok"], [r for r in verdict["invariants"] if not r["ok"]]
