"""Shrinking: ddmin over events, attribute narrowing, and an end-to-end
shrink of a real failing campaign down to a minimal replayable plan."""

from repro.chaos import (
    CampaignRunner,
    ChaosPlan,
    FaultEvent,
    shrink_failing_seed,
    shrink_plan,
)
from repro.chaos.invariants import Invariant


def plan_with(kinds):
    events = [FaultEvent(kind, f"t{i}", 10.0 + i, 2.0)
              for i, kind in enumerate(kinds)]
    return ChaosPlan(seed=0, scenario="unit", events=events, horizon=60.0)


def test_ddmin_isolates_single_culprit():
    plan = plan_with(["crash", "partition", "lease_churn", "txn_abort",
                      "slowdown", "partition"])
    runs = []

    def fails(candidate):
        runs.append(candidate)
        return any(e.kind == "lease_churn" for e in candidate.events)

    result = shrink_plan(plan, fails)
    assert [e.kind for e in result.plan.events] == ["lease_churn"]
    assert result.removed_events == 5
    assert not result.exhausted
    assert result.runs == len(set(p.to_json() for p in runs))


def test_ddmin_keeps_interacting_pair():
    plan = plan_with(["crash", "partition", "lease_churn", "slowdown"])

    def fails(candidate):
        kinds = {e.kind for e in candidate.events}
        return {"crash", "slowdown"} <= kinds

    result = shrink_plan(plan, fails)
    assert sorted(e.kind for e in result.plan.events) == ["crash", "slowdown"]


def test_attribute_shrinking_narrows_duration_and_params():
    plan = ChaosPlan(seed=0, scenario="unit", horizon=60.0, events=[
        FaultEvent("link_chaos", "a|b", 10.0, 8.0,
                   {"drop_rate": 0.2, "dup_rate": 0.16})])

    def fails(candidate):
        event = candidate.events[0]
        return event.params["drop_rate"] >= 0.05

    result = shrink_plan(plan, fails)
    event = result.plan.events[0]
    assert event.duration == 1.0                  # halved to the floor
    assert 0.05 <= event.params["drop_rate"] < 0.2
    assert event.params["dup_rate"] == 0.0        # irrelevant knob zeroed


def test_budget_exhaustion_returns_best_so_far():
    plan = plan_with(["crash"] * 8)

    def fails(candidate):
        return sum(e.kind == "crash" for e in candidate.events) >= 2

    result = shrink_plan(plan, fails, max_runs=3)
    assert result.exhausted
    assert len(result.plan.events) >= 2   # not fully minimized, still failing


class CrashForbidden(Invariant):
    """A deliberately-broken oracle: any applied crash is a violation.

    Stands in for a buggy build — it makes seeds whose plans contain a
    crash fail, so the shrinker has something real to minimize through
    full campaign re-runs.
    """

    name = "no-crash"

    def violations(self, record):
        return [f"crash on {event.target}"
                for event in record.plan.events if event.kind == "crash"]


def test_end_to_end_shrink_produces_minimal_replayable_plan():
    # Seed 12's plan is crash + slowdown + link_chaos + partition_asym;
    # under the broken oracle only the crash matters.
    runner = CampaignRunner("paper-lab", invariants=[CrashForbidden()])
    result, verdict = shrink_failing_seed(runner, 12, max_runs=30)
    assert not verdict["ok"]
    assert result is not None
    assert len(result.plan.events) <= 3
    assert [e.kind for e in result.plan.events] == ["crash"]
    # The minimal plan replays to the same verdict class, bit-for-bit.
    replay = runner.run_plan(ChaosPlan.from_json(result.plan.to_json()))
    assert not replay["ok"]
    assert [r["name"] for r in replay["invariants"] if not r["ok"]] == [
        "no-crash"]
    again = runner.run_plan(ChaosPlan.from_json(result.plan.to_json()))
    import json
    assert (json.dumps(replay, sort_keys=True)
            == json.dumps(again, sort_keys=True))


def test_passing_seed_returns_none():
    runner = CampaignRunner("paper-lab")
    result, verdict = shrink_failing_seed(runner, 3, max_runs=5)
    assert result is None
    assert verdict["ok"]
