"""Integration tests for Network + Host delivery semantics."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import (
    BernoulliLoss,
    FixedLatency,
    Host,
    HostDownError,
    Network,
    Protocol,
    UnreachableError,
)


def make_net(latency=0.001):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(42),
                  latency=FixedLatency(latency))
    return env, net


def test_unicast_delivery():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append((m.payload, env.now)))
    a.send("b", "p", kind="test", payload="hello")
    env.run()
    assert inbox == [("hello", 0.001)]


def test_duplicate_host_name_rejected():
    env, net = make_net()
    Host(net, "a")
    with pytest.raises(ValueError):
        Host(net, "a")


def test_unknown_destination_raises():
    env, net = make_net()
    a = Host(net, "a")
    with pytest.raises(UnreachableError):
        a.send("ghost", "p", kind="test")


def test_down_sender_cannot_send():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    a.fail()
    with pytest.raises(HostDownError):
        a.send("b", "p", kind="test")


def test_down_receiver_drops_message():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(m.payload))
    b.fail()
    a.send("b", "p", kind="test", payload=1)
    env.run()
    assert inbox == []
    assert net.stats.dropped == 1


def test_receiver_crash_mid_flight_drops():
    env, net = make_net(latency=1.0)
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(m.payload))
    a.send("b", "p", kind="test", payload=1)

    def crasher():
        yield env.timeout(0.5)
        b.fail()

    env.process(crasher())
    env.run()
    assert inbox == []


def test_recovered_host_receives_again():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(m.payload))
    b.fail()
    b.recover()
    a.send("b", "p", kind="test", payload="back")
    env.run()
    assert inbox == ["back"]


def test_unopened_port_drops():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    a.send("b", "nobody-listens", kind="test")
    env.run()
    assert net.stats.dropped == 1


def test_partition_blocks_both_directions():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox_a, inbox_b = [], []
    a.open_port("p", lambda m: inbox_a.append(m.payload))
    b.open_port("p", lambda m: inbox_b.append(m.payload))
    net.cut_link("a", "b")
    a.send("b", "p", kind="t", payload=1)
    b.send("a", "p", kind="t", payload=2)
    env.run()
    assert inbox_a == [] and inbox_b == []
    net.heal_link("a", "b")
    a.send("b", "p", kind="t", payload=3)
    env.run()
    assert inbox_b == [3]


def test_group_partition_helper():
    env, net = make_net()
    hosts = [Host(net, f"h{i}") for i in range(4)]
    net.partition(["h0", "h1"], ["h2", "h3"])
    assert not net.reachable("h0", "h2")
    assert not net.reachable("h1", "h3")
    assert net.reachable("h0", "h1")
    assert net.reachable("h2", "h3")
    net.heal_partition(["h0", "h1"], ["h2", "h3"])
    assert net.reachable("h0", "h3")


def test_multicast_delivers_to_members_not_sender():
    env, net = make_net()
    hosts = {n: Host(net, n) for n in ("a", "b", "c", "d")}
    received = {n: [] for n in hosts}
    for n, h in hosts.items():
        h.open_port("disc", lambda m, n=n: received[n].append(m.payload))
    for n in ("a", "b", "c"):
        hosts[n].join_group("g")
    sent = hosts["a"].multicast("g", "disc", kind="announce", payload="hi")
    env.run()
    assert sent == 2
    assert received["b"] == ["hi"]
    assert received["c"] == ["hi"]
    assert received["a"] == []
    assert received["d"] == []


def test_leave_group_stops_delivery():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(m.payload))
    b.join_group("g")
    b.leave_group("g")
    a.multicast("g", "p", kind="t", payload=1)
    env.run()
    assert inbox == []


def test_traffic_stats_accumulate():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    b.open_port("p", lambda m: None)
    a.send("b", "p", kind="data", payload="x" * 100)
    a.send("b", "p", kind="data", payload="y" * 100)
    a.send("b", "p", kind="ctl", payload=1)
    env.run()
    snap = net.stats.snapshot()
    assert snap["messages"] == 3
    assert snap["by_kind"]["data"]["messages"] == 2
    assert snap["by_kind"]["ctl"]["messages"] == 1
    assert snap["header_bytes"] == 3 * 52  # three TCP messages
    assert snap["payload_bytes"] >= 208


def test_loss_model_drops_fraction():
    env = Environment()
    rng = np.random.default_rng(7)
    net = Network(env, rng=rng, latency=FixedLatency(0.001),
                  loss=BernoulliLoss(rng, 0.5))
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(m.payload))
    for i in range(200):
        a.send("b", "p", kind="t", payload=i)
    env.run()
    # About half get through (seeded, so the exact count is stable).
    assert 70 <= len(inbox) <= 130
    assert net.stats.dropped == 200 - len(inbox)


def test_delivery_order_preserved_with_fixed_latency():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(m.payload))
    for i in range(10):
        a.send("b", "p", kind="t", payload=i)
    env.run()
    assert inbox == list(range(10))


def test_lan_latency_deterministic_with_seed():
    def run_once():
        env = Environment()
        net = Network(env, rng=np.random.default_rng(123))
        a, b = Host(net, "a"), Host(net, "b")
        times = []
        b.open_port("p", lambda m: times.append(env.now))
        for i in range(5):
            a.send("b", "p", kind="t", payload=i)
        env.run()
        return times

    assert run_once() == run_once()


def test_on_recover_callbacks():
    env, net = make_net()
    a = Host(net, "a")
    events = []
    a.on_fail(lambda h: events.append("fail"))
    a.on_recover(lambda h: events.append("recover"))
    a.fail()
    a.fail()      # idempotent: no second callback
    a.recover()
    a.recover()   # idempotent
    assert events == ["fail", "recover"]


def test_close_port_and_reopen():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    inbox = []
    b.open_port("p", lambda m: inbox.append(m.payload))
    with pytest.raises(ValueError):
        b.open_port("p", lambda m: None)  # duplicate
    b.close_port("p")
    a.send("b", "p", kind="t", payload=1)
    env.run()
    assert inbox == []  # closed port drops
    b.open_port("p", lambda m: inbox.append(m.payload))
    a.send("b", "p", kind="t", payload=2)
    env.run()
    assert inbox == [2]


def test_store_peek_all_nondestructive():
    from repro.sim import Environment, Store
    env = Environment()
    store = Store(env)

    def proc():
        yield store.put("x")
        yield store.put("y")
        snapshot = store.peek_all()
        item = yield store.get()
        return snapshot, item, store.peek_all()

    snapshot, item, after = env.run(until=env.process(proc()))
    assert snapshot == ["x", "y"]
    assert item == "x"
    assert after == ["y"]
