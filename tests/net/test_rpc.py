"""Tests for the RPC layer."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import (
    FixedLatency,
    Host,
    Network,
    NoSuchObjectError,
    RemoteError,
    RemoteRef,
    RpcTimeout,
    rpc_endpoint,
)


class Calculator:
    REMOTE_TYPES = ("Calculator",)

    def add(self, a, b):
        return a + b

    def boom(self):
        raise ValueError("server exploded")

    def _secret(self):
        return "hidden"


class SlowService:
    def __init__(self, env, delay):
        self.env = env
        self.delay = delay

    def work(self, x):
        yield self.env.timeout(self.delay)
        return x * 2


def setup():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(1), latency=FixedLatency(0.001))
    server_host = Host(net, "server")
    client_host = Host(net, "client")
    server = rpc_endpoint(server_host)
    client = rpc_endpoint(client_host)
    return env, net, server_host, client_host, server, client


def test_simple_call():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")

    def caller():
        result = yield client.call(ref, "add", 2, 3)
        return result

    p = env.process(caller())
    assert env.run(until=p) == 5


def test_call_roundtrip_takes_two_hops():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")

    def caller():
        yield client.call(ref, "add", 1, 1)
        return env.now

    p = env.process(caller())
    assert env.run(until=p) == pytest.approx(0.002)


def test_remote_exception_wrapped():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")

    def caller():
        try:
            yield client.call(ref, "boom")
        except RemoteError as exc:
            return type(exc.cause).__name__

    p = env.process(caller())
    assert env.run(until=p) == "ValueError"


def test_generator_method_runs_as_process():
    env, net, sh, ch, server, client = setup()
    ref = server.export(SlowService(env, delay=1.0), "slow")

    def caller():
        result = yield client.call(ref, "work", 21)
        return (result, env.now)

    p = env.process(caller())
    result, when = env.run(until=p)
    assert result == 42
    assert when == pytest.approx(1.002)


def test_unknown_object_id():
    env, net, sh, ch, server, client = setup()
    bogus = RemoteRef(host="server", object_id="nope")

    def caller():
        try:
            yield client.call(bogus, "add", 1, 2)
        except NoSuchObjectError:
            return "missing"

    p = env.process(caller())
    assert env.run(until=p) == "missing"


def test_unknown_method():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")

    def caller():
        try:
            yield client.call(ref, "divide", 1, 2)
        except NoSuchObjectError:
            return "no-method"

    p = env.process(caller())
    assert env.run(until=p) == "no-method"


def test_private_method_not_invocable():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")

    def caller():
        try:
            yield client.call(ref, "_secret")
        except NoSuchObjectError:
            return "denied"

    p = env.process(caller())
    assert env.run(until=p) == "denied"


def test_method_allowlist_enforced():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc", methods=["add"])

    def caller():
        try:
            yield client.call(ref, "boom")
        except NoSuchObjectError:
            return "filtered"

    p = env.process(caller())
    assert env.run(until=p) == "filtered"


def test_timeout_on_dead_server():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")
    sh.fail()

    def caller():
        try:
            yield client.call(ref, "add", 1, 2, timeout=0.5)
        except RpcTimeout:
            return env.now

    p = env.process(caller())
    assert env.run(until=p) == pytest.approx(0.5)


def test_late_reply_after_timeout_is_dropped():
    env, net, sh, ch, server, client = setup()
    ref = server.export(SlowService(env, delay=2.0), "slow")

    def caller():
        try:
            yield client.call(ref, "work", 1, timeout=0.5)
        except RpcTimeout:
            pass
        # Keep living past the late reply to ensure it doesn't blow up.
        yield env.timeout(5)
        return "ok"

    p = env.process(caller())
    assert env.run(until=p) == "ok"


def test_unexport_makes_object_unreachable():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")
    server.unexport("calc")

    def caller():
        try:
            yield client.call(ref, "add", 1, 2)
        except NoSuchObjectError:
            return "gone"

    p = env.process(caller())
    assert env.run(until=p) == "gone"


def test_duplicate_export_rejected():
    env, net, sh, ch, server, client = setup()
    server.export(Calculator(), "calc")
    with pytest.raises(ValueError):
        server.export(Calculator(), "calc")


def test_remote_ref_type_names():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")
    assert ref.implements("Calculator")
    assert not ref.implements("Other")


def test_concurrent_calls_multiplex():
    env, net, sh, ch, server, client = setup()
    ref = server.export(SlowService(env, delay=1.0), "slow")
    results = []

    def caller(x):
        r = yield client.call(ref, "work", x)
        results.append(r)

    for i in range(5):
        env.process(caller(i))
    env.run()
    assert sorted(results) == [0, 2, 4, 6, 8]


def test_watchdog_neutralized_when_reply_arrives():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")

    def caller():
        result = yield client.call(ref, "add", 2, 3)
        return result

    p = env.process(caller())
    # The call is in flight: exactly one pending entry with an armed timer.
    env.run(until=env.now)  # let call() run (process starts immediately)
    assert len(client._pending) == 1
    timer = next(iter(client._pending.values())).timer
    assert len(timer.callbacks) == 1
    assert env.run(until=p) == 5
    # Reply arrived: pending map drained and the watchdog defused, so the
    # timer firing at full timeout later is a no-op.
    assert client._pending == {}
    assert timer.callbacks == []
    env.run()  # drain the neutered timer without incident


def test_no_watchdog_process_spawned_per_call():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")
    spawned = []
    original = env.process

    def recording_process(gen, name=None):
        spawned.append(name)
        return original(gen, name=name)

    env.process = recording_process

    def caller():
        result = yield client.call(ref, "add", 4, 4)
        return result

    p = original(caller(), name="caller")
    assert env.run(until=p) == 8
    # Only the caller and the server-side dispatch run as processes; the
    # client-side timeout watchdog must not be one.
    assert not any(name and "timeout" in name for name in spawned if name)


def test_watchdog_still_fires_without_reply():
    env, net, sh, ch, server, client = setup()
    ref = server.export(Calculator(), "calc")
    sh.fail()

    def caller():
        try:
            yield client.call(ref, "add", 1, 2, timeout=0.75)
        except RpcTimeout:
            return ("timed-out", env.now)

    p = env.process(caller())
    assert env.run(until=p) == ("timed-out", pytest.approx(0.75))
    assert client._pending == {}


def test_nested_rpc_server_calls_another_server():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(1), latency=FixedLatency(0.001))
    h1, h2, h3 = Host(net, "h1"), Host(net, "h2"), Host(net, "h3")
    e1, e2, e3 = rpc_endpoint(h1), rpc_endpoint(h2), rpc_endpoint(h3)
    calc_ref = e3.export(Calculator(), "calc")

    class Middle:
        def relay(self, a, b):
            result = yield e2.call(calc_ref, "add", a, b)
            return result + 100

    mid_ref = e2.export(Middle(), "mid")

    def caller():
        result = yield e1.call(mid_ref, "relay", 1, 2)
        return result

    p = env.process(caller())
    assert env.run(until=p) == 103
