"""RPC behaviour on a lossy network: timeouts, retries at the caller."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import (
    BernoulliLoss,
    FixedLatency,
    Host,
    Network,
    RpcTimeout,
    rpc_endpoint,
)


class Echo:
    def __init__(self):
        self.calls = 0

    def echo(self, x):
        self.calls += 1
        return x


def lossy_setup(probability, seed=3):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(seed),
                  latency=FixedLatency(0.001),
                  loss=BernoulliLoss(np.random.default_rng(seed + 1),
                                     probability))
    server_host, client_host = Host(net, "server"), Host(net, "client")
    server, client = rpc_endpoint(server_host), rpc_endpoint(client_host)
    echo = Echo()
    ref = server.export(echo, "echo")
    return env, net, echo, ref, client


def test_lossless_calls_never_time_out():
    env, net, echo, ref, client = lossy_setup(0.0)

    def proc():
        for i in range(50):
            result = yield client.call(ref, "echo", i, timeout=1.0)
            assert result == i
        return echo.calls

    assert env.run(until=env.process(proc())) == 50


def test_lossy_calls_time_out_sometimes():
    env, net, echo, ref, client = lossy_setup(0.3)
    outcomes = {"ok": 0, "timeout": 0}

    def proc():
        for i in range(100):
            try:
                yield client.call(ref, "echo", i, timeout=0.5)
                outcomes["ok"] += 1
            except RpcTimeout:
                outcomes["timeout"] += 1

    env.run(until=env.process(proc()))
    # ~49% of round trips lose at least one leg at p=0.3.
    assert outcomes["timeout"] > 20
    assert outcomes["ok"] > 20


def test_caller_retry_loop_converges():
    env, net, echo, ref, client = lossy_setup(0.3)

    def call_with_retries(value, attempts=10):
        for _ in range(attempts):
            try:
                result = yield client.call(ref, "echo", value, timeout=0.5)
                return result
            except RpcTimeout:
                continue
        raise AssertionError("never got through")

    def proc():
        results = []
        for i in range(20):
            results.append((yield from call_with_retries(i)))
        return results

    assert env.run(until=env.process(proc())) == list(range(20))


def test_lost_request_vs_lost_reply_both_surface_as_timeout():
    """The caller cannot distinguish them — and the server may have
    executed the call (at-most-once is NOT guaranteed by retries)."""
    env, net, echo, ref, client = lossy_setup(0.4, seed=9)

    def proc():
        timeouts = 0
        for i in range(60):
            try:
                yield client.call(ref, "echo", i, timeout=0.5)
            except RpcTimeout:
                timeouts += 1
        return timeouts

    timeouts = env.run(until=env.process(proc()))
    successes = 60 - timeouts
    # Server-side executions >= client-observed successes: lost *replies*
    # executed server-side but timed out client-side.
    assert echo.calls >= successes
    assert echo.calls > successes  # with p=0.4 over 60 calls, certain (seeded)
