"""Unit tests for wire-size estimation."""

from dataclasses import dataclass

from repro.net.wire import Protocol, estimate_size, header_size, WireSized


def test_scalar_sizes():
    assert estimate_size(None) == 1
    assert estimate_size(True) == 1
    assert estimate_size(7) == 8
    assert estimate_size(3.14) == 8


def test_string_size_scales_with_length():
    assert estimate_size("ab") == 4 + 2
    assert estimate_size("a" * 100) == 4 + 100


def test_unicode_counts_encoded_bytes():
    assert estimate_size("é") == 4 + 2


def test_bytes_size():
    assert estimate_size(b"12345") == 4 + 5


def test_list_size_includes_items_and_overhead():
    empty = estimate_size([])
    one = estimate_size([1])
    two = estimate_size([1, 2])
    assert one > empty
    assert two - one == one - empty  # linear in item count


def test_dict_size():
    assert estimate_size({}) == 4
    assert estimate_size({"k": 1}) > estimate_size({})


def test_nested_structures():
    nested = {"a": [1, 2, {"b": "c"}]}
    assert estimate_size(nested) > estimate_size({"a": []})


def test_dataclass_size_sums_fields():
    @dataclass
    class Reading:
        value: float
        unit: str

    r = Reading(21.5, "C")
    assert estimate_size(r) == 16 + 8 + (4 + 1)


def test_wire_sized_override_wins():
    class Fixed(WireSized):
        def wire_size(self):
            return 99

    assert estimate_size(Fixed()) == 99


def test_plain_object_uses_dict():
    class Obj:
        def __init__(self):
            self.x = 1

    assert estimate_size(Obj()) > 16


def test_header_sizes_ordering():
    # UDP < TCP < JERI — the overhead argument of paper §II.1 depends on it.
    assert header_size(Protocol.UDP) < header_size(Protocol.TCP) < header_size(Protocol.JERI)


def test_udp_header_is_ip_plus_udp():
    assert header_size(Protocol.UDP) == 28
