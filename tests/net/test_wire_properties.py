"""Property-based tests for wire-size estimation."""

from hypothesis import given, strategies as st

from repro.net import Protocol, estimate_size
from repro.net.message import MTU_PAYLOAD, Message

scalars = st.one_of(st.none(), st.booleans(),
                    st.integers(min_value=-2**31, max_value=2**31),
                    st.floats(allow_nan=False, allow_infinity=False),
                    st.text(max_size=20))
payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5)),
    max_leaves=20)


@given(payloads)
def test_size_always_positive(payload):
    assert estimate_size(payload) >= 1


@given(st.lists(scalars, max_size=10), scalars)
def test_appending_grows_lists(items, extra):
    assert estimate_size(items + [extra]) > estimate_size(items)


@given(st.text(max_size=200))
def test_string_size_linear_in_bytes(text):
    assert estimate_size(text) == 4 + len(text.encode("utf-8"))


@given(payloads)
def test_message_sizes_consistent(payload):
    msg = Message(src="a", dst="b", port="p", kind="k",
                  payload=payload, protocol=Protocol.TCP)
    msg.finalize_sizes()
    assert msg.payload_bytes == estimate_size(payload)
    assert msg.header_bytes == 52 * msg.segments
    assert msg.segments == max(1, -(-msg.payload_bytes // MTU_PAYLOAD))
    assert msg.total_bytes == msg.payload_bytes + msg.header_bytes


@given(st.integers(min_value=1, max_value=10))
def test_segments_monotone_in_payload(k):
    small = Message(src="a", dst="b", port="p", kind="k",
                    payload="x" * (k * 500))
    big = Message(src="a", dst="b", port="p", kind="k",
                  payload="x" * (k * 500 + MTU_PAYLOAD))
    small.finalize_sizes()
    big.finalize_sizes()
    assert big.segments == small.segments + 1
