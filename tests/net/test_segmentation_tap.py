"""MTU segmentation and network taps."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network, Protocol
from repro.net.message import MTU_PAYLOAD, Message


def make_net():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(2),
                  latency=FixedLatency(0.001))
    return env, net


def finalized(payload, protocol=Protocol.TCP):
    msg = Message(src="a", dst="b", port="p", kind="x",
                  payload=payload, protocol=protocol)
    msg.finalize_sizes()
    return msg


def test_small_payload_single_segment():
    msg = finalized("x" * 100)
    assert msg.segments == 1
    assert msg.header_bytes == 52


def test_large_payload_pays_header_per_segment():
    msg = finalized("x" * (3 * MTU_PAYLOAD))
    assert msg.segments >= 3
    assert msg.header_bytes == 52 * msg.segments


def test_segment_boundary():
    at_boundary = finalized("x" * (MTU_PAYLOAD - 4))   # minus string framing
    just_over = finalized("x" * (MTU_PAYLOAD + 1))
    assert at_boundary.segments == 1
    assert just_over.segments == 2


def test_tap_sees_every_message():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    b.open_port("p", lambda m: None)
    seen = []
    net.tap(lambda msg: seen.append((msg.kind, msg.total_bytes)))
    a.send("b", "p", kind="one", payload=1)
    a.send("b", "p", kind="two", payload="xx")
    env.run()
    assert [kind for kind, _ in seen] == ["one", "two"]
    assert all(size > 0 for _, size in seen)


def test_tap_sees_dropped_messages_too():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    net.cut_link("a", "b")
    seen = []
    net.tap(lambda msg: seen.append(msg.kind))
    a.send("b", "p", kind="doomed", payload=1)
    env.run()
    assert seen == ["doomed"]  # taps are wire-side, before the partition


def test_untap_stops_observation():
    env, net = make_net()
    a, b = Host(net, "a"), Host(net, "b")
    b.open_port("p", lambda m: None)
    seen = []
    tap = lambda msg: seen.append(msg.kind)
    net.tap(tap)
    a.send("b", "p", kind="first")
    net.untap(tap)
    a.send("b", "p", kind="second")
    env.run()
    assert seen == ["first"]
