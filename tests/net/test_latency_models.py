"""Latency/loss models and per-host traffic accounting."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import BernoulliLoss, FixedLatency, Host, LanLatency, Network
from repro.net.latency import NoLoss


def test_fixed_latency_ignores_size():
    model = FixedLatency(0.005)
    assert model.delay("a", "b", 10) == 0.005
    assert model.delay("a", "b", 1_000_000) == 0.005


def test_lan_latency_serialization_term():
    rng = np.random.default_rng(0)
    model = LanLatency(rng, base=0.001, bandwidth_bps=1e6, jitter_mean=0.0)
    small = model.delay("a", "b", 125)          # 1 ms of serialization
    large = model.delay("a", "b", 125_000)      # 1 s of serialization
    assert small == pytest.approx(0.002)
    assert large == pytest.approx(1.001)


def test_lan_latency_jitter_positive_and_seeded():
    d1 = LanLatency(np.random.default_rng(5)).delay("a", "b", 100)
    d2 = LanLatency(np.random.default_rng(5)).delay("a", "b", 100)
    assert d1 == d2
    assert d1 > 0.0005  # base plus something


def test_bernoulli_validation():
    with pytest.raises(ValueError):
        BernoulliLoss(np.random.default_rng(0), 1.5)


def test_no_loss_never_drops():
    model = NoLoss()
    assert not any(model.dropped("a", "b", 100) for _ in range(100))


def test_per_host_byte_accounting():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(1),
                  latency=FixedLatency(0.001))
    a, b, c = Host(net, "a"), Host(net, "b"), Host(net, "c")
    b.open_port("p", lambda m: None)
    a.send("b", "p", kind="x", payload="payload-1")
    a.send("b", "p", kind="x", payload="payload-2")
    env.run()
    stats_a = net.stats.host_bytes("a")
    stats_b = net.stats.host_bytes("b")
    stats_c = net.stats.host_bytes("c")
    assert stats_a["sent_messages"] == 2
    assert stats_a["received_messages"] == 0
    assert stats_b["received_messages"] == 2
    assert stats_a["sent"] == stats_b["received"] > 0
    assert stats_c["sent"] == stats_c["received"] == 0


def test_host_bytes_counted_even_if_receiver_drops():
    """The ingress link carries the bytes whether or not a port listens."""
    env = Environment()
    net = Network(env, rng=np.random.default_rng(1),
                  latency=FixedLatency(0.001))
    a, b = Host(net, "a"), Host(net, "b")
    a.send("b", "nobody", kind="x", payload=1)
    env.run()
    assert net.stats.host_bytes("b")["received_messages"] == 1
