"""Scheduler soak: a million random occurrences against the invariants.

Full tier pushes ~1M occurrences through the calendar queue with a heap
shadow checking every pop; ``REPRO_BENCH_SMOKE=1`` (the CI smoke tier)
drops to 50k. Invariants under load:

* monotone time — pops never go backwards;
* FIFO within ties — same ``(time, priority, tie)`` keys drain in
  scheduling order;
* conservation — nothing is lost, duplicated, or resurrected after a
  cancel.
"""

import os

import numpy as np
import pytest

from repro.sim import Environment
from repro.sim.calendar import CalendarQueue, HeapScheduler

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SOAK_EVENTS = 50_000 if SMOKE else 1_000_000
ENV_EVENTS = 20_000 if SMOKE else 200_000


@pytest.mark.slow
def test_soak_against_heap_shadow():
    """Random push/pop/cancel storm; the heap reference checks each pop."""
    rng = np.random.default_rng(0xC0FFEE)
    cal, heap = CalendarQueue(), HeapScheduler()
    # O(1) bookkeeping: membership in `alive`, cancel victims drawn from
    # `candidates` (may hold stale seqs already popped — checked against
    # `alive` before use, compacted when mostly stale).
    alive: set[int] = set()
    candidates: list[int] = []
    seq = 0
    now = 0.0
    pops = cancels = 0
    # Weighted op mix: pushes slightly outnumber pops so the queue grows
    # through resizes, then the drain at the end shrinks it back.
    op_draw = rng.random(SOAK_EVENTS)
    time_draw = rng.random(SOAK_EVENTS)
    for i in range(SOAK_EVENTS):
        op = op_draw[i]
        if op < 0.52 or not alive:
            # Push at or after *now* (the kernel's contract) on a coarse
            # lattice so same-instant ties are common.
            t = now + round(float(time_draw[i]) * 50.0, 1)
            priority = i % 3
            tie = (0.0, 0.25, 0.5)[i % 3]
            cal.push(t, priority, tie, seq, seq)
            heap.push(t, priority, tie, seq, seq)
            alive.add(seq)
            candidates.append(seq)
            seq += 1
        elif op < 0.92:
            assert cal.peek_time() == heap.peek_time()
            got = cal.pop()
            assert got == heap.pop()
            assert got[0] >= now, "time went backwards"
            now = got[0]
            assert got[3] in alive, "popped a cancelled or duplicate seq"
            alive.discard(got[3])
            pops += 1
        else:
            victim = candidates.pop(int(op_draw[i] * 7919) % len(candidates))
            if victim not in alive:
                continue  # already popped; skip this cancel op
            alive.discard(victim)
            cal.cancel(victim)
            heap.cancel(victim)
            cancels += 1
        if len(candidates) > 2 * len(alive) + 64:
            candidates = [s for s in candidates if s in alive]
    assert cal.size == heap.size == len(alive)
    drained = 0
    while cal.size:
        got = cal.pop()
        assert got == heap.pop()
        assert got[0] >= now
        now = got[0]
        assert got[3] in alive
        alive.discard(got[3])
        drained += 1
    # Conservation: every scheduled occurrence either popped or cancelled.
    assert pops + drained + cancels == seq
    assert not alive


@pytest.mark.slow
def test_environment_soak_invariants():
    """Whole-kernel soak: hundreds of processes rescheduling themselves on
    a tie-heavy lattice; the clock never regresses, every timer fires
    exactly as often as its schedule allows, and same-instant direct
    timeouts fire in scheduling order."""
    env = Environment(scheduler="calendar")
    rng = np.random.default_rng(2009)
    n_procs = 200
    per_proc = max(ENV_EVENTS // n_procs, 1)
    fired: list[tuple] = []
    observed_now = [0.0]

    def ticker(pid, delays):
        for delay in delays:
            yield env.timeout(delay)
            assert env.now >= observed_now[0], "clock went backwards"
            observed_now[0] = env.now
            fired.append((env.now, pid))

    for pid in range(n_procs):
        delays = (rng.integers(0, 40, size=per_proc) * 0.25).tolist()
        env.process(ticker(pid, delays))

    # Direct same-instant burst: all scheduled up front from one event
    # context, so FIFO-within-tie is exactly creation order.
    burst_fired: list[int] = []
    for index in range(512):
        env.timeout(7.25).callbacks.append(
            lambda ev, index=index: burst_fired.append(index))

    env.run()
    assert len(fired) == n_procs * per_proc, "lost or duplicated events"
    assert burst_fired == list(range(512))
    times = [t for t, _ in fired]
    assert times == sorted(times)


def test_smoke_tier_is_documented():
    """The env knob the CI smoke tier uses must keep cutting the soak."""
    assert SOAK_EVENTS >= 50_000
    assert ENV_EVENTS >= 20_000
