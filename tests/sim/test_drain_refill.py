"""drain()/entries()/refill() — the scheduler-neutral snapshot hand-off.

A snapshot captures the pending event set through ``entries()`` without
perturbing the queue, and the restore contract allows the pending set of
one scheduler kind to be rebuilt on the other: ``drain()`` from either
kind fed to ``refill()`` on either kind must reproduce the identical pop
sequence (same ``(time, priority, tie, seq)`` total order), with
tombstoned cancels discarded on the way.
"""

import pytest

from repro.sim.calendar import CalendarQueue, HeapScheduler

KINDS = {"heap": HeapScheduler, "calendar": CalendarQueue}

#: A mixed program: coarse ties, same-instant bursts, sparse far future.
PROGRAM = ([(float(t % 7), t % 3, 0.125 * (t % 4), t) for t in range(40)]
           + [(1e6, 0, 0.0, 40), (0.5, 2, 0.5, 41), (3.25, 1, 0.0, 42)])
CANCELLED = {3, 11, 25, 40}


def _loaded(kind):
    scheduler = KINDS[kind]()
    for time, priority, tie, seq in PROGRAM:
        scheduler.push(time, priority, tie, seq, f"ev{seq}")
    for seq in CANCELLED:
        scheduler.cancel(seq)
    return scheduler


def _pop_all(scheduler):
    out = []
    while scheduler.size:
        out.append(scheduler.pop())
    return out


@pytest.mark.parametrize("kind", sorted(KINDS))
def test_entries_matches_pop_order_without_mutating(kind):
    scheduler = _loaded(kind)
    before = scheduler.stats()
    listed = scheduler.entries()
    listed_again = scheduler.entries()
    assert listed == listed_again
    assert scheduler.stats() == before  # strictly non-mutating
    assert listed == _pop_all(_loaded(kind))
    assert all(entry[3] not in CANCELLED for entry in listed)


@pytest.mark.parametrize("kind", sorted(KINDS))
def test_drain_refill_round_trip_same_kind(kind):
    drained = _loaded(kind).drain()
    refilled = KINDS[kind]()
    refilled.refill(drained)
    assert _pop_all(refilled) == _pop_all(_loaded(kind))


@pytest.mark.parametrize("src", sorted(KINDS))
@pytest.mark.parametrize("dst", sorted(KINDS))
def test_drain_refill_across_kinds_pops_identically(src, dst):
    drained = _loaded(src).drain()
    rebuilt = KINDS[dst]()
    rebuilt.refill(drained)
    assert _pop_all(rebuilt) == _pop_all(_loaded(dst))


@pytest.mark.parametrize("kind", sorted(KINDS))
def test_drain_empties_and_discards_tombstones(kind):
    scheduler = _loaded(kind)
    drained = scheduler.drain()
    assert scheduler.size == 0
    assert scheduler.entries() == []
    assert {entry[3] for entry in drained} == (
        {seq for _, _, _, seq in PROGRAM} - CANCELLED)
    # The tombstone set went with the occurrences: a later push reusing a
    # cancelled seq must be live, not silently dead.
    scheduler.push(1.0, 0, 0.0, 3, "reused")
    assert [entry[4] for entry in scheduler.entries()] == ["reused"]
