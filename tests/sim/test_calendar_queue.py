"""CalendarQueue vs HeapScheduler: byte-identical pop order.

The kernel's ordering contract is the strict total order over
``(time, priority, tie, seq)``. The heap is the reference implementation;
the calendar queue must reproduce its pop sequence *exactly* — same-tick
ties, tombstoned cancels, priority classes, degenerate widths and all.
"""

import pytest
from hypothesis import given, strategies as st

from repro.sim.calendar import (CalendarQueue, HeapScheduler, SCHEDULERS,
                                make_scheduler)

# Coarse time grid (forces same-instant collisions) mixed with arbitrary
# floats (forces uneven bucket widths and sparse-lap jumps).
times = st.one_of(
    st.sampled_from((0.0, 0.5, 1.0, 1.5, 2.0, 10.0, 1e6)),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
priorities = st.integers(min_value=0, max_value=2)
ties = st.sampled_from((0.0, 0.125, 0.5))

ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.tuples(times, priorities, ties)),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=999)),
    ),
    max_size=120)


def _drain(scheduler):
    out = []
    while scheduler.size:
        out.append(scheduler.pop())
    return out


@given(ops)
def test_random_programs_pop_identically(program):
    cal, heap = CalendarQueue(), HeapScheduler()
    seq = 0
    pending = []
    for op, arg in program:
        if op == "push":
            t, priority, tie = arg
            cal.push(t, priority, tie, seq, seq)
            heap.push(t, priority, tie, seq, seq)
            pending.append(seq)
            seq += 1
        elif op == "pop":
            assert cal.size == heap.size
            if cal.size:
                assert cal.peek_time() == heap.peek_time()
                got_cal, got_heap = cal.pop(), heap.pop()
                assert got_cal == got_heap
                pending.remove(got_cal[3])
        elif pending:
            victim = pending.pop(arg % len(pending))
            cal.cancel(victim)
            heap.cancel(victim)
    assert cal.size == heap.size == len(pending)
    assert _drain(cal) == _drain(heap)


@given(st.lists(st.tuples(times, priorities, ties), min_size=1, max_size=80))
def test_bulk_push_then_drain_is_sorted(entries):
    cal = CalendarQueue()
    for seq, (t, priority, tie) in enumerate(entries):
        cal.push(t, priority, tie, seq, seq)
    drained = [(t, p, tie, seq) for t, p, tie, seq, _ in _drain(cal)]
    assert drained == sorted(drained)


def test_same_instant_burst_is_fifo():
    """16k occurrences on one (time, priority, tie) key — the CSP fan-out
    shape — come back in scheduling order from a single tie cell."""
    cal = CalendarQueue()
    for seq in range(16384):
        cal.push(5.0, 1, 0.0, seq, seq)
    assert [entry[3] for entry in _drain(cal)] == list(range(16384))


def test_priority_classes_order_within_a_tick():
    cal = CalendarQueue()
    cal.push(1.0, 2, 0.0, 0, "low")
    cal.push(1.0, 0, 0.0, 1, "urgent")
    cal.push(1.0, 1, 0.0, 2, "normal")
    cal.push(0.5, 2, 0.0, 3, "earlier-low")
    assert [e[4] for e in _drain(cal)] == ["earlier-low", "urgent",
                                           "normal", "low"]


def test_tie_field_orders_within_time_and_priority():
    cal = CalendarQueue()
    cal.push(1.0, 1, 0.75, 0, "late-tie")
    cal.push(1.0, 1, 0.25, 1, "early-tie")
    assert [e[4] for e in _drain(cal)] == ["early-tie", "late-tie"]


def test_cancel_tombstones_are_skipped():
    for kind in SCHEDULERS:
        s = make_scheduler(kind)
        for seq in range(6):
            s.push(float(seq % 3), 1, 0.0, seq, seq)
        s.cancel(1)
        s.cancel(4)
        assert s.size == 4
        assert [e[3] for e in _drain(s)] == [0, 3, 2, 5]


def test_cancel_head_updates_peek_time():
    for kind in SCHEDULERS:
        s = make_scheduler(kind)
        s.push(1.0, 1, 0.0, 0, "head")
        s.push(2.0, 1, 0.0, 1, "next")
        assert s.peek_time() == 1.0
        s.cancel(0)
        assert s.peek_time() == 2.0
        assert s.pop()[4] == "next"


def test_push_earlier_than_calendar_position():
    """A push can land before every pending occurrence (time >= *now*, not
    >= other pending times); the scan position must back up to see it."""
    cal = CalendarQueue()
    cal.push(10.0, 1, 0.0, 0, "late")
    assert cal.peek_time() == 10.0
    cal.push(0.0, 1, 0.0, 1, "early")
    assert cal.peek_time() == 0.0
    assert [e[4] for e in _drain(cal)] == ["early", "late"]


def test_sparse_queue_jumps_across_empty_years():
    cal = CalendarQueue()
    for seq, t in enumerate((0.0, 1e6, 2e12, 3e18)):
        cal.push(t, 1, 0.0, seq, seq)
    assert [e[0] for e in _drain(cal)] == [0.0, 1e6, 2e12, 3e18]


def test_degenerate_width_heals_under_load():
    """Spawn-shaped workload: a same-instant storm poisons the width
    estimate (every pending time identical -> width 1.0), then spread-out
    timers pile into a handful of buckets. The occupancy heal must
    re-estimate the width and keep the order exact."""
    cal, heap = CalendarQueue(), HeapScheduler()
    seq = 0
    for _ in range(512):
        cal.push(0.0, 0, 0.0, seq, seq)
        heap.push(0.0, 0, 0.0, seq, seq)
        seq += 1
    for step in range(2048):
        assert cal.pop() == heap.pop()
        t = 0.05 + (step % 397) * 0.005
        cal.push(t, 1, 0.0, seq, seq)
        heap.push(t, 1, 0.0, seq, seq)
        seq += 1
    assert _drain(cal) == _drain(heap)
    assert max(len(bucket) for bucket in cal._buckets) <= \
        CalendarQueue.HEAL_OCCUPANCY + 1


def test_shrink_below_min_buckets_never_happens():
    cal = CalendarQueue()
    for seq in range(200):
        cal.push(seq * 0.1, 1, 0.0, seq, seq)
    grown = cal._nbuckets
    assert grown > CalendarQueue.MIN_BUCKETS
    _drain(cal)
    assert CalendarQueue.MIN_BUCKETS <= cal._nbuckets < grown


def test_empty_scheduler_behaviour():
    for kind in SCHEDULERS:
        s = make_scheduler(kind)
        assert s.size == 0
        assert len(s) == 0
        assert s.peek_time() == float("inf")
        with pytest.raises(IndexError):
            s.pop()


def test_make_scheduler_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown kernel scheduler"):
        make_scheduler("wheel-of-fortune")
