"""Kernel equivalence at the scenario level: swapping the scheduler must
not change a single byte of any deterministic output.

``REPRO_KERNEL_SCHEDULER`` selects the pending-event structure behind
:class:`~repro.sim.Environment`. These tests run the heaviest end-to-end
surfaces — the paper-lab status snapshot and a chaos campaign verdict —
under the reference heap and the calendar queue, alone and combined with
the tie-break shuffle harness, and require identical output.
"""

import io

import pytest

from repro.chaos import CampaignRunner, verdict_json
from repro.cli import main as cli_main
from repro.sim import Environment
from repro.sim.core import KERNEL_SCHEDULER_ENV, NORMAL, URGENT


def _status_json():
    out = io.StringIO()
    assert cli_main(["status", "--json"], out=out) == 0
    return out.getvalue()


def test_env_var_selects_scheduler(monkeypatch):
    monkeypatch.setenv(KERNEL_SCHEDULER_ENV, "heap")
    assert Environment()._scheduler.kind == "heap"
    monkeypatch.setenv(KERNEL_SCHEDULER_ENV, "calendar")
    assert Environment()._scheduler.kind == "calendar"
    assert Environment(scheduler="heap")._scheduler.kind == "heap"


def test_unknown_scheduler_rejected(monkeypatch):
    monkeypatch.setenv(KERNEL_SCHEDULER_ENV, "bogus")
    with pytest.raises(ValueError, match="unknown kernel scheduler"):
        Environment()


def test_status_json_identical_across_kernels(monkeypatch):
    monkeypatch.setenv(KERNEL_SCHEDULER_ENV, "heap")
    heap_out = _status_json()
    monkeypatch.setenv(KERNEL_SCHEDULER_ENV, "calendar")
    calendar_out = _status_json()
    assert heap_out == calendar_out


def test_status_json_identical_across_kernels_under_shuffle(shuffle_seed,
                                                           monkeypatch):
    """The flagship invariant with both harnesses engaged: for every
    tie-break shuffle seed, heap and calendar produce the same bytes."""
    monkeypatch.setenv(KERNEL_SCHEDULER_ENV, "heap")
    heap_out = _status_json()
    monkeypatch.setenv(KERNEL_SCHEDULER_ENV, "calendar")
    calendar_out = _status_json()
    assert heap_out == calendar_out


@pytest.mark.slow
def test_chaos_verdict_identical_across_kernels(monkeypatch):
    """Fault campaigns pound cancel/reschedule paths (watchdogs, retries,
    lease expiries) — the verdict JSON must not notice the scheduler."""
    monkeypatch.setenv(KERNEL_SCHEDULER_ENV, "heap")
    heap_verdict = verdict_json(CampaignRunner("paper-lab").run_seed(3))
    monkeypatch.setenv(KERNEL_SCHEDULER_ENV, "calendar")
    calendar_verdict = verdict_json(CampaignRunner("paper-lab").run_seed(3))
    assert heap_verdict == calendar_verdict


def _tie_break_order(kind, seed):
    env = Environment(scheduler=kind, tie_break_seed=seed)
    fired = []

    def waiter(index):
        yield env.timeout(1.0)
        fired.append(index)

    for index in range(12):
        env.process(waiter(index))
    env.run()
    return fired


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_tie_break_shuffle_identical_across_kernels(seed):
    heap_order = _tie_break_order("heap", seed)
    calendar_order = _tie_break_order("calendar", seed)
    assert heap_order == calendar_order
    # And the harness still shuffles: some seed must deviate from FIFO.
    assert _tie_break_order("calendar", None) == list(range(12))


def test_sanitizer_verdict_identical_across_kernels():
    """The race sanitizer hooks live in Environment, not the scheduler —
    a same-timestamp write/read race is reported identically."""
    reports = {}
    for kind in ("heap", "calendar"):
        env = Environment(scheduler=kind, sanitize="record")
        cell = {"value": 0}

        def writer():
            yield env.timeout(1.0)
            env.sanitizer.record("cell", "w", "the shared cell")
            cell["value"] = 1

        def reader():
            yield env.timeout(1.0)
            env.sanitizer.record("cell", "r", "the shared cell")
            cell["value"]

        env.process(writer())
        env.process(reader())
        env.run()
        reports[kind] = [(v.label, v.time, v.first[2], v.second[2])
                         for v in env.sanitizer.violations]
    assert reports["heap"] == reports["calendar"]
    assert reports["calendar"], "expected the planted race to be reported"


def test_priority_classes_identical_across_kernels():
    orders = {}
    for kind in ("heap", "calendar"):
        env = Environment(scheduler=kind)
        fired = []
        env.timeout(1.0, priority=NORMAL).callbacks.append(
            lambda ev: fired.append("normal"))
        env.timeout(1.0, priority=URGENT).callbacks.append(
            lambda ev: fired.append("urgent"))
        env.run()
        orders[kind] = fired
    assert orders["heap"] == orders["calendar"] == ["urgent", "normal"]
