"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(5.0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [5.0]


def test_timeout_value():
    env = Environment()

    def proc():
        got = yield env.timeout(1.0, value="hello")
        return got

    p = env.process(proc())
    assert env.run(until=p) == "hello"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42


def test_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(proc("a", 3))
    env.process(proc("b", 1))
    env.process(proc("c", 2))
    env.run()
    assert order == [("b", 1), ("c", 2), ("a", 3)]


def test_same_time_fifo_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    for name in "abcde":
        env.process(proc(name))
    env.run()
    assert order == list("abcde")


def test_run_until_time_advances_clock():
    env = Environment()

    def noop():
        yield env.timeout(1)

    env.process(noop())
    env.run(until=50.0)
    assert env.now == 50.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_wait_on_another_process():
    env = Environment()

    def child():
        yield env.timeout(2)
        return "done"

    def parent():
        result = yield env.process(child())
        return (result, env.now)

    p = env.process(parent())
    assert env.run(until=p) == ("done", 2)


def test_wait_on_already_finished_process():
    env = Environment()

    def child():
        yield env.timeout(1)
        return "early"

    c = env.process(child())

    def parent():
        yield env.timeout(10)
        result = yield c
        return result

    p = env.process(parent())
    assert env.run(until=p) == "early"


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        val = yield ev
        return val

    def trigger():
        yield env.timeout(3)
        ev.succeed("signal")

    p = env.process(waiter())
    env.process(trigger())
    assert env.run(until=p) == "signal"
    assert env.now == 3


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    def trigger():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    p = env.process(waiter())
    env.process(trigger())
    assert env.run(until=p) == "caught boom"


def test_uncaught_process_failure_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("oops")

    env.process(bad())
    with pytest.raises(RuntimeError, match="oops"):
        env.run()


def test_failure_observed_by_parent_is_defused():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("oops")

    def parent():
        try:
            yield env.process(bad())
        except RuntimeError:
            return "handled"

    p = env.process(parent())
    assert env.run(until=p) == "handled"


def test_all_of_collects_values():
    env = Environment()

    def proc(delay, val):
        yield env.timeout(delay)
        return val

    def parent():
        results = yield env.all_of([
            env.process(proc(3, "a")),
            env.process(proc(1, "b")),
            env.process(proc(2, "c")),
        ])
        return (results, env.now)

    p = env.process(parent())
    values, when = env.run(until=p)
    assert sorted(values) == ["a", "b", "c"]
    assert when == 3


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def parent():
        results = yield env.all_of([])
        return results

    p = env.process(parent())
    assert env.run(until=p) == []


def test_any_of_returns_on_first():
    env = Environment()

    def proc(delay, val):
        yield env.timeout(delay)
        return val

    def parent():
        yield env.any_of([env.process(proc(5, "slow")), env.process(proc(1, "fast"))])
        return env.now

    p = env.process(parent())
    assert env.run(until=p) == 1


def test_all_of_fails_fast():
    env = Environment()

    def ok():
        yield env.timeout(10)

    def bad():
        yield env.timeout(1)
        raise ValueError("bad")

    def parent():
        try:
            yield env.all_of([env.process(ok()), env.process(bad())])
        except ValueError:
            return env.now

    p = env.process(parent())
    assert env.run(until=p) == 1


def test_interrupt_wakes_process():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100)
            return "slept"
        except Interrupt as i:
            return ("interrupted", i.cause, env.now)

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(5)
        p.interrupt(cause="wake up")

    env.process(interrupter())
    assert env.run(until=p) == ("interrupted", "wake up", 5)


def test_interrupt_then_original_timeout_is_ignored():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(10)
        except Interrupt:
            pass
        yield env.timeout(100)
        log.append(env.now)

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(5)
        p.interrupt()

    env.process(interrupter())
    env.run()
    # Resumed at t=5 after interrupt, then slept 100 -> wakes at 105,
    # not at the original t=10 timeout.
    assert log == [105]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def sleeper():
        yield env.timeout(100)

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(1)
        p.interrupt("die")

    env.process(interrupter())
    with pytest.raises(Interrupt):
        env.run()


def test_run_until_event():
    env = Environment()
    ev = env.event()

    def trigger():
        yield env.timeout(7)
        ev.succeed("fired")

    env.process(trigger())
    assert env.run(until=ev) == "fired"
    assert env.now == 7


def test_run_until_event_never_fires():
    env = Environment()
    ev = env.event()

    def noop():
        yield env.timeout(1)

    env.process(noop())
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(3)
    assert env.peek() == 3


def test_nested_processes():
    env = Environment()

    def grandchild():
        yield env.timeout(1)
        return 1

    def child():
        v = yield env.process(grandchild())
        yield env.timeout(1)
        return v + 1

    def parent():
        v = yield env.process(child())
        return v + 1

    p = env.process(parent())
    assert env.run(until=p) == 3
    assert env.now == 2


def test_chain_of_many_events_is_deterministic():
    env = Environment()
    trace = []

    def ping(n):
        for i in range(n):
            yield env.timeout(1)
            trace.append(("ping", env.now))

    def pong(n):
        for i in range(n):
            yield env.timeout(1)
            trace.append(("pong", env.now))

    env.process(ping(3))
    env.process(pong(3))
    env.run()
    assert trace == [
        ("ping", 1), ("pong", 1),
        ("ping", 2), ("pong", 2),
        ("ping", 3), ("pong", 3),
    ]
