"""Kernel edge cases: conditions with failures, interrupts during waits,
process identity semantics."""

import pytest

from repro.sim import AnyOf, Environment, Event, Interrupt, SimulationError


def test_any_of_failure_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield env.any_of([env.process(bad()), env.timeout(100)])
        except ValueError:
            return "caught"

    p = env.process(parent())
    assert env.run(until=p) == "caught"


def test_any_of_with_already_triggered_event():
    env = Environment()
    ev = env.event()
    ev.succeed("ready")

    def parent():
        yield env.timeout(1)  # let ev become processed
        result = yield env.any_of([ev, env.timeout(100)])
        return (result, env.now)

    p = env.process(parent())
    result, when = env.run(until=p)
    assert when == 1


def test_all_of_with_mixed_processed_and_pending():
    env = Environment()
    early = env.timeout(0)

    def parent():
        yield env.timeout(1)
        yield env.all_of([early, env.timeout(2)])
        return env.now

    p = env.process(parent())
    assert env.run(until=p) == 3


def test_interrupt_while_waiting_on_process():
    env = Environment()

    def slow():
        yield env.timeout(100)
        return "slow-done"

    slow_proc = None

    def waiter():
        try:
            yield slow_proc
        except Interrupt:
            return ("interrupted", env.now)

    slow_proc = env.process(slow())
    p = env.process(waiter())

    def interrupter():
        yield env.timeout(5)
        p.interrupt()

    env.process(interrupter())
    assert env.run(until=p) == ("interrupted", 5)
    # The slow process keeps running unaffected.
    assert env.run(until=slow_proc) == "slow-done"


def test_double_interrupt_second_wait():
    env = Environment()
    hits = []

    def stubborn():
        for _ in range(2):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                hits.append((i.cause, env.now))
        return "survived"

    p = env.process(stubborn())

    def interrupter():
        yield env.timeout(1)
        p.interrupt("one")
        yield env.timeout(1)
        p.interrupt("two")

    env.process(interrupter())
    assert env.run(until=p) == "survived"
    assert hits == [("one", 1), ("two", 2)]


def test_unobserved_failure_raises_at_trigger_time():
    """A failure nobody is waiting on surfaces immediately from run() —
    errors are never silently swallowed (a late observer is too late)."""
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise KeyError("lost")

    bad_proc = env.process(bad())

    def late_observer():
        yield env.timeout(10)
        yield bad_proc

    env.process(late_observer())
    with pytest.raises(KeyError):
        env.run()


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")


def test_run_until_failed_event_raises():
    env = Environment()
    ev = env.event()

    def trigger():
        yield env.timeout(1)
        ev.fail(RuntimeError("bad end"))

    env.process(trigger())
    with pytest.raises(RuntimeError, match="bad end"):
        env.run(until=ev)


def test_simultaneous_events_processed_in_creation_order():
    env = Environment()
    order = []

    def make(tag):
        def proc():
            yield env.timeout(5)
            order.append(tag)
        return proc

    for tag in range(10):
        env.process(make(tag)())
    env.run()
    assert order == list(range(10))


def test_zero_delay_timeout_still_asynchronous():
    env = Environment()
    order = []

    def proc():
        order.append("before")
        yield env.timeout(0)
        order.append("after")

    env.process(proc())
    order.append("scheduled")
    env.run()
    # The process body doesn't start until the simulation runs.
    assert order == ["scheduled", "before", "after"]
