"""Property-based tests of kernel scheduling invariants."""

from hypothesis import given, strategies as st

from repro.sim import Environment, Store

delays = st.lists(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False), min_size=1, max_size=30)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(ds):
    env = Environment()
    fired = []

    def waiter(delay, index):
        yield env.timeout(delay)
        fired.append((env.now, index))

    for index, delay in enumerate(ds):
        env.process(waiter(delay, index))
    env.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(ds)


@given(delays)
def test_simultaneous_events_fifo_by_creation(ds):
    """Among equal fire times, creation order is preserved."""
    env = Environment()
    fired = []

    def waiter(delay, index):
        yield env.timeout(delay)
        fired.append((env.now, index))

    for index, delay in enumerate(ds):
        env.process(waiter(delay, index))
    env.run()
    for t in set(d for d in ds):
        indices = [i for when, i in fired if when == t]
        assert indices == sorted(indices)


@given(delays)
def test_clock_ends_at_max_delay(ds):
    env = Environment()
    for delay in ds:
        env.timeout(delay)
    env.run()
    assert env.now == max(ds)


@given(st.lists(st.integers(min_value=0, max_value=999), min_size=1,
                max_size=40))
def test_store_conserves_items(items):
    """Everything put into a Store comes out exactly once, in order."""
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            got = yield store.get()
            out.append(got)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == items


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=5),
                          st.floats(min_value=0.01, max_value=2.0)),
                min_size=1, max_size=20),
       st.integers(min_value=1, max_value=4))
def test_resource_never_exceeds_capacity(jobs, capacity):
    from repro.sim.resources import Resource
    env = Environment()
    resource = Resource(env, capacity=capacity)
    max_seen = [0]

    def worker(hold):
        request = resource.request()
        yield request
        max_seen[0] = max(max_seen[0], resource.count)
        yield env.timeout(hold)
        resource.release(request)

    for _, hold in jobs:
        env.process(worker(hold))
    env.run()
    assert max_seen[0] <= capacity
    assert resource.count == 0
    assert resource.queued == 0
