"""Unit tests for Store and Resource."""

import pytest

from repro.sim import Environment, SimulationError, Store
from repro.sim.resources import Resource


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def proc():
        yield store.put("x")
        item = yield store.get()
        return item

    p = env.process(proc())
    assert env.run(until=p) == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def getter():
        item = yield store.get()
        return (item, env.now)

    def putter():
        yield env.timeout(5)
        yield store.put("late")

    p = env.process(getter())
    env.process(putter())
    assert env.run(until=p) == ("late", 5)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def setup():
        for i in range(3):
            yield store.put(i)

    def getter():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(setup())
    env.process(getter())
    env.run()
    assert got == [0, 1, 2]


def test_store_predicate_get_skips_nonmatching():
    env = Environment()
    store = Store(env)

    def proc():
        yield store.put("apple")
        yield store.put("banana")
        item = yield store.get(lambda x: x.startswith("b"))
        return (item, list(store.items))

    p = env.process(proc())
    item, remaining = env.run(until=p)
    assert item == "banana"
    assert remaining == ["apple"]


def test_store_predicate_get_waits_for_match():
    env = Environment()
    store = Store(env)

    def getter():
        item = yield store.get(lambda x: x == "target")
        return (item, env.now)

    def putter():
        yield store.put("other")
        yield env.timeout(3)
        yield store.put("target")

    p = env.process(getter())
    env.process(putter())
    assert env.run(until=p) == ("target", 3)


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def putter():
        yield store.put("a")
        log.append(("a-in", env.now))
        yield store.put("b")
        log.append(("b-in", env.now))

    def getter():
        yield env.timeout(10)
        item = yield store.get()
        log.append((item, env.now))

    env.process(putter())
    env.process(getter())
    env.run()
    assert ("a-in", 0) in log
    assert ("b-in", 10) in log


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_get_cancel():
    env = Environment()
    store = Store(env)

    def proc():
        get_ev = store.get(lambda x: x == "never")
        yield env.timeout(1)
        get_ev.cancel()
        yield store.put("item")
        return list(store.items)

    p = env.process(proc())
    # The cancelled getter must not consume the item.
    assert env.run(until=p) == ["item"]


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    results = {}

    def getter(name):
        item = yield store.get()
        results[name] = item

    def putter():
        yield env.timeout(1)
        yield store.put("first")
        yield store.put("second")

    env.process(getter("g1"))
    env.process(getter("g2"))
    env.process(putter())
    env.run()
    assert results == {"g1": "first", "g2": "second"}


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grant_times = []

    def worker(hold):
        req = res.request()
        yield req
        grant_times.append(env.now)
        yield env.timeout(hold)
        res.release(req)

    env.process(worker(5))
    env.process(worker(5))
    env.process(worker(5))
    env.run()
    # Two run immediately, third waits for a release at t=5.
    assert grant_times == [0, 0, 5]


def test_resource_release_unrequested_rejected():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)
    snapshots = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def observer():
        yield env.timeout(1)
        snapshots.append((res.count, res.queued))

    def waiter():
        req = res.request()
        yield req
        res.release(req)

    env.process(holder())
    env.process(waiter())
    env.process(observer())
    env.run()
    assert snapshots == [(1, 1)]


def test_resource_request_cancel():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def impatient():
        req = res.request()
        yield env.timeout(1)
        req.cancel()
        order.append("gave up")

    def patient():
        yield env.timeout(2)
        req = res.request()
        yield req
        order.append(("granted", env.now))
        res.release(req)

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    assert order == ["gave up", ("granted", 10)]
