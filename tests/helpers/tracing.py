"""Trace-based test assertions.

The implementations live in :mod:`repro.chaos.invariants` now — the
chaos engine's end-to-end oracles and the integration tests assert the
same trace properties, so they share one matcher. This module keeps the
historical import path for the test suite.

Expected trees are written as nested tuples::

    ("exert:browser-getValue", [
        ("rpc:service", []),
        ("serve:browser-getValue", [
            ("exert:facade-getValue", ...),      # Ellipsis: any children
        ]),
    ])

Names match with :mod:`fnmatch` wildcards; a matched span must contain
every expected child in simulated-time order (same-start siblings in any
permutation — their order is tie-breaker territory); extra children are
tolerated.
"""

from __future__ import annotations

from repro.chaos.invariants import (
    assert_no_orphan_spans,
    assert_span_tree,
    spans_between,
    tree_shape,
)

__all__ = [
    "assert_span_tree",
    "assert_no_orphan_spans",
    "spans_between",
    "tree_shape",
]
