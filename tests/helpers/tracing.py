"""Trace-based test assertions.

Integration tests assert on the *shape* of a run — which hops happened,
in what parent/child relation — instead of poking provider internals.
Expected trees are written as nested tuples::

    ("exert:browser-getValue", [
        ("rpc:service", []),
        ("serve:browser-getValue", [
            ("exert:facade-getValue", ...),      # Ellipsis: any children
        ]),
    ])

Names match with :mod:`fnmatch` wildcards, so ``"exert:collect-*"`` works.
A matched span must contain every expected child in simulated-time order;
actual extra children are tolerated (infrastructure spans come and go with
timing knobs, the assertions pin down what *must* be there). Siblings that
*start at the same simulated time* have no contract-defined order — the
kernel's determinism contract only fixes it via the scheduling tie-breaker,
which the shuffle harness (``REPRO_SHUFFLE_SEED``) deliberately randomizes
— so the matcher accepts any permutation among same-start siblings.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

from repro.observability import Span, Tracer

__all__ = [
    "assert_span_tree",
    "assert_no_orphan_spans",
    "spans_between",
    "tree_shape",
]


def _match_spec(tracer: Tracer, span: Span, spec, path: str,
                errors: list) -> bool:
    pattern, children = spec
    if not fnmatchcase(span.name, pattern):
        return False
    if children is Ellipsis:
        return True
    actual = tracer.children(span)
    used: set[int] = set()
    last_start = float("-inf")
    for child_spec in children:
        found = None
        for index, candidate in enumerate(actual):
            if index in used or candidate.started_at < last_start:
                continue
            if _match_spec(tracer, candidate, child_spec,
                           f"{path}/{span.name}", errors):
                found = index
                break
        if found is None:
            errors.append(
                f"under {path}/{span.name}: no child matching "
                f"{child_spec[0]!r} (starting at or after t={last_start:g}); "
                f"actual children: {[c.name for c in actual]}")
            return False
        used.add(found)
        last_start = actual[found].started_at
    return True


def assert_span_tree(tracer: Tracer, spec, root: Span = None) -> Span:
    """Assert some recorded trace tree matches ``spec``; returns its root.

    With ``root`` given, that specific tree must match. Otherwise every
    recorded root is tried and one must match.
    """
    if root is not None:
        errors: list = []
        assert _match_spec(tracer, root, spec, "", errors), \
            f"span tree rooted at {root.name!r} does not match {spec[0]!r}: " \
            + "; ".join(errors)
        return root
    roots = tracer.roots()
    for candidate in roots:
        if _match_spec(tracer, candidate, spec, "", []):
            return candidate
    raise AssertionError(
        f"no recorded trace matches {spec[0]!r}; roots: "
        f"{[r.name for r in roots]}")


def assert_no_orphan_spans(tracer: Tracer) -> None:
    """Every parent link resolves and no span ends before it starts."""
    for span in tracer.spans:
        if span.parent_id is not None:
            parent = tracer.get(span.parent_id)
            assert parent is not None, \
                f"{span.span_id} ({span.name!r}) links to unknown parent " \
                f"{span.parent_id!r}"
            assert parent.started_at <= span.started_at, \
                f"{span.span_id} ({span.name!r}) starts before its parent"
        if span.ended_at is not None:
            assert span.ended_at >= span.started_at, \
                f"{span.span_id} ({span.name!r}) ends before it starts"


def spans_between(tracer: Tracer, start: float, end: float,
                  kind: str = None) -> list:
    """Spans that *started* within ``[start, end]`` simulation seconds."""
    return [span for span in tracer.spans
            if start <= span.started_at <= end
            and (kind is None or span.kind == kind)]


def tree_shape(tracer: Tracer, span: Span):
    """The tree as nested ``(name, status, [children...])`` tuples —
    a hashable shape for determinism comparisons."""
    return (span.name, span.status,
            tuple(tree_shape(tracer, child)
                  for child in tracer.children(span)))
