"""ProvisionMonitor + Cybernode integration (E-FT / E-PROV substrate)."""

import pytest

from repro.net import Host
from repro.jini import Name, ServiceTemplate
from repro.rio import (
    Cybernode,
    OperationalString,
    ProvisionMonitor,
    QosCapability,
    QosRequirement,
    ServiceElement,
)
from repro.sorcer import Tasker


class EchoProvider(Tasker):
    SERVICE_TYPES = ("Echo",)

    def __init__(self, host, name, attributes=(), **kw):
        super().__init__(host, name, attributes=attributes, **kw)
        self.add_operation("echo", lambda ctx: ctx.get_value("arg/x"))


def echo_factory(host, instance_name, attributes):
    return EchoProvider(host, instance_name, attributes=attributes,
                        lease_duration=5.0)


def make_cybernode(net, name, slots=4.0, tags=frozenset()):
    host = Host(net, f"{name}-host")
    node = Cybernode(host, name,
                     capability=QosCapability(compute_slots=slots, tags=tags),
                     lease_duration=5.0)
    node.start()
    return host, node


def make_monitor(net, **kwargs):
    host = Host(net, "monitor-host")
    monitor = ProvisionMonitor(host, **kwargs)
    monitor.start()
    return host, monitor


def opstring_with(name="os", element_name="Echo-Service", planned=1,
                  qos=None, max_per_node=1):
    element = ServiceElement(
        name=element_name, factory=echo_factory, planned=planned,
        qos=qos if qos is not None else QosRequirement(load=1.0, memory_mb=8),
        max_per_node=max_per_node)
    return OperationalString(name, [element])


def live_named(lus, name):
    return lus.lookup(ServiceTemplate(attributes=(Name(name),)), 64)


def test_cybernode_registers_with_lus(grid):
    env, net, lus = grid
    make_cybernode(net, "Cybernode-A")
    env.run(until=5.0)
    assert len(lus.lookup(ServiceTemplate.by_type("Cybernode"), 10)) == 1


def test_deploy_provisions_planned_instance(grid):
    env, net, lus = grid
    make_cybernode(net, "Cybernode-A")
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with())
    env.run(until=10.0)
    assert len(live_named(lus, "Echo-Service")) == 1
    assert monitor.stats["provisioned"] == 1


def test_planned_many_spread_over_nodes(grid):
    env, net, lus = grid
    make_cybernode(net, "Cybernode-A")
    make_cybernode(net, "Cybernode-B")
    make_cybernode(net, "Cybernode-C")
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with(planned=3, max_per_node=1))
    env.run(until=15.0)
    # Three instances, one per node (max_per_node=1).
    items = lus.lookup(ServiceTemplate.by_type("Echo"), 64)
    assert len(items) == 3
    hosts = {item.service.host for item in items}
    assert len(hosts) == 3


def test_qos_tag_restricts_placement(grid):
    env, net, lus = grid
    make_cybernode(net, "Plain-Node")
    make_cybernode(net, "Gateway-Node", tags=frozenset({"sensor-gateway"}))
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with(
        qos=QosRequirement(load=1, memory_mb=8,
                           required_tags=frozenset({"sensor-gateway"}))))
    env.run(until=10.0)
    items = lus.lookup(ServiceTemplate.by_type("Echo"), 10)
    assert len(items) == 1
    assert items[0].service.host == "Gateway-Node-host"


def test_no_capable_node_keeps_pending_then_converges(grid):
    env, net, lus = grid
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with())
    env.run(until=8.0)
    assert len(live_named(lus, "Echo-Service")) == 0
    assert monitor.stats["provision_failures"] > 0
    make_cybernode(net, "Late-Node")  # capacity arrives later
    env.run(until=20.0)
    assert len(live_named(lus, "Echo-Service")) == 1


def test_cybernode_failure_triggers_reprovision(grid):
    env, net, lus = grid
    ha, node_a = make_cybernode(net, "Cybernode-A")
    hb, node_b = make_cybernode(net, "Cybernode-B")
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with())
    env.run(until=10.0)
    items = lus.lookup(ServiceTemplate.by_type("Echo"), 10)
    assert len(items) == 1
    victim_host = items[0].service.host
    (ha if victim_host == "Cybernode-A-host" else hb).fail()
    env.run(until=40.0)  # lease lapse (5s) + poll + instantiate
    items = lus.lookup(ServiceTemplate.by_type("Echo"), 10)
    assert len(items) == 1
    assert items[0].service.host != victim_host
    assert monitor.stats["provisioned"] == 2


def test_scale_up_and_down(grid):
    env, net, lus = grid
    make_cybernode(net, "Cybernode-A", slots=8)
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with(planned=1, max_per_node=8))
    env.run(until=10.0)
    assert len(lus.lookup(ServiceTemplate.by_type("Echo"), 64)) == 1
    monitor.set_planned("os", "Echo-Service", 3)
    env.run(until=25.0)
    assert len(lus.lookup(ServiceTemplate.by_type("Echo"), 64)) == 3
    monitor.set_planned("os", "Echo-Service", 1)
    env.run(until=60.0)
    assert len(lus.lookup(ServiceTemplate.by_type("Echo"), 64)) == 1
    assert monitor.stats["released"] == 2


def test_undeploy_releases_instances(grid):
    env, net, lus = grid
    hn, node = make_cybernode(net, "Cybernode-A")
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with())
    env.run(until=10.0)
    monitor.undeploy("os")
    env.run(until=30.0)
    assert len(lus.lookup(ServiceTemplate.by_type("Echo"), 10)) == 0
    assert node.used_slots == 0


def test_capacity_accounting_on_cybernode(grid):
    env, net, lus = grid
    hn, node = make_cybernode(net, "Cybernode-A", slots=2)
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with(planned=2, max_per_node=2))
    env.run(until=15.0)
    assert node.used_slots == 2.0
    status = node.status()
    assert status.hosted == 2
    # Node is full; a third instance cannot be placed.
    monitor.set_planned("os", "Echo-Service", 3)
    env.run(until=25.0)
    assert len(lus.lookup(ServiceTemplate.by_type("Echo"), 64)) == 2


def test_duplicate_deploy_rejected(grid):
    env, net, lus = grid
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with())
    with pytest.raises(ValueError):
        monitor.deploy(opstring_with())


def test_max_per_node_names_are_unique(grid):
    env, net, lus = grid
    make_cybernode(net, "Cybernode-A", slots=8)
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with(planned=3, max_per_node=3))
    env.run(until=15.0)
    items = lus.lookup(ServiceTemplate.by_type("Echo"), 64)
    names = sorted(item.name() for item in items)
    assert len(set(names)) == 3


def test_monitor_outage_delays_but_does_not_lose_repair(grid):
    """The monitor host is down when a cybernode dies; repair happens
    after the monitor recovers (its deployment state is in-process)."""
    env, net, lus = grid
    ha, node_a = make_cybernode(net, "Cybernode-A")
    hb, node_b = make_cybernode(net, "Cybernode-B")
    mh, monitor = make_monitor(net)
    monitor.deploy(opstring_with())
    env.run(until=10.0)
    items = lus.lookup(ServiceTemplate.by_type("Echo"), 10)
    victim_host = items[0].service.host
    mh.fail()  # the controller itself goes dark
    (ha if victim_host == "Cybernode-A-host" else hb).fail()
    env.run(until=50.0)
    # No repair while the monitor is down.
    assert len(lus.lookup(ServiceTemplate.by_type("Echo"), 10)) == 0
    mh.recover()
    env.run(until=90.0)
    items = lus.lookup(ServiceTemplate.by_type("Echo"), 10)
    assert len(items) == 1
    assert items[0].service.host != victim_host


def test_multi_element_opstring(grid):
    """One operational string deploying two different service elements."""
    env, net, lus = grid
    make_cybernode(net, "Cybernode-A", slots=8)
    mh, monitor = make_monitor(net)
    opstring = OperationalString("multi")
    opstring.add(ServiceElement(
        name="Frontend", factory=echo_factory, planned=2,
        qos=QosRequirement(load=1, memory_mb=8), max_per_node=2))
    opstring.add(ServiceElement(
        name="Backend", factory=echo_factory, planned=1,
        qos=QosRequirement(load=2, memory_mb=16), max_per_node=1))
    monitor.deploy(opstring)
    env.run(until=15.0)
    assert len(live_named(lus, "Frontend#0")) + \
        len(live_named(lus, "Frontend#1")) == 2
    assert len(live_named(lus, "Backend")) == 1
    # Load accounting: 2x1 + 1x2 slots.
    status = [n for n in net.hosts.values()]  # noqa: F841
    assert monitor.stats["provisioned"] == 3


def test_opstring_duplicate_element_rejected(grid):
    env, net, lus = grid
    opstring = OperationalString("dup")
    opstring.add(ServiceElement(name="X", factory=echo_factory))
    with pytest.raises(ValueError):
        opstring.add(ServiceElement(name="X", factory=echo_factory))


def test_cybernode_release_unknown_service(grid):
    env, net, lus = grid
    hn, node = make_cybernode(net, "Cybernode-A")

    def proc():
        try:
            yield env.process(node.release("no-such-id"))
        except KeyError:
            return "rejected"

    assert env.run(until=env.process(proc())) == "rejected"


def test_provision_span_closed_when_interrupted(grid):
    # Regression: an Interrupt delivered while _provision awaits a remote
    # hop used to leave its "provision:*" span open forever (found by the
    # RES001 lifecycle lint). The span must be closed on the way out.
    env, net, lus = grid
    make_cybernode(net, "Cybernode-A")
    host = Host(net, "monitor-host")
    monitor = ProvisionMonitor(host)
    env.run(until=5.0)  # let discovery find the lookup service
    opstring = opstring_with()
    gen = monitor._provision(opstring, opstring.elements[0])
    next(gen)  # suspend at the first remote hop; the span is now open
    from repro.sim import Interrupt
    provision_spans = [s for s in monitor.tracer.spans
                       if s.kind == "provision"]
    assert len(provision_spans) == 1
    assert provision_spans[0].ended_at is None
    with pytest.raises(Interrupt):
        gen.throw(Interrupt(cause="undeployed"))
    assert provision_spans[0].ended_at is not None
    assert provision_spans[0].status == "error"
