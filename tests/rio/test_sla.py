"""SLA-driven autoscaling."""

import pytest

from repro.net import Host
from repro.jini import ServiceTemplate
from repro.rio import (
    Cybernode,
    OperationalString,
    ProvisionMonitor,
    QosCapability,
    QosRequirement,
    ServiceElement,
    SlaScaler,
)
from repro.observability import metrics_registry
from repro.sorcer import Tasker


class WorkerProvider(Tasker):
    SERVICE_TYPES = ("Worker",)

    def __init__(self, host, name, attributes=(), **kw):
        super().__init__(host, name, attributes=attributes,
                         lease_duration=5.0, **kw)
        self.add_operation("work", lambda ctx: 1)


def worker_factory(host, instance_name, attributes):
    return WorkerProvider(host, instance_name, attributes=attributes)


def deploy_stack(net, planned=1):
    Cybernode(Host(net, "cyber-0"), "Cybernode",
              capability=QosCapability(compute_slots=16),
              lease_duration=5.0).start()
    monitor = ProvisionMonitor(Host(net, "monitor-host"), poll_interval=0.5)
    monitor.start()
    element = ServiceElement(name="Worker", factory=worker_factory,
                             planned=planned,
                             qos=QosRequirement(load=1, memory_mb=1),
                             max_per_node=16)
    monitor.deploy(OperationalString("sla-os", [element]))
    return monitor


def count_workers(lus):
    return len(lus.lookup(ServiceTemplate.by_type("Worker"), 32))


def test_scaler_validation(grid):
    env, net, lus = grid
    monitor = deploy_stack(net)
    with pytest.raises(ValueError):
        SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                  lambda: 0.0, high_water=1.0, low_water=2.0)
    with pytest.raises(ValueError):
        SlaScaler(Host(net, "sla-host-2"), monitor.ref, "sla-os", "Worker",
                  lambda: 0.0, high_water=2.0, low_water=1.0,
                  min_planned=5, max_planned=2)


def test_scale_out_under_load_and_back(grid):
    env, net, lus = grid
    monitor = deploy_stack(net)
    load = {"value": 0.0}
    scaler = SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                       load_metric=lambda: load["value"],
                       high_water=5.0, low_water=1.0,
                       min_planned=1, max_planned=4, check_interval=1.0)
    scaler.start()
    env.run(until=10.0)
    assert count_workers(lus) == 1

    load["value"] = 10.0  # sustained overload
    env.run(until=30.0)
    assert scaler.planned == 4
    assert count_workers(lus) == 4

    load["value"] = 0.0  # idle again
    env.run(until=80.0)
    assert scaler.planned == 1
    assert count_workers(lus) == 1
    # History records each scaling decision with its trigger load.
    directions = [target for _, _, target in scaler.history]
    assert directions == [2, 3, 4, 3, 2, 1]


def test_scaler_respects_bounds(grid):
    env, net, lus = grid
    monitor = deploy_stack(net)
    scaler = SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                       load_metric=lambda: 100.0,
                       high_water=5.0, low_water=1.0,
                       min_planned=1, max_planned=2, check_interval=1.0)
    scaler.start()
    env.run(until=30.0)
    assert scaler.planned == 2
    assert count_workers(lus) == 2


def test_scaler_reads_registry_gauge(grid):
    """load_metric may be a metric-key prefix: the scaler sums matching
    gauges straight out of the shared MetricsRegistry."""
    env, net, lus = grid
    monitor = deploy_stack(net)
    registry = metrics_registry(net)
    depth = registry.gauge("worker.queue_depth", element="Worker")
    scaler = SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                       load_metric="worker.queue_depth",
                       high_water=5.0, low_water=1.0,
                       min_planned=1, max_planned=4, check_interval=1.0)
    scaler.start()
    env.run(until=10.0)
    assert count_workers(lus) == 1

    depth.set(10.0)  # sustained backlog
    env.run(until=30.0)
    assert scaler.planned == 4
    assert count_workers(lus) == 4

    depth.set(0.0)
    env.run(until=80.0)
    assert scaler.planned == 1
    assert count_workers(lus) == 1


def test_scaler_reads_counter_rate(grid):
    """metric_kind='rate' turns a monotonic counter into a windowed
    per-second rate over the check interval."""
    env, net, lus = grid
    monitor = deploy_stack(net)
    registry = metrics_registry(net)
    requests = registry.counter("worker.requests", element="Worker")
    busy = {"on": False}

    def traffic():
        while True:
            if busy["on"]:
                requests.inc(10)  # 10 req/s while the burst lasts
            yield env.timeout(1.0)

    env.process(traffic())
    scaler = SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                       load_metric="worker.requests", metric_kind="rate",
                       high_water=5.0, low_water=1.0,
                       min_planned=1, max_planned=3, check_interval=1.0)
    scaler.start()
    env.run(until=10.0)
    assert scaler.planned == 1  # idle counter: rate 0

    busy["on"] = True
    env.run(until=30.0)
    assert scaler.planned == 3
    assert count_workers(lus) == 3

    busy["on"] = False
    env.run(until=70.0)
    assert scaler.planned == 1
    assert count_workers(lus) == 1


def test_scaler_rejects_bad_metric_kind(grid):
    env, net, lus = grid
    monitor = deploy_stack(net)
    with pytest.raises(ValueError):
        SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                  "worker.requests", high_water=5.0, low_water=1.0,
                  metric_kind="p99")


def test_monitor_reports_provision_shortfall(grid):
    """Planned beyond capacity leaves a non-zero monitor.shortfall gauge;
    trimming the plan back clears it."""
    env, net, lus = grid
    Cybernode(Host(net, "small-cyber"), "Cybernode",
              capability=QosCapability(compute_slots=2),
              lease_duration=5.0).start()
    monitor = ProvisionMonitor(Host(net, "monitor-host"), poll_interval=0.5)
    monitor.start()
    element = ServiceElement(name="Worker", factory=worker_factory,
                             planned=4,
                             qos=QosRequirement(load=1, memory_mb=1),
                             max_per_node=2)
    monitor.deploy(OperationalString("sla-os", [element]))
    env.run(until=10.0)
    registry = metrics_registry(net)
    assert count_workers(lus) == 2  # capacity-bound
    assert registry.value("monitor.shortfall", monitor="Monitor") == 2.0

    monitor.set_planned("sla-os", "Worker", 2)
    env.run(until=20.0)
    assert registry.value("monitor.shortfall", monitor="Monitor") == 0.0


def test_scaler_stop_freezes_plan(grid):
    env, net, lus = grid
    monitor = deploy_stack(net)
    load = {"value": 10.0}
    scaler = SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                       load_metric=lambda: load["value"],
                       high_water=5.0, low_water=1.0,
                       min_planned=1, max_planned=8, check_interval=1.0)
    scaler.start()
    env.run(until=12.0)
    frozen = scaler.planned
    scaler.stop()
    env.run(until=40.0)
    assert scaler.planned == frozen
