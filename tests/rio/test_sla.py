"""SLA-driven autoscaling."""

import pytest

from repro.net import Host
from repro.jini import ServiceTemplate
from repro.rio import (
    Cybernode,
    OperationalString,
    ProvisionMonitor,
    QosCapability,
    QosRequirement,
    ServiceElement,
    SlaScaler,
)
from repro.sorcer import Tasker


class WorkerProvider(Tasker):
    SERVICE_TYPES = ("Worker",)

    def __init__(self, host, name, attributes=(), **kw):
        super().__init__(host, name, attributes=attributes,
                         lease_duration=5.0, **kw)
        self.add_operation("work", lambda ctx: 1)


def worker_factory(host, instance_name, attributes):
    return WorkerProvider(host, instance_name, attributes=attributes)


def deploy_stack(net, planned=1):
    Cybernode(Host(net, "cyber-0"), "Cybernode",
              capability=QosCapability(compute_slots=16),
              lease_duration=5.0).start()
    monitor = ProvisionMonitor(Host(net, "monitor-host"), poll_interval=0.5)
    monitor.start()
    element = ServiceElement(name="Worker", factory=worker_factory,
                             planned=planned,
                             qos=QosRequirement(load=1, memory_mb=1),
                             max_per_node=16)
    monitor.deploy(OperationalString("sla-os", [element]))
    return monitor


def count_workers(lus):
    return len(lus.lookup(ServiceTemplate.by_type("Worker"), 32))


def test_scaler_validation(grid):
    env, net, lus = grid
    monitor = deploy_stack(net)
    with pytest.raises(ValueError):
        SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                  lambda: 0.0, high_water=1.0, low_water=2.0)
    with pytest.raises(ValueError):
        SlaScaler(Host(net, "sla-host-2"), monitor.ref, "sla-os", "Worker",
                  lambda: 0.0, high_water=2.0, low_water=1.0,
                  min_planned=5, max_planned=2)


def test_scale_out_under_load_and_back(grid):
    env, net, lus = grid
    monitor = deploy_stack(net)
    load = {"value": 0.0}
    scaler = SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                       load_metric=lambda: load["value"],
                       high_water=5.0, low_water=1.0,
                       min_planned=1, max_planned=4, check_interval=1.0)
    scaler.start()
    env.run(until=10.0)
    assert count_workers(lus) == 1

    load["value"] = 10.0  # sustained overload
    env.run(until=30.0)
    assert scaler.planned == 4
    assert count_workers(lus) == 4

    load["value"] = 0.0  # idle again
    env.run(until=80.0)
    assert scaler.planned == 1
    assert count_workers(lus) == 1
    # History records each scaling decision with its trigger load.
    directions = [target for _, _, target in scaler.history]
    assert directions == [2, 3, 4, 3, 2, 1]


def test_scaler_respects_bounds(grid):
    env, net, lus = grid
    monitor = deploy_stack(net)
    scaler = SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                       load_metric=lambda: 100.0,
                       high_water=5.0, low_water=1.0,
                       min_planned=1, max_planned=2, check_interval=1.0)
    scaler.start()
    env.run(until=30.0)
    assert scaler.planned == 2
    assert count_workers(lus) == 2


def test_scaler_stop_freezes_plan(grid):
    env, net, lus = grid
    monitor = deploy_stack(net)
    load = {"value": 10.0}
    scaler = SlaScaler(Host(net, "sla-host"), monitor.ref, "sla-os", "Worker",
                       load_metric=lambda: load["value"],
                       high_water=5.0, low_water=1.0,
                       min_planned=1, max_planned=8, check_interval=1.0)
    scaler.start()
    env.run(until=12.0)
    frozen = scaler.planned
    scaler.stop()
    env.run(until=40.0)
    assert scaler.planned == frozen
