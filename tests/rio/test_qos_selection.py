"""QoS matching and selection policies (pure logic, no network)."""

import numpy as np
import pytest

from repro.rio import (
    Candidate,
    CapacityWeightedRandom,
    LeastLoaded,
    QosCapability,
    QosRequirement,
    RandomChoice,
    RoundRobin,
)


def cand(node_id, slots, used):
    return Candidate(ref=None, node_id=node_id, compute_slots=slots, used_slots=used)


def test_capability_validation():
    with pytest.raises(ValueError):
        QosCapability(compute_slots=0)
    with pytest.raises(ValueError):
        QosCapability(memory_mb=-1)


def test_requirement_validation():
    with pytest.raises(ValueError):
        QosRequirement(load=-1)


def test_satisfied_by_slots():
    cap = QosCapability(compute_slots=2.0, memory_mb=512)
    req = QosRequirement(load=1.0, memory_mb=64)
    assert req.satisfied_by(cap)
    assert req.satisfied_by(cap, used_slots=1.0)
    assert not req.satisfied_by(cap, used_slots=1.5)


def test_satisfied_by_memory():
    cap = QosCapability(compute_slots=8, memory_mb=128)
    req = QosRequirement(load=1, memory_mb=100)
    assert req.satisfied_by(cap)
    assert not req.satisfied_by(cap, used_memory_mb=64)


def test_required_tags():
    cap = QosCapability(tags=frozenset({"jvm", "gateway"}))
    assert QosRequirement(required_tags=frozenset({"jvm"})).satisfied_by(cap)
    assert not QosRequirement(required_tags=frozenset({"gpu"})).satisfied_by(cap)


def test_round_robin_cycles():
    policy = RoundRobin()
    candidates = [cand("a", 4, 0), cand("b", 4, 0), cand("c", 4, 0)]
    picks = [policy.choose(candidates).node_id for _ in range(6)]
    assert picks == ["a", "b", "c", "a", "b", "c"]


def test_round_robin_empty():
    assert RoundRobin().choose([]) is None


def test_least_loaded_picks_lowest_utilization():
    policy = LeastLoaded()
    candidates = [cand("a", 4, 3), cand("b", 4, 1), cand("c", 8, 4)]
    assert policy.choose(candidates).node_id == "b"


def test_least_loaded_tie_breaks_by_id():
    policy = LeastLoaded()
    candidates = [cand("b", 4, 2), cand("a", 4, 2)]
    assert policy.choose(candidates).node_id == "a"


def test_capacity_weighted_prefers_free_nodes():
    rng = np.random.default_rng(0)
    policy = CapacityWeightedRandom(rng)
    candidates = [cand("big", 100, 0), cand("tiny", 1, 0.9)]
    picks = [policy.choose(candidates).node_id for _ in range(200)]
    assert picks.count("big") > 190


def test_capacity_weighted_all_full_falls_back():
    rng = np.random.default_rng(0)
    policy = CapacityWeightedRandom(rng)
    candidates = [cand("a", 2, 2), cand("b", 2, 2)]
    assert policy.choose(candidates) is not None


def test_random_choice_uniformish():
    rng = np.random.default_rng(0)
    policy = RandomChoice(rng)
    candidates = [cand("a", 4, 0), cand("b", 4, 0)]
    picks = [policy.choose(candidates).node_id for _ in range(400)]
    assert 120 < picks.count("a") < 280


def test_candidate_properties():
    c = cand("x", 4, 1)
    assert c.free_slots == 3
    assert c.utilization == 0.25
