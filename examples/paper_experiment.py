#!/usr/bin/env python3
"""The paper's §VI experiment, steps 1-6, with the browser panes printed.

Reproduces Fig 2 (the service inventory as seen through the browser) and
Fig 3 (logical sensor networking):

  1. form a subnet of Neem + Jade + Diamond under Composite-Service;
  2. attach the expression "(a + b + c)/3";
  3. provision New-Composite onto a cybernode via Rio;
  4. compose {Composite-Service, Coral-Sensor} under New-Composite;
  5. attach "(a + b)/2";
  6. read the Sensor Value from New-Composite.

Run:  python examples/paper_experiment.py
"""

from repro.scenarios import build_paper_lab


def main() -> None:
    lab = build_paper_lab(seed=2009)
    lab.settle(6.0)
    env, browser = lab.env, lab.browser

    # -- Fig 2: what the Inca X browser showed -------------------------------
    print("Registered services (Fig 2 inventory):")
    for item in sorted(lab.lus.lookup_all(), key=lambda i: i.name() or ""):
        print(f"  {item.name():<28} @ {item.service.host}")
    print()

    def experiment():
        yield from browser.get_sensor_list()

        # Step 1 — subnet of three elementary sensors.
        assigned = yield from browser.compose_service(
            "Composite-Service",
            ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
        print(f"step 1: composed subnet, variables {assigned}")

        # Step 2 — average of the three.
        yield from browser.add_expression("Composite-Service", "(a + b + c)/3")
        print('step 2: expression "(a + b + c)/3" attached')

        # Step 3 — provision a new composite (Rio picks a cybernode).
        created = yield from browser.create_service("New-Composite")
        print(f"step 3: provisioned New-Composite "
              f"(service id {created['service_id'][:8]}...)")

        # Step 4 — sensor network = {subnet, Coral-Sensor}.
        assigned2 = yield from browser.compose_service(
            "New-Composite", ["Composite-Service", "Coral-Sensor"])
        print(f"step 4: composed network, variables {assigned2}")

        # Step 5 — average of the two composed services.
        yield from browser.add_expression("New-Composite", "(a + b)/2")
        print('step 5: expression "(a + b)/2" attached')

        # Step 6 — read the composite sensor value.
        value = yield from browser.get_value("New-Composite")
        print(f"step 6: New-Composite value = {value:.3f} C")

        yield from browser.get_all_values()
        yield from browser.get_info("New-Composite")
        yield from browser.refresh_topology()
        return value

    value = env.run(until=env.process(experiment()))

    print()
    print(browser.render_info_pane())
    print()
    print(browser.render_values_pane())
    print()
    print(browser.render_topology())

    # Sanity: compare against environment ground truth.
    truth = (lab.ground_truth_mean(
        ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
        + lab.world.sample("temperature", (3.0, 9.0), env.now)) / 2
    print(f"\nmeasured {value:.3f} C vs ground truth {truth:.3f} C "
          f"(delta {abs(value - truth):.3f})")


if __name__ == "__main__":
    main()
