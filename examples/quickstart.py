#!/usr/bin/env python3
"""Quickstart: stand up a sensor-federated network and query it.

Builds the paper's SORCER-Lab deployment (lookup service, Rio provisioning,
four Sun SPOT temperature sensors, a composite, a façade), then uses the
sensor browser to list services, read one sensor, and build a two-sensor
average composite.

Run:  python examples/quickstart.py
"""

from repro.scenarios import build_paper_lab


def main() -> None:
    # 1. Build and settle the deployment (discovery/join needs a moment).
    lab = build_paper_lab(seed=2009)
    lab.settle(6.0)
    env, browser = lab.env, lab.browser

    # 2. Everything below runs *inside* the simulation as one process.
    def session():
        sensors = yield from browser.get_sensor_list()
        neem = yield from browser.get_value("Neem-Sensor")
        jade = yield from browser.get_value("Jade-Sensor")
        # Compose a two-sensor average on the preexisting composite.
        assigned = yield from browser.compose_service(
            "Composite-Service", ["Neem-Sensor", "Jade-Sensor"])
        yield from browser.add_expression("Composite-Service", "(a + b)/2")
        average = yield from browser.get_value("Composite-Service")
        return sensors, neem, jade, assigned, average

    sensors, neem, jade, assigned, average = env.run(
        until=env.process(session()))

    print(browser.render_service_list())
    print()
    print(f"Neem-Sensor   : {neem:.2f} C")
    print(f"Jade-Sensor   : {jade:.2f} C")
    print(f"variables     : {assigned}")
    print(f"(a + b)/2     : {average:.2f} C  (via Composite-Service)")
    expected = (neem + jade) / 2
    print(f"local check   : {expected:.2f} C "
          f"(sensors resampled at query time, so small drift is expected)")
    print(f"\nsimulated time: {env.now:.2f}s, "
          f"network messages: {lab.net.stats.messages}")


if __name__ == "__main__":
    main()
