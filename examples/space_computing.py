#!/usr/bin/env python3
"""Space-based metacomputing over sensor data (§IV.D PULL federations).

The paper's point is that sensors become "fully fledged citizens" of a
metacomputing environment: their data can feed arbitrary federated
computations. Here a batch of analysis tasks (per-sensor anomaly scores
over recent history) is dropped into the exertion space; a pool of worker
providers pulls, computes and writes results back under transactions — and
one worker crashes mid-batch without losing a single task.

Run:  python examples/space_computing.py
"""

import numpy as np

from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService, Name, TransactionManager
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sorcer import (
    Access,
    Exerter,
    ExertionSpace,
    Job,
    ServiceContext,
    Signature,
    SpaceWorker,
    Spacer,
    Strategy,
    Task,
    Tasker,
    join_service,
)
from repro.core import ElementarySensorProvider

N_SENSORS = 6
N_WORKERS = 3


class AnalysisProvider(Tasker):
    """Computes an anomaly score from a sensor's recent readings."""

    SERVICE_TYPES = ("SensorAnalysis",)

    def __init__(self, host, name, **kw):
        super().__init__(host, name, max_concurrency=1, **kw)
        self.add_operation("anomalyScore", self._score)

    def _score(self, ctx):
        values = np.array(ctx.get_value("arg/values"), dtype=float)
        yield self.env.timeout(0.3)  # the "compute" part of MC^2
        if values.size < 2 or values.std() == 0:
            return 0.0
        z = np.abs(values - values.mean()) / values.std()
        return float(z.max())


def main() -> None:
    env = Environment()
    rng = np.random.default_rng(42)
    net = Network(env, rng=rng, latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=42)

    LookupService(Host(net, "lus-host")).start()
    Spacer(Host(net, "spacer-host"), result_timeout=120.0).start()
    space_host = Host(net, "space-host")
    space = ExertionSpace(space_host)
    join_service(space_host, space.ref, net.ids.uuid(),
                 (Name("Exertion Space"),))
    tm = TransactionManager(Host(net, "txn-host"))

    # Sensors sampling on their own schedule.
    esps = []
    for index in range(N_SENSORS):
        probe = TemperatureProbe(env, f"p{index}", world, (index * 15.0, 0.0),
                                 rng=np.random.default_rng(index))
        esp = ElementarySensorProvider(Host(net, f"esp-{index}"),
                                       f"Sensor-{index}", probe,
                                       sample_interval=0.5)
        esp.start()
        esps.append(esp)

    # Worker pool pulling analysis tasks from the space.
    worker_hosts = []
    for index in range(N_WORKERS):
        host = Host(net, f"worker-{index}")
        provider = AnalysisProvider(host, f"Analysis-{index}")
        SpaceWorker(provider, space.ref, txn_manager_ref=tm.ref,
                    poll_timeout=0.5, txn_duration=5.0).start()
        worker_hosts.append(host)

    env.run(until=20.0)  # accumulate sensor history

    # Build the batch: one anomaly-score task per sensor, fed with that
    # sensor's buffered values (in a full deployment a pipe from a
    # getHistory task would supply these; we read the buffers directly to
    # keep the example focused on the space).
    job = Job("anomaly-batch", strategy=Strategy.PARALLEL, access=Access.PULL)
    for esp in esps:
        ctx = ServiceContext()
        ctx.put_in_value("arg/values", [float(v) for v in esp.buffer.values()])
        job.add(Task(f"score-{esp.name}",
                     Signature("SensorAnalysis", "anomalyScore"), ctx))
    job.control.invocation_timeout = 300.0

    # One worker dies mid-batch; its transactional takes are restored.
    def killer():
        yield env.timeout(0.4)
        worker_hosts[0].fail()
        print(f"*** worker-0 crashed at t={env.now:.1f}s ***")

    env.process(killer())
    exerter = Exerter(Host(net, "requestor"))
    t0 = env.now
    result = env.run(until=env.process(exerter.exert(job)))

    print(f"\nbatch status: {result.status.value} "
          f"(makespan {env.now - t0:.2f}s, {N_WORKERS - 1} surviving workers)")
    print("\nper-sensor anomaly scores (max |z| over 40 samples):")
    for esp in esps:
        score = result.context.get_value(
            f"score-{esp.name}/result/value")
        bar = "#" * int(score * 8)
        print(f"  {esp.name}: {score:5.2f}  {bar}")

    executed_by = {}
    for component in result.exertions:
        for record in component.trace:
            executed_by.setdefault(record.provider, 0)
            executed_by[record.provider] += 1
    print(f"\ntasks per worker: {executed_by}")
    assert result.is_done, result.exceptions


if __name__ == "__main__":
    main()
