#!/usr/bin/env python3
"""Air-vehicle fleet telemetry with self-healing provisioning.

The paper's conclusion plans "large-scale air vehicles distributed
applications"; this example models a small UAV fleet whose telemetry
aggregator is a Rio-provisioned composite:

  * every vehicle carries a temperature sensor service (plug-and-play:
    vehicles join and leave the network);
  * a provisioned composite "Fleet-Telemetry" averages the fleet;
  * a composition plan is saved and self-healing enabled, so when the
    cybernode hosting the composite is killed mid-flight, Rio re-provisions
    it on the surviving node and the façade automatically restores its
    composition and expression — no operator action;
  * a vehicle crash (host failure) is detected via lease expiry and the
    fleet continues with the remaining vehicles.

Run:  python examples/fault_tolerant_fleet.py
"""

import numpy as np

from repro.sim import Environment
from repro.net import Host, LanLatency, Network
from repro.jini import LookupService, ServiceTemplate
from repro.rio import Cybernode, ProvisionMonitor, QosCapability
from repro.sensors import PhysicalEnvironment, SunSpotDevice, SunSpotTemperatureProbe
from repro.sorcer import Jobber
from repro.core import (
    ElementarySensorProvider,
    SENSOR_DATA_ACCESSOR,
    SensorBrowser,
    SensorcerFacade,
)

VEHICLES = ("UAV-Alpha", "UAV-Bravo", "UAV-Charlie", "UAV-Delta")


def main() -> None:
    env = Environment()
    rng = np.random.default_rng(1903)
    net = Network(env, rng=rng, latency=LanLatency(rng))
    world = PhysicalEnvironment(seed=1903)

    LookupService(Host(net, "lus-host")).start()
    Jobber(Host(net, "jobber-host")).start()
    nodes = [Cybernode(Host(net, f"cybernode-{i}"), "Cybernode",
                       capability=QosCapability(compute_slots=4),
                       lease_duration=5.0).start() for i in range(2)]
    ProvisionMonitor(Host(net, "monitor-host"), poll_interval=1.0).start()

    vehicles = {}
    for index, name in enumerate(VEHICLES):
        device = SunSpotDevice(env, name.lower())
        probe = SunSpotTemperatureProbe(
            env, device, world, (index * 40.0, index * 15.0),
            rng=np.random.default_rng(index))
        esp = ElementarySensorProvider(Host(net, f"{name}-host"), name, probe,
                                       technology="sunspot",
                                       lease_duration=5.0)
        esp.start()
        vehicles[name] = esp

    facade = SensorcerFacade(Host(net, "facade-host"))
    facade.start()
    browser = SensorBrowser(Host(net, "browser-host"))
    env.run(until=6.0)

    print(f"fleet online: {', '.join(VEHICLES)}\n")

    # -- Provision the telemetry composite, compose the fleet, arm healing ----
    def provision_and_compose():
        created = yield from browser.create_service("Fleet-Telemetry")
        assigned = yield from browser.compose_service(
            "Fleet-Telemetry", list(VEHICLES))
        yield from browser.add_expression(
            "Fleet-Telemetry", "(a + b + c + d)/4")
        value = yield from browser.get_value("Fleet-Telemetry")
        # Save the logical network as a plan and let the façade keep the
        # network converged to it.
        plan = yield from browser.save_network_plan()
        yield from browser.enable_self_healing(plan, interval=2.0)
        return created, assigned, value

    created, assigned, value = env.run(
        until=env.process(provision_and_compose()))
    accessor = browser.accessor

    def host_of(name):
        item = (yield from accessor.find_one(
            ServiceTemplate.by_name(name, SENSOR_DATA_ACCESSOR), wait=3.0))
        return item.service.host if item else None

    home = env.run(until=env.process(host_of("Fleet-Telemetry")))
    print(f"Fleet-Telemetry provisioned on {home}; fleet mean {value:.2f} C")

    # -- Kill the hosting cybernode -------------------------------------------
    victim = net.hosts[home]
    victim.fail()
    print(f"\n*** {home} crashed at t={env.now:.1f}s ***")
    env.run(until=env.now + 30.0)  # lease lapse + monitor convergence

    new_home = env.run(until=env.process(host_of("Fleet-Telemetry")))
    print(f"monitor re-provisioned Fleet-Telemetry on {new_home} "
          f"by t={env.now:.1f}s")
    # The replacement started empty, but the façade's healing loop has
    # already re-applied the saved plan — just read the value.
    value2 = env.run(until=env.process(browser.get_value("Fleet-Telemetry")))
    print(f"fleet mean after self-healing: {value2:.2f} C "
          f"(composition auto-restored by the façade)")

    # -- A vehicle drops out ----------------------------------------------------
    vehicles["UAV-Delta"].host.fail()
    print(f"\n*** UAV-Delta lost at t={env.now:.1f}s ***")
    env.run(until=env.now + 20.0)  # its lease lapses; network forgets it

    def degrade_gracefully():
        sensors = yield from browser.get_sensor_list()
        alive = [s["name"] for s in sensors if s["name"].startswith("UAV-")]
        # Re-provision a fresh aggregate over the survivors.
        yield from browser.create_service("Fleet-Telemetry-2")
        yield from browser.compose_service("Fleet-Telemetry-2", alive)
        yield from browser.add_expression("Fleet-Telemetry-2", "(a + b + c)/3")
        value = yield from browser.get_value("Fleet-Telemetry-2")
        return alive, value

    alive, value3 = env.run(until=env.process(degrade_gracefully()))
    print(f"survivors: {', '.join(sorted(alive))}")
    print(f"fleet mean over {len(alive)} vehicles: {value3:.2f} C")
    print(f"\nsimulated time {env.now:.1f}s, messages {net.stats.messages}, "
          f"bytes {net.stats.total_bytes:,}")


if __name__ == "__main__":
    main()
