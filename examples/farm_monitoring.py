#!/usr/bin/env python3
"""Precision agriculture — the motivating scenario of the paper's §II.2.

Instead of a data-collection specialist driving from field to field, each
field's stations join the network as sensor services; a composite per field
aggregates them, a farm-level composite aggregates the fields, and a heat
alert is a compute-expression — all managed remotely from the browser.

Demonstrates:
  * field subnets built at runtime (composeService);
  * per-field average temperature vs ground truth;
  * an alert expression ("max(a, b) > 30 ? 1 : 0") evaluated at query time;
  * a localized heat event injected into the physical environment and
    detected through the very same composite.

Run:  python examples/farm_monitoring.py
"""

from repro.scenarios import build_farm
from repro.sensors import FieldEvent


def main() -> None:
    farm = build_farm(seed=7, n_fields=3, sensors_per_field=4)
    farm.settle(6.0)
    env, browser = farm.env, farm.browser

    temp_sensors = {
        field: [esp.name for esp in esps
                if esp.probe.teds.quantity == "temperature"]
        for field, esps in farm.fields.items()
    }

    def build_logical_network():
        # One composite per field, averaging its temperature stations.
        for field, names in temp_sensors.items():
            yield from browser.compose_service(field, names)
            yield from browser.add_expression(field, "(a + b)/2")
        # The whole farm as one composite over the field composites.
        yield from browser.compose_service("Farm", list(temp_sensors))
        yield from browser.add_expression("Farm", "(a + b + c)/3")

    env.run(until=env.process(build_logical_network()))

    def read_fields():
        values = {}
        for field in temp_sensors:
            values[field] = yield from browser.get_value(field)
        values["Farm"] = yield from browser.get_value("Farm")
        return values

    values = env.run(until=env.process(read_fields()))
    print("Field averages (service value vs environment ground truth):")
    for field in temp_sensors:
        truth = farm.ground_truth_field_mean(field, "temperature")
        print(f"  {field:<9} {values[field]:7.2f} C   truth {truth:7.2f} C")
    print(f"  {'Farm':<9} {values['Farm']:7.2f} C")

    # -- Heat alert on Field-1 -------------------------------------------------
    def arm_alert():
        # Re-purpose Field-1's expression into a threshold alert.
        yield from browser.add_expression("Field-1", "max(a, b) > 30 ? 1 : 0")
        before = yield from browser.get_value("Field-1")
        return before

    before = env.run(until=env.process(arm_alert()))
    print(f"\nField-1 heat alert armed (threshold 30 C): state={before:.0f}")

    # Inject a +15 C heat plume over Field-1 for ten minutes.
    center = farm.locations[temp_sensors["Field-1"][0]]
    farm.world.add_event(FieldEvent(
        quantity="temperature", center=center, radius=60.0, delta=15.0,
        start=env.now + 5.0, end=env.now + 605.0))

    def watch_alert():
        fired_at = None
        for _ in range(30):
            yield env.timeout(10.0)
            state = yield from browser.get_value("Field-1")
            if state == 1.0 and fired_at is None:
                fired_at = env.now
                break
        return fired_at

    fired_at = env.run(until=env.process(watch_alert()))
    if fired_at is None:
        print("alert did NOT fire (unexpected)")
    else:
        print(f"heat event detected at t={fired_at:.1f}s "
              f"(event started at t={fired_at - fired_at % 10:.0f}s window)")

    def read_after():
        yield from browser.add_expression("Field-1", "(a + b)/2")
        return (yield from browser.get_value("Field-1"))

    hot = env.run(until=env.process(read_after()))
    print(f"Field-1 average during the event: {hot:.2f} C "
          f"(was {values['Field-1']:.2f} C)")


if __name__ == "__main__":
    main()
