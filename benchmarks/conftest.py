"""Benchmark-harness plumbing.

Every benchmark regenerates one experiment from DESIGN.md's per-experiment
index. The *timed* quantity (pytest-benchmark) is the wall-clock cost of
running the simulation; the *reported* quantities are simulated-time
latencies, byte counts, and convergence times printed as tables and saved
under ``benchmarks/results/``.
"""

import pathlib

import pytest

from repro.util.atomicio import atomic_write_text

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Print a result table and persist it under the test's name."""

    def _report(table: str) -> None:
        print("\n" + table)
        path = results_dir / f"{request.node.name}.txt"
        atomic_write_text(path, table + "\n")

    return _report
