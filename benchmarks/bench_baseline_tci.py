"""E-TCI — SenSORCER vs the Jini TCI/SSP/ASP framework (§III.A).

Same fleet (8 temperature sensors) under both architectures; measured:

* **aggregate query latency** — fleet mean via the ASP's fixed 'mean' vs a
  CSP with the equivalent expression;
* **re-grouping cost** — narrowing the aggregate to a 4-sensor subset:
  SenSORCER re-composes the live CSP (two management exertions); the TCI
  framework must destroy and redeploy its single-access-point ASP and wait
  for it to rejoin;
* **capability flags** — client-selectable sensors/computation and
  autonomic provisioning, which the baseline simply lacks.

Expected shape: SenSORCER answers aggregate queries ~10x faster (ESPs
serve locally buffered values; a TCI re-reads every probe synchronously on
each query — §III.A's "difficult in real-time applications" complaint),
and re-composition is an order of magnitude faster than ASP redeployment —
matching the paper's argument that the ASP "is only used for data
processing" while the CSP "allows a client to decide on which sensor
services to use, and what computation to be done".
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment, Interrupt
from repro.net import FixedLatency, Host, Network, rpc_endpoint
from repro.jini import LookupService
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sorcer import Exerter, Jobber, ServiceContext, Signature, Task
from repro.core import (
    CompositeSensorProvider,
    ElementarySensorProvider,
    SENSOR_DATA_ACCESSOR,
)
from repro.baselines import (
    ApplicationServiceProvider,
    TciSensorServiceProvider,
    TerminalCommunicationInterface,
)

N_SENSORS = 8
QUERIES = 5


def probe_at(env, world, index):
    return TemperatureProbe(env, f"probe-{index}", world, (index * 10.0, 0.0),
                            rng=np.random.default_rng(index),
                            sensing_noise=0.0)


def run_sensorcer():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(21),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=21)
    LookupService(Host(net, "lus-host")).start()
    Jobber(Host(net, "jobber-host")).start()
    esps = []
    for index in range(N_SENSORS):
        esp = ElementarySensorProvider(
            Host(net, f"esp-{index}"), f"Sensor-{index}",
            probe_at(env, world, index), sample_interval=1e9)
        esp.start()
        esps.append(esp)
    csp = CompositeSensorProvider(Host(net, "csp-host"), "Aggregate")
    csp.start()
    for esp in esps:
        csp.add_child(esp.service_id, esp.name)
    env.run(until=6.0)
    exerter = Exerter(Host(net, "client"))

    def query():
        task = Task("q", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                   service_id=csp.service_id),
                    ServiceContext())
        result = yield env.process(exerter.exert(task))
        assert result.is_done, result.exceptions
        return result.get_return_value()

    # Warm-up excludes one-off discovery latency.
    env.run(until=env.process(query()))
    latencies = []

    def timed_rounds():
        for _ in range(QUERIES):
            t0 = env.now
            yield env.process(query())
            latencies.append(env.now - t0)

    env.run(until=env.process(timed_rounds()))
    query_latency = float(np.mean(latencies))

    # Re-group to the even sensors with a different computation — at
    # runtime, through management exertions (as the façade would do it).
    t0 = env.now
    mgmt = exerter  # already-warm requestor

    def regroup_remote():
        for esp in esps:
            if int(esp.name.split("-")[1]) % 2 == 1:
                ctx = ServiceContext()
                ctx.put_in_value("arg/service_id", esp.service_id)
                task = Task("rm", Signature(SENSOR_DATA_ACCESSOR,
                                            "removeService",
                                            service_id=csp.service_id), ctx)
                result = yield env.process(mgmt.exert(task))
                assert result.is_done, result.exceptions
        ctx = ServiceContext()
        ctx.put_in_value("arg/expression", "max(a, b, c, d)")
        task = Task("expr", Signature(SENSOR_DATA_ACCESSOR, "setExpression",
                                      service_id=csp.service_id), ctx)
        result = yield env.process(mgmt.exert(task))
        assert result.is_done, result.exceptions

    env.run(until=env.process(regroup_remote()))
    regroup_latency = env.now - t0
    return query_latency, regroup_latency


def run_tci():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(21),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=21)
    LookupService(Host(net, "lus-host")).start()
    # Two TCIs, four sensors each.
    for t in range(2):
        probes = {f"s-{t * 4 + s}": probe_at(env, world, t * 4 + s)
                  for s in range(4)}
        TerminalCommunicationInterface(Host(net, f"tci-{t}"), f"TCI-{t}",
                                       probes).start()
    TciSensorServiceProvider(Host(net, "ssp-host")).start()
    asp = ApplicationServiceProvider(Host(net, "asp-host"))
    asp.start()
    env.run(until=6.0)
    client = rpc_endpoint(Host(net, "client"))
    latencies = []

    def timed_rounds():
        for _ in range(QUERIES):
            t0 = env.now
            yield client.call(asp.ref, "query", "mean", timeout=60.0)
            latencies.append(env.now - t0)

    env.run(until=env.process(timed_rounds()))
    query_latency = float(np.mean(latencies))

    # Re-group to the even sensors: destroy + redeploy the ASP.
    t0 = env.now

    def redeploy():
        yield env.process(asp.destroy())
        replacement = ApplicationServiceProvider(
            Host(net, "asp2-host"), name="ASP",
            include_sensors=[f"s-{i}" for i in range(0, N_SENSORS, 2)])
        replacement.start()
        # The new single access point must be discoverable and answering.
        while True:
            try:
                yield client.call(replacement.ref, "query", "mean",
                                  timeout=60.0)
                return
            except Interrupt:
                raise
            except Exception:
                yield env.timeout(0.5)

    env.run(until=env.process(redeploy()))
    regroup_latency = env.now - t0
    return query_latency, regroup_latency


def test_sensorcer_vs_tci(benchmark, report):
    def run_all():
        return run_sensorcer(), run_tci()

    (s_query, s_regroup), (t_query, t_regroup) = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    rows = [
        ["aggregate query latency (s)", s_query, t_query],
        ["re-group to 4-sensor subset (s)", s_regroup, t_regroup],
        ["client-selectable computation", "yes (expressions)", "no (fixed menu)"],
        ["runtime re-composition", "yes (CSP mgmt ops)", "no (redeploy ASP)"],
        ["autonomic provisioning", "yes (Rio)", "no"],
    ]
    report(render_table(
        ["metric", "SenSORCER", "TCI/SSP/ASP"], rows,
        title=f"E-TCI — same {N_SENSORS}-sensor fleet under both frameworks"))
    # §III.A: the TCI is "burdened with a lot many responsibilities" and
    # struggles with fast value reporting — every query re-reads probes
    # synchronously, while ESPs answer from their local store.
    assert s_query < t_query
    assert t_query < 100 * s_query
    # Runtime re-composition crushes ASP redeployment.
    assert s_regroup < t_regroup / 5
