"""E-SURR — ESP (local store) vs the surrogate architecture (§III.B).

One Sun SPOT, queried by an increasing number of concurrent clients at
1 Hz for 30 simulated seconds, wrapped either as a SenSORCER ESP (samples
once a second into its local store; queries answered from the buffer) or
as a device surrogate (every query forwarded over the mote's single
80 ms-round-trip radio).

Reported per configuration: mean query latency and the number of device
wake-ups (battery cost). Expected shape — the paper's §III.B critique made
measurable: surrogate latency grows with client count (radio serialization)
and device reads grow with *queries*, while the ESP's latency stays flat
and its device reads stay at the sampling rate regardless of load.
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment, Interrupt
from repro.net import FixedLatency, Host, Network, rpc_endpoint
from repro.jini import LookupService
from repro.sensors import PhysicalEnvironment, SunSpotDevice, \
    SunSpotTemperatureProbe
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.baselines import DeviceLink, SurrogateHost
from repro.core import ElementarySensorProvider, SENSOR_DATA_ACCESSOR

CLIENTS = (1, 4, 8)
DURATION = 30.0
QUERY_INTERVAL = 1.0


def base(seed=33):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(seed),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=seed)
    LookupService(Host(net, "lus-host")).start()
    device = SunSpotDevice(env, "spot", battery_mah=720.0)
    probe = SunSpotTemperatureProbe(env, device, world, (0, 0),
                                    rng=np.random.default_rng(0))
    return env, net, world, device, probe


def run_esp(n_clients):
    env, net, world, device, probe = base()
    esp = ElementarySensorProvider(Host(net, "esp-host"), "Spot", probe,
                                   sample_interval=1.0)
    esp.start()
    env.run(until=5.0)
    reads_before = device.total_reads
    latencies = []

    def client(i):
        exerter = Exerter(Host(net, f"client-{i}"))
        deadline = env.now + DURATION
        while env.now < deadline:
            t0 = env.now
            task = Task("q", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                       service_id=esp.service_id),
                        ServiceContext())
            result = yield env.process(exerter.exert(task))
            if result.is_done:
                latencies.append(env.now - t0)
            yield env.timeout(QUERY_INTERVAL)

    procs = [env.process(client(i)) for i in range(n_clients)]

    def driver():
        yield env.all_of(procs)

    env.run(until=env.process(driver()))
    return float(np.mean(latencies)), device.total_reads - reads_before


def run_surrogate(n_clients):
    env, net, world, device, probe = base()
    sh = SurrogateHost(Host(net, "surrogate-host"))
    link = DeviceLink(env, round_trip=0.08)
    surrogate = sh.activate("Spot", probe, link)
    env.run(until=5.0)
    reads_before = device.total_reads
    latencies = []

    def client(i):
        ep = rpc_endpoint(Host(net, f"client-{i}"))
        deadline = env.now + DURATION
        while env.now < deadline:
            t0 = env.now
            try:
                yield ep.call(surrogate.ref, "getValue", timeout=30.0)
                latencies.append(env.now - t0)
            except Interrupt:
                raise
            except Exception:
                pass
            yield env.timeout(QUERY_INTERVAL)

    procs = [env.process(client(i)) for i in range(n_clients)]

    def driver():
        yield env.all_of(procs)

    env.run(until=env.process(driver()))
    return float(np.mean(latencies)), device.total_reads - reads_before


def test_esp_vs_surrogate(benchmark, report):
    def run_all():
        rows = []
        for n in CLIENTS:
            esp_latency, esp_reads = run_esp(n)
            surr_latency, surr_reads = run_surrogate(n)
            rows.append([n, esp_latency, surr_latency,
                         esp_reads, surr_reads])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["clients", "ESP latency (s)", "surrogate latency (s)",
         "ESP device reads", "surrogate device reads"],
        rows,
        title=f"E-SURR — 1 Sun SPOT, {DURATION:.0f}s at "
              f"{1/QUERY_INTERVAL:.0f} query/s per client"))
    by_n = {row[0]: row for row in rows}
    for n in CLIENTS:
        # ESP answers from its store: faster than the radio round trip.
        assert by_n[n][1] < by_n[n][2]
    # Surrogate device cost scales with clients; ESP cost does not.
    assert by_n[8][4] > 6 * by_n[1][4] / 2
    assert by_n[8][3] < 1.5 * by_n[1][3]
    # Radio serialization: surrogate latency grows with concurrency.
    assert by_n[8][2] > by_n[1][2]
