"""E-CACHE — ablation: lookup caching in the service accessor.

SORCER caches provider proxies; our ServiceAccessor optionally caches
lookup results per template (``cache_ttl``). A client issues 50 queries
against one provider; reported: mean query latency and LUS lookup requests,
without caching, with a 5 s TTL, and with a 60 s TTL — plus the staleness
cost: the provider is restarted mid-run (new service id, new host) and the
cached proxy goes stale until the TTL expires.

Expected shape: caching removes the LUS round trip from the hot path
(~30-40% lower query latency on an idle LAN, 50x fewer registry requests);
the staleness cost after churn is bounded by one failed attempt round,
because the exerter invalidates the cache when every candidate fails.
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService
from repro.sorcer import (
    Exerter,
    ServiceAccessor,
    ServiceContext,
    Signature,
    Task,
    Tasker,
)

QUERIES = 50


class PingProvider(Tasker):
    SERVICE_TYPES = ("Ping",)

    def __init__(self, host, name="Ping", **kw):
        super().__init__(host, name, lease_duration=5.0, **kw)
        self.add_operation("ping", lambda ctx: 1)


def run_steady(cache_ttl):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(51),
                  latency=FixedLatency(0.001))
    LookupService(Host(net, "lus-host")).start()
    PingProvider(Host(net, "p-host")).start()
    env.run(until=5.0)
    client = Host(net, "client")
    accessor = ServiceAccessor(client, cache_ttl=cache_ttl)
    exerter = Exerter(client, accessor=accessor)
    latencies = []

    def proc():
        # Warm-up (discovery + first lookup).
        task = Task("w", Signature("Ping", "ping"), ServiceContext())
        yield env.process(exerter.exert(task))
        base = net.stats.by_kind["lus-lookup"]["messages"]
        for _ in range(QUERIES):
            task = Task("q", Signature("Ping", "ping"), ServiceContext())
            t0 = env.now
            result = yield env.process(exerter.exert(task))
            assert result.is_done, result.exceptions
            latencies.append(env.now - t0)
        return net.stats.by_kind["lus-lookup"]["messages"] - base

    lookups = env.run(until=env.process(proc()))
    return float(np.mean(latencies)), lookups


def run_churn(cache_ttl):
    """Provider restarts mid-run; measure failed queries until recovery."""
    env = Environment()
    net = Network(env, rng=np.random.default_rng(52),
                  latency=FixedLatency(0.001))
    LookupService(Host(net, "lus-host")).start()
    provider = PingProvider(Host(net, "p-host"))
    provider.start()
    env.run(until=5.0)
    client = Host(net, "client")
    accessor = ServiceAccessor(client, cache_ttl=cache_ttl)
    exerter = Exerter(client, accessor=accessor)
    failures = 0

    def proc():
        nonlocal failures
        for index in range(30):
            if index == 10:
                # Restart: old instance dies, replacement on a new host.
                provider.host.fail()
                replacement = PingProvider(Host(net, "p-host-2"), "Ping-2")
                replacement.start()
                yield env.timeout(2.0)
            task = Task("q", Signature("Ping", "ping"), ServiceContext())
            task.control.invocation_timeout = 0.5
            task.control.provider_wait = 2.0
            result = yield env.process(exerter.exert(task))
            if result.is_failed:
                failures += 1
            yield env.timeout(1.0)

    env.run(until=env.process(proc()))
    return failures


def test_lookup_cache_ablation(benchmark, report):
    def run_all():
        rows = []
        for ttl, label in ((0.0, "no cache"), (5.0, "TTL 5s"),
                           (60.0, "TTL 60s")):
            latency, lookups = run_steady(ttl)
            failures = run_churn(ttl)
            rows.append([label, latency, lookups, failures])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["configuration", "query latency (s)", "LUS lookups / 50 queries",
         "failed queries under churn"],
        rows,
        title="E-CACHE — accessor lookup caching ablation"))
    by_label = {row[0]: row for row in rows}
    # Caching removes the registry round trip from the hot path.
    assert by_label["TTL 60s"][1] < by_label["no cache"][1]
    assert by_label["TTL 60s"][2] <= 2
    assert by_label["no cache"][2] == QUERIES
    # Churn: the exerter invalidates a stale cache after a full round of
    # failures, so even TTL 60s loses at most the in-flight queries.
    assert by_label["no cache"][3] == 0
    assert by_label["TTL 60s"][3] <= 2