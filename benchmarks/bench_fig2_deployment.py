"""FIG2 — the SORCER-Lab deployment and its service inventory.

Regenerates the content of the paper's Fig 2: the full service listing a
browser attached to the lookup service would show (Jini infrastructure,
Rio provisioning services, four temperature ESPs, one composite, one
façade). Timed quantity: building + settling the whole deployment.
"""

from repro.metrics import render_table
from repro.scenarios import SENSOR_NAMES, build_paper_lab

EXPECTED = {
    "Transaction Manager", "Event Mailbox", "Lease Renewal Service",
    "Lookup Discovery Service", "Monitor", "Jobber", "Composite-Service",
    "SenSORCER Facade", *SENSOR_NAMES,
}


def deploy():
    lab = build_paper_lab(seed=2009)
    lab.settle(6.0)
    return lab


def test_fig2_deployment(benchmark, report):
    lab = benchmark.pedantic(deploy, rounds=3, iterations=1)

    items = sorted(lab.lus.lookup_all(), key=lambda i: i.name() or "")
    names = {item.name() for item in items}
    assert EXPECTED <= names, f"missing services: {EXPECTED - names}"
    cybernodes = [i for i in items if i.name() == "Cybernode"]
    assert len(cybernodes) == 2

    rows = [[item.name(), item.service.host,
             "/".join(t for t in item.service.type_names if t != "Servicer")]
            for item in items]
    report(render_table(
        ["service", "host", "remote types"], rows,
        title=(f"FIG2 — registered services after settle "
               f"(t={lab.env.now:.1f}s sim, {len(items)} services, "
               f"{lab.net.stats.messages} messages)")))
