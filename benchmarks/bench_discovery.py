"""E-PNP — plug-and-play: how fast services appear, and how the network
recovers a restarted registry.

* **join visibility** — K sensor services start at once; time until *all* K
  are discoverable through the lookup service (§VII: "any sensor service
  [can] appear and go away in the network dynamically");
* **late-joiner visibility** — one service starts long after the network
  settles (the steady-state add-a-sensor case);
* **registry restart** — the LUS host crashes and recovers empty; time
  until every service has re-registered (join managers re-register on
  rediscovery).

Expected shape: join visibility is dominated by the discovery probe round
plus one register RPC (well under a second at LAN latency) and is flat in
K; restart recovery is bounded by the announcement interval plus a
maintenance round.
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService, ServiceTemplate
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.core import ElementarySensorProvider, SENSOR_DATA_ACCESSOR

BATCHES = (1, 8, 32)
ANNOUNCE_INTERVAL = 5.0


def setup(n_prestarted=0):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(9),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=9)
    lus = LookupService(Host(net, "lus-host"),
                        announce_interval=ANNOUNCE_INTERVAL)
    lus.start()
    for index in range(n_prestarted):
        start_sensor(env, net, world, f"Pre-{index}")
    return env, net, world, lus


def start_sensor(env, net, world, name, lease=10.0):
    probe = TemperatureProbe(env, name.lower(), world, (0, 0),
                             rng=np.random.default_rng(0))
    esp = ElementarySensorProvider(Host(net, f"{name}-host"), name, probe,
                                   sample_interval=1e9, lease_duration=lease)
    esp.start()
    return esp


def visible_count(lus, prefix):
    return sum(1 for item in lus.lookup(
        ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), 256)
        if (item.name() or "").startswith(prefix))


def batch_join_time(k):
    env, net, world, lus = setup()
    started_at = env.now
    for index in range(k):
        start_sensor(env, net, world, f"Batch-{index}")
    while visible_count(lus, "Batch-") < k:
        env.run(until=env.now + 0.05)
        if env.now - started_at > 30.0:
            raise AssertionError(f"only {visible_count(lus, 'Batch-')}/{k} joined")
    return env.now - started_at


def late_joiner_time():
    env, net, world, lus = setup(n_prestarted=8)
    env.run(until=30.0)  # settled network
    started_at = env.now
    start_sensor(env, net, world, "Late")
    while visible_count(lus, "Late") < 1:
        env.run(until=env.now + 0.05)
    return env.now - started_at


def registry_restart_recovery(k=8):
    env, net, world, lus = setup()
    for index in range(k):
        start_sensor(env, net, world, f"Svc-{index}")
    env.run(until=10.0)
    assert visible_count(lus, "Svc-") == k
    lus.host.fail()       # registry wiped
    env.run(until=15.0)
    lus.host.recover()
    recovered_at = env.now
    while visible_count(lus, "Svc-") < k:
        env.run(until=env.now + 0.1)
        if env.now - recovered_at > 60.0:
            raise AssertionError("services never re-registered")
    return env.now - recovered_at


def test_plug_and_play(benchmark, report):
    def run_all():
        join_rows = [[k, batch_join_time(k)] for k in BATCHES]
        late = late_joiner_time()
        restart = registry_restart_recovery()
        return join_rows, late, restart

    join_rows, late, restart = benchmark.pedantic(run_all, rounds=1,
                                                  iterations=1)
    rows = [[f"batch join, K={k}", t] for k, t in join_rows]
    rows.append(["late joiner (settled net)", late])
    rows.append(["LUS restart -> all re-registered", restart])
    report(render_table(
        ["scenario", "time to visibility (s)"], rows,
        title="E-PNP — plug-and-play latency "
              f"(announce interval {ANNOUNCE_INTERVAL}s)"))
    # Joining is sub-second and flat in K (discovery is multicast).
    for k, t in join_rows:
        assert t < 1.0
    assert late < 1.0
    # Restart recovery bounded by announce interval + maintenance round.
    assert restart < ANNOUNCE_INTERVAL + 5.0
