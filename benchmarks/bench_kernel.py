"""E-KERNEL — simulation-kernel throughput, proven against the old shape.

Three measurements, all wall-clock (this file is the sanctioned exception
to the no-wall-clock rule — measuring the simulator itself is its job):

* **paper tick** — the headline: one simulated fleet tick (every sensor
  delivers a reading) at N sensors, run both ways. *Legacy* reproduces the
  pre-refactor hot path: the reference heap scheduler, one recurring timer
  event per sensor, scalar field sampling with no knot reuse (each read
  builds its noise RNGs from scratch, as ``_knot`` used to). *New* is the
  shipped path: calendar-queue scheduler, one batched timer per tick,
  vectorized :meth:`sample_many` with cached knots. The acceptance gate is
  ``new.reads_per_sec >= 5 x legacy.reads_per_sec`` at N=4096.
* **scheduler micro** — raw kernel events/sec for heap vs calendar on an
  identical mixed timer program (no sensor work), isolating the scheduler.
* **burst micro** — M same-instant timeouts per round: the tie-cell case a
  CSP fan-out hits, where the calendar appends to one FIFO cell while the
  heap pays O(log n) per event.

Results land in ``BENCH_KERNEL.json`` (plus a table under
``benchmarks/results/``). CI runs ``--smoke`` and compares the paper-tick
*speedup ratio* against the committed baseline
(``benchmarks/results/bench_kernel_baseline.json``): the ratio is
machine-independent where absolute events/sec are not, so the >20%%
regression gate does not flap across runner hardware.
"""
# repro: allow-file[DET001] - benchmarks time real work on the wall clock

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.metrics import render_table  # noqa: E402
from repro.scenarios.grids import grid_locations  # noqa: E402
from repro.sensors import PhysicalEnvironment  # noqa: E402
from repro.sim import Environment  # noqa: E402

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: The acceptance-criteria size (full mode); smoke keeps CI fast.
N_SENSORS = 512 if SMOKE else 4096
TICKS = 20 if SMOKE else 50
MICRO_TIMERS = 200
MICRO_DURATION = 60.0 if SMOKE else 240.0
BURST_SIZE = 512 if SMOKE else 4096
BURST_ROUNDS = 10

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "bench_kernel_baseline.json"
OUTPUT = Path.cwd() / "BENCH_KERNEL.json"

#: Paper-tick speedup the refactor must clear (acceptance criteria).
MIN_SPEEDUP = 5.0
#: Allowed regression against the committed baseline ratio.
REGRESSION_BAND = 0.8
#: Repetitions per paper-tick leg; each leg keeps its best run. Scheduler
#: noise on a shared runner only ever *slows* a run, so max-of-N is the
#: robust throughput estimator and keeps the ratio gate from flapping.
REPS = 3


def _timed_run(env: Environment, until: float) -> dict:
    t0 = time.perf_counter()
    env.run(until=until)
    wall = max(time.perf_counter() - t0, 1e-9)
    events = next(env._seq)  # total occurrences scheduled so far
    return {"wall_s": round(wall, 6), "events": events,
            "events_per_sec": round(events / wall, 1)}


def paper_tick(mode: str, n: int, ticks: int) -> dict:
    """One fleet reading per sensor per simulated second, measured end to end."""
    env = Environment(scheduler="heap" if mode == "legacy" else "calendar")
    world = PhysicalEnvironment(seed=5, vectorize=(mode == "new"))
    locations = grid_locations(n)
    reads = [0]

    if mode == "legacy":
        def sensor(loc):
            while True:
                yield env.timeout(1.0)
                world.sample("temperature", loc, env.now)
                reads[0] += 1

        for loc in locations:
            env.process(sensor(loc))

        def knot_spoiler():
            # Pre-refactor _knot had no cache: every read rebuilt its noise
            # RNGs. Dropping the cache each tick reproduces that cost.
            while True:
                world._knots.clear()
                yield env.timeout(1.0)

        env.process(knot_spoiler())
    else:
        def fleet():
            while True:
                yield env.timeout(1.0)
                reads[0] += len(world.sample_many("temperature", locations,
                                                  env.now))

        env.process(fleet())

    stats = _timed_run(env, until=float(ticks))
    stats["reads"] = reads[0]
    stats["reads_per_sec"] = round(reads[0] / stats["wall_s"], 1)
    return stats


def scheduler_micro(kind: str) -> dict:
    """Mixed recurring-timer program: the scheduler, nothing else."""
    env = Environment(scheduler=kind)
    rng = np.random.default_rng(42)
    periods = 0.05 + rng.random(MICRO_TIMERS) * 2.0

    def ticker(period):
        while True:
            yield env.timeout(period)

    for period in periods:
        env.process(ticker(float(period)))
    return _timed_run(env, until=MICRO_DURATION)


def burst_micro(kind: str) -> dict:
    """M timeouts landing on one (time, priority) instant, repeatedly."""
    env = Environment(scheduler=kind)

    def proc():
        for _ in range(BURST_ROUNDS):
            yield env.all_of([env.timeout(1.0) for _ in range(BURST_SIZE)])

    env.process(proc())
    return _timed_run(env, until=float(BURST_ROUNDS + 1))


def _best_paper_tick(mode: str) -> dict:
    runs = [paper_tick(mode, N_SENSORS, TICKS) for _ in range(REPS)]
    return max(runs, key=lambda stats: stats["reads_per_sec"])


def collect() -> dict:
    legacy = _best_paper_tick("legacy")
    new = _best_paper_tick("new")
    speedup = new["reads_per_sec"] / legacy["reads_per_sec"]
    micro = {kind: scheduler_micro(kind) for kind in ("heap", "calendar")}
    burst = {kind: burst_micro(kind) for kind in ("heap", "calendar")}
    return {
        "smoke": SMOKE,
        "n_sensors": N_SENSORS,
        "ticks": TICKS,
        "paper_tick": {"legacy": legacy, "new": new,
                       "speedup": round(speedup, 2)},
        "scheduler_micro": {
            **micro,
            "ratio": round(micro["calendar"]["events_per_sec"]
                           / micro["heap"]["events_per_sec"], 3)},
        "burst_micro": {
            **burst,
            "ratio": round(burst["calendar"]["events_per_sec"]
                           / burst["heap"]["events_per_sec"], 3)},
    }


def check_gates(results: dict) -> list:
    """Returns a list of failure strings (empty = all gates pass)."""
    failures = []
    speedup = results["paper_tick"]["speedup"]
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"paper-tick speedup {speedup:.2f}x is below the required "
            f"{MIN_SPEEDUP:.0f}x at N={results['n_sensors']}")
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        floor = baseline["paper_tick"]["speedup"] * REGRESSION_BAND
        if speedup < floor:
            failures.append(
                f"paper-tick speedup {speedup:.2f}x regressed >20% against "
                f"the committed baseline "
                f"{baseline['paper_tick']['speedup']:.2f}x (floor "
                f"{floor:.2f}x)")
    return failures


def render(results: dict) -> str:
    tick = results["paper_tick"]
    rows = [
        ["paper tick (legacy)", tick["legacy"]["reads_per_sec"],
         tick["legacy"]["events_per_sec"], tick["legacy"]["wall_s"]],
        ["paper tick (new)", tick["new"]["reads_per_sec"],
         tick["new"]["events_per_sec"], tick["new"]["wall_s"]],
        ["scheduler micro (heap)", "-",
         results["scheduler_micro"]["heap"]["events_per_sec"],
         results["scheduler_micro"]["heap"]["wall_s"]],
        ["scheduler micro (calendar)", "-",
         results["scheduler_micro"]["calendar"]["events_per_sec"],
         results["scheduler_micro"]["calendar"]["wall_s"]],
        ["burst micro (heap)", "-",
         results["burst_micro"]["heap"]["events_per_sec"],
         results["burst_micro"]["heap"]["wall_s"]],
        ["burst micro (calendar)", "-",
         results["burst_micro"]["calendar"]["events_per_sec"],
         results["burst_micro"]["calendar"]["wall_s"]],
    ]
    title = (f"E-KERNEL — kernel throughput at N={results['n_sensors']} "
             f"(paper-tick speedup {tick['speedup']}x)")
    return render_table(["workload", "reads/s", "events/s", "wall (s)"],
                        rows, title=title)


def write_output(results: dict) -> None:
    from repro.util.atomicio import atomic_write_text
    atomic_write_text(OUTPUT, json.dumps(results, indent=2, sort_keys=True)
                      + "\n")


def test_kernel_throughput(report):
    results = collect()
    write_output(results)
    report(render(results))
    failures = check_gates(results)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI tier: small N, short runs "
                             "(same as REPRO_BENCH_SMOKE=1)")
    global N_SENSORS, TICKS, MICRO_DURATION, BURST_SIZE, SMOKE
    args = parser.parse_args(argv)
    if args.smoke and not SMOKE:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
        SMOKE = True
        N_SENSORS, TICKS, MICRO_DURATION, BURST_SIZE = 512, 20, 60.0, 512
    results = collect()
    write_output(results)
    print(render(results))
    failures = check_gates(results)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    print(f"wrote {OUTPUT}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
