"""FIG3 — the §VI six-step logical-sensor-networking experiment.

Regenerates Fig 3: subnet of three sensors with "(a+b+c)/3", a provisioned
New-Composite, the two-level network with "(a+b)/2", and the composite
sensor value — checked against the synthetic environment's ground truth.
Timed quantity: the full six steps end to end (including Rio provisioning).
Reported: per-step simulated latency.
"""

from repro.metrics import render_table
from repro.scenarios import build_paper_lab


def run_experiment():
    lab = build_paper_lab(seed=2009)
    lab.settle(6.0)
    env, browser = lab.env, lab.browser
    steps: list = []

    def step(label):
        steps.append([label, env.now])

    def experiment():
        t0 = env.now
        yield from browser.compose_service(
            "Composite-Service",
            ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
        step("1 compose subnet (3 ESPs)")
        yield from browser.add_expression("Composite-Service", "(a + b + c)/3")
        step("2 attach (a+b+c)/3")
        yield from browser.create_service("New-Composite")
        step("3 provision New-Composite")
        yield from browser.compose_service(
            "New-Composite", ["Composite-Service", "Coral-Sensor"])
        step("4 compose network (subnet+Coral)")
        yield from browser.add_expression("New-Composite", "(a + b)/2")
        step("5 attach (a+b)/2")
        value = yield from browser.get_value("New-Composite")
        step("6 read composite value")
        return value, t0

    value, t0 = env.run(until=env.process(experiment()))
    # Per-step latency = delta between consecutive step stamps.
    previous = t0
    for row in steps:
        row_time = row[1]
        row[1] = row_time - previous
        previous = row_time
    return lab, value, steps, previous - t0


def test_fig3_six_steps(benchmark, report):
    lab, value, steps, total = benchmark.pedantic(run_experiment,
                                                  rounds=3, iterations=1)
    env, world = lab.env, lab.world
    subnet = [(0.0, 0.0), (8.0, 2.0), (12.0, 7.0)]
    truth = (world.mean_over("temperature", subnet, env.now)
             + world.sample("temperature", (3.0, 9.0), env.now)) / 2
    assert abs(value - truth) < 1.5, (value, truth)

    rows = [[label, latency] for label, latency in steps]
    rows.append(["TOTAL (all six steps)", total])
    report(render_table(
        ["step", "sim latency (s)"], rows,
        title=(f"FIG3 — six-step experiment; "
               f"New-Composite value {value:.3f} C vs ground truth "
               f"{truth:.3f} C (delta {abs(value - truth):.3f})")))
