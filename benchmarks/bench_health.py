"""E-HEALTH — management-plane detection latency and rollup overhead.

Two claims about the health plane bolted onto the paper's Fig 2 lab:

* **detection latency**: a partitioned sensor node is marked DOWN within
  one SLO evaluation window of its registration lease lapsing, the alert
  edge fires on the same beat, and the walk back to UP after the heal has
  no flapping — the timeline table shows every hop;
* **rollup overhead**: deriving per-entity health, rolling the metric
  windows and judging SLOs every simulated second costs <= 5% wall clock
  on top of the identical lab serving a 4 Hz status browser with the
  plane disabled (the E-OBS budget and methodology — overhead against a
  working network — applied to the whole management plane).

``REPRO_BENCH_SMOKE=1`` shrinks the overhead comparison to a CI-sized
smoke run (fewer interleaved repeats; same assertions except the timing
budget, which a shared runner cannot honour reliably).
"""

import gc
import os
import time
# repro: allow-file[DET001] - benchmarks time real work on the wall clock

import pytest

from repro.metrics import render_table
from repro.observability import DOWN, Slo, UP
from repro.scenarios import build_paper_lab

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def run_partition_timeline(seed=2009):
    lab = build_paper_lab(seed=seed)
    lab.health.engine.add(Slo(
        "neem-node-health", "health.status{entity=node:neem-host}",
        1.0, kind="value", window=1, for_windows=1, clear_windows=2))
    lab.settle(6.0)
    others = [name for name in lab.hosts if name != "neem-host"]
    partitioned_at = lab.env.now
    lab.net.partition(["neem-host"], others)
    lab.env.run(until=60.0)
    healed_at = lab.env.now
    lab.net.heal_partition(["neem-host"], others)
    lab.env.run(until=95.0)
    moments = {(tr["entity"], tr["to"]): tr["t"]
               for tr in lab.health.model.transitions}
    alerts = [a for a in lab.health.engine.alerts
              if a.slo == "neem-node-health"]
    return lab, moments, alerts, partitioned_at, healed_at


def test_health_detection_latency(benchmark, report):
    lab, moments, alerts, partitioned_at, healed_at = benchmark.pedantic(
        run_partition_timeline, rounds=1, iterations=1)
    degraded_t = moments[("node:neem-host", "DEGRADED")]
    down_t = moments[("node:neem-host", DOWN)]
    up_t = max(t for (entity, to), t in moments.items()
               if entity == "node:neem-host" and to == UP)
    fired_t = alerts[0].t
    resolved_t = alerts[1].t
    report(render_table(
        ["event", "t (sim s)"],
        [["partition", partitioned_at],
         ["node DEGRADED (lease at risk)", degraded_t],
         ["node DOWN (lease reaped)", down_t],
         ["SLO alert fired", fired_t],
         ["partition healed", healed_at],
         ["node UP again", up_t],
         ["SLO alert resolved", resolved_t]],
        title="E-HEALTH — partition detection timeline (seed 2009)"))
    # Degradation precedes the lease lapse; the alert fires within one
    # 1 s evaluation window of DOWN; recovery follows the heal.
    assert partitioned_at < degraded_t < down_t
    assert down_t <= fired_t <= down_t + 1.0
    assert healed_at < up_t < resolved_t
    # No flapping: the full walk is exactly one pass per state.
    walk = [(tr["from"], tr["to"]) for tr in lab.health.model.transitions
            if tr["entity"] == "node:neem-host"]
    assert walk == [("UNKNOWN", UP), (UP, "DEGRADED"), ("DEGRADED", DOWN),
                    (DOWN, UP)]


def _timed_lab_run(health_enabled, seed=11, interval=0.25, rounds=200):
    """Wall-clock seconds for a settled lab serving a 4 Hz status browser
    (every service polled each round — the E-OBS convention of measuring
    overhead against a *working* network, not an idle one) with the
    management plane on or off. GC is paused so its allocation-driven
    pauses don't land on either mode arbitrarily."""
    lab = build_paper_lab(seed=seed)
    lab.health.enabled = health_enabled
    lab.settle(6.0)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        lab.env.run(until=lab.env.process(lab.browser.watch(
            list(lab.sensors), interval=interval, rounds=rounds)))
        return time.perf_counter() - started, lab.health.store.collections
    finally:
        if gc_was_enabled:
            gc.enable()


def test_health_rollup_overhead(benchmark, report):
    """E-HEALTH overhead arm: full management plane <= 5% wall clock."""
    repeats = 4 if SMOKE else 24

    def fastest_half_mean(samples):
        best = sorted(samples)[:max(1, len(samples) // 2)]
        return sum(best) / len(best)

    def run_all():
        on, off, collections = [], [], 0
        for pair in range(repeats):
            modes = (True, False) if pair % 2 == 0 else (False, True)
            for enabled in modes:
                seconds, collected = _timed_lab_run(enabled)
                if enabled:
                    on.append(seconds)
                    collections = collected
                else:
                    off.append(seconds)
                    assert collected == 0  # disabled plane does nothing
        return fastest_half_mean(on), fastest_half_mean(off), collections

    enabled, disabled, collections = benchmark.pedantic(run_all, rounds=1,
                                                        iterations=1)
    overhead = enabled / disabled - 1.0
    report(render_table(
        ["metric", "value"],
        [["rollup collections per run", collections],
         ["wall clock, health on (s)", enabled],
         ["wall clock, health off (s)", disabled],
         ["overhead", overhead],
         ["smoke mode", SMOKE]],
        title="E-HEALTH — wall-clock cost of per-second health rollups"))
    assert collections >= 50  # the plane actually ran every beat
    if not SMOKE:
        assert overhead <= 0.05, \
            f"health rollups cost {overhead:.1%} wall clock (budget: 5%)"
