"""E-SCALE — §VII's scalability claims plus the CSP-strategy ablation.

For fleets of N sensors, compare the simulated latency of collecting one
fleet aggregate via:

* direct polling, sequential (the §II.2 status quo);
* direct polling, parallel;
* a flat CSP (all N sensors under one composite), parallel collection;
* a flat CSP with *sequential* collection (the ablation from DESIGN.md);
* a CSP tree with fanout 4 (logical subnets).

Expected shape: sequential anything grows O(N); parallel flat stays near
O(1) plus the slowest child; the tree pays one extra hop per level
(O(log N) depth) but keeps every fan-out bounded — and at large N the
message count per query grows linearly for every design (each sensor is
asked once) while *client-visible latency* does not.
"""

import pytest

from repro.metrics import render_table
from repro.net import Host
from repro.baselines import DirectPollingCollector
from repro.scenarios import build_direct_grid, build_sensorcer_grid
from repro.sorcer import Exerter, ServiceContext, Signature, Strategy, Task
from repro.core import SENSOR_DATA_ACCESSOR

FLEET_SIZES = (4, 16, 64)
QUERIES = 5


def time_direct(n, sequential):
    grid = build_direct_grid(n, seed=13, fixed_latency=0.001)
    env, net = grid.env, grid.net
    collector = DirectPollingCollector(Host(net, "client"),
                                       [s.host.name for s in grid.sensors])
    latencies = []

    def rounds():
        for _ in range(QUERIES):
            t0 = env.now
            yield from collector.collect_average(sequential=sequential)
            latencies.append(env.now - t0)

    env.run(until=env.process(rounds()))
    return sum(latencies) / len(latencies), net.stats.messages


def time_sensorcer(n, tree_fanout, strategy):
    grid = build_sensorcer_grid(n, seed=13, fixed_latency=0.001,
                                tree_fanout=tree_fanout, strategy=strategy,
                                sample_interval=1e9)
    grid.settle(6.0)
    env, net = grid.env, grid.net
    exerter = Exerter(Host(net, "client"))
    latencies = []

    def warmup():
        # First query pays one-off discovery latency; exclude it.
        task = Task("warmup", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                        service_id=grid.root.service_id),
                    ServiceContext())
        task.control.invocation_timeout = 120.0
        result = yield env.process(exerter.exert(task))
        assert result.is_done, result.exceptions

    env.run(until=env.process(warmup()))
    messages_base = net.stats.messages

    def rounds():
        for _ in range(QUERIES):
            t0 = env.now
            task = Task("avg", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                         service_id=grid.root.service_id),
                        ServiceContext())
            task.control.invocation_timeout = 120.0
            result = yield env.process(exerter.exert(task))
            assert result.is_done, result.exceptions
            latencies.append(env.now - t0)

    env.run(until=env.process(rounds()))
    query_messages = (net.stats.messages - messages_base) / QUERIES
    return sum(latencies) / len(latencies), query_messages


def collect_rows():
    rows = []
    for n in FLEET_SIZES:
        direct_seq, _ = time_direct(n, sequential=True)
        direct_par, _ = time_direct(n, sequential=False)
        flat_par, flat_msgs = time_sensorcer(n, None, Strategy.PARALLEL)
        flat_seq, _ = time_sensorcer(n, None, Strategy.SEQUENTIAL)
        tree_par, tree_msgs = time_sensorcer(n, 4, Strategy.PARALLEL)
        rows.append([n, direct_seq, direct_par, flat_par, flat_seq, tree_par,
                     flat_msgs, tree_msgs])
    return rows


def test_scalability(benchmark, report):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    report(render_table(
        ["N", "direct seq (s)", "direct par (s)", "CSP flat par (s)",
         "CSP flat seq (s)", "CSP tree f=4 (s)", "flat msgs/query",
         "tree msgs/query"],
        rows,
        title="E-SCALE — fleet-average latency by architecture"))
    by_n = {row[0]: row for row in rows}
    # Sequential collection degrades linearly with N...
    assert by_n[64][1] > 8 * by_n[4][1]
    assert by_n[64][4] > 8 * by_n[4][4]
    # ...while parallel federated latency stays within a small factor.
    assert by_n[64][3] < 3 * by_n[4][3]
    # §VII: "addition of new sensor services does not necessarily affect
    # the performance of the system" — 16x more sensors, < 2x the latency.
    assert by_n[64][3] < 2 * by_n[16][3]
    # At every N the parallel CSP beats sequential direct polling.
    for n in FLEET_SIZES:
        assert by_n[n][3] < by_n[n][1]


def test_tree_fanout_ablation(benchmark, report):
    """Fanout sweep at N=64: deeper trees trade hops for bounded fan-out."""
    n = 64

    def run_all():
        rows = []
        for fanout in (2, 4, 8, None):
            latency, messages = time_sensorcer(
                n, fanout, Strategy.PARALLEL)
            label = "flat" if fanout is None else f"fanout {fanout}"
            rows.append([label, latency, messages])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["tree shape", "latency (s)", "msgs/query"], rows,
        title=f"E-SCALE ablation — CSP tree fanout at N={n} sensors"))
    by_shape = {row[0]: row for row in rows}
    # Latency grows with depth: flat < fanout 8 < fanout 4 < fanout 2.
    assert by_shape["flat"][1] <= by_shape["fanout 8"][1] \
        <= by_shape["fanout 4"][1] <= by_shape["fanout 2"][1]
    # Deeper trees relay through more composites -> more messages.
    assert by_shape["fanout 2"][2] > by_shape["fanout 8"][2] > \
        by_shape["flat"][2]
