"""E-SCALE — §VII's scalability claims plus the CSP-strategy ablation.

For fleets of N sensors, compare the simulated latency of collecting one
fleet aggregate via:

* direct polling, sequential (the §II.2 status quo);
* direct polling, parallel;
* a flat CSP (all N sensors under one composite), parallel collection;
* a flat CSP with *sequential* collection (the ablation from DESIGN.md);
* a CSP tree with fanout 4 (logical subnets).

Expected shape: sequential anything grows O(N); parallel flat stays near
O(1) plus the slowest child; the tree pays one extra hop per level
(O(log N) depth) but keeps every fan-out bounded — and at large N the
message count per query grows linearly for every design (each sensor is
asked once) while *client-visible latency* does not.
"""

import os

import pytest

from repro.metrics import render_table
from repro.net import Host
from repro.baselines import DirectPollingCollector
from repro.scenarios import (build_direct_grid, build_sensorcer_grid,
                             seed_locator_discovery)
from repro.sorcer import Exerter, ServiceContext, Signature, Strategy, Task
from repro.core import SENSOR_DATA_ACCESSOR

FLEET_SIZES = (4, 16, 64)
#: The large tier (full mode only): §VII at fleet scale. Unicast locator
#: discovery replaces the multicast probe storm here — see
#: ``build_sensorcer_grid(discovery=...)``.
LARGE_FLEET_SIZES = (1024, 4096, 16384)
LARGE_FANOUT = 16
QUERIES = 5


def time_direct(n, sequential):
    grid = build_direct_grid(n, seed=13, fixed_latency=0.001)
    env, net = grid.env, grid.net
    collector = DirectPollingCollector(Host(net, "client"),
                                       [s.host.name for s in grid.sensors])
    latencies = []

    def rounds():
        for _ in range(QUERIES):
            t0 = env.now
            yield from collector.collect_average(sequential=sequential)
            latencies.append(env.now - t0)

    env.run(until=env.process(rounds()))
    return sum(latencies) / len(latencies), net.stats.messages


def time_sensorcer(n, tree_fanout, strategy, discovery="multicast"):
    grid = build_sensorcer_grid(n, seed=13, fixed_latency=0.001,
                                tree_fanout=tree_fanout, strategy=strategy,
                                sample_interval=1e9, discovery=discovery)
    grid.settle(6.0)
    env, net = grid.env, grid.net
    client = Host(net, "client")
    if discovery == "locator":
        seed_locator_discovery(client)
    exerter = Exerter(client)
    latencies = []

    def warmup():
        # First query pays one-off discovery latency; exclude it.
        task = Task("warmup", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                        service_id=grid.root.service_id),
                    ServiceContext())
        task.control.invocation_timeout = 120.0
        result = yield env.process(exerter.exert(task))
        assert result.is_done, result.exceptions

    env.run(until=env.process(warmup()))
    messages_base = net.stats.messages

    def rounds():
        for _ in range(QUERIES):
            t0 = env.now
            task = Task("avg", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                         service_id=grid.root.service_id),
                        ServiceContext())
            task.control.invocation_timeout = 120.0
            result = yield env.process(exerter.exert(task))
            assert result.is_done, result.exceptions
            latencies.append(env.now - t0)

    env.run(until=env.process(rounds()))
    query_messages = (net.stats.messages - messages_base) / QUERIES
    return sum(latencies) / len(latencies), query_messages


def collect_rows():
    rows = []
    for n in FLEET_SIZES:
        direct_seq, _ = time_direct(n, sequential=True)
        direct_par, _ = time_direct(n, sequential=False)
        flat_par, flat_msgs = time_sensorcer(n, None, Strategy.PARALLEL)
        flat_seq, _ = time_sensorcer(n, None, Strategy.SEQUENTIAL)
        tree_par, tree_msgs = time_sensorcer(n, 4, Strategy.PARALLEL)
        rows.append([n, direct_seq, direct_par, flat_par, flat_seq, tree_par,
                     flat_msgs, tree_msgs])
    return rows


def test_scalability(benchmark, report):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    report(render_table(
        ["N", "direct seq (s)", "direct par (s)", "CSP flat par (s)",
         "CSP flat seq (s)", "CSP tree f=4 (s)", "flat msgs/query",
         "tree msgs/query"],
        rows,
        title="E-SCALE — fleet-average latency by architecture"))
    by_n = {row[0]: row for row in rows}
    # Sequential collection degrades linearly with N...
    assert by_n[64][1] > 8 * by_n[4][1]
    assert by_n[64][4] > 8 * by_n[4][4]
    # ...while parallel federated latency stays within a small factor.
    assert by_n[64][3] < 3 * by_n[4][3]
    # §VII: "addition of new sensor services does not necessarily affect
    # the performance of the system" — 16x more sensors, < 2x the latency.
    assert by_n[64][3] < 2 * by_n[16][3]
    # At every N the parallel CSP beats sequential direct polling.
    for n in FLEET_SIZES:
        assert by_n[n][3] < by_n[n][1]


@pytest.mark.slow
def test_scalability_large(benchmark, report):
    """E-SCALE at fleet scale: N = 1024 / 4096 / 16384.

    Restricted to the architectures that stay tractable at this size
    (parallel direct polling and a fanout-16 CSP tree — sequential
    anything at 16k sensors is pure O(N) by construction and already
    shown at the small tier), with unicast locator discovery so fleet
    build traffic is O(N). The §VII claim under test: 16x more sensors
    must not cost 16x the client-visible latency — the tree adds one
    level (one hop) per fanout-power of N.
    """
    if os.environ.get("REPRO_BENCH_SMOKE"):
        pytest.skip("large fleets run in full mode only")

    def run_all():
        rows = []
        for n in LARGE_FLEET_SIZES:
            direct_par, _ = time_direct(n, sequential=False)
            tree_par, tree_msgs = time_sensorcer(
                n, LARGE_FANOUT, Strategy.PARALLEL, discovery="locator")
            rows.append([n, direct_par, tree_par, tree_msgs])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["N", "direct par (s)", f"CSP tree f={LARGE_FANOUT} (s)",
         "tree msgs/query"],
        rows,
        title="E-SCALE large — fleet-average latency at 1k-16k sensors"))
    by_n = {row[0]: row for row in rows}
    # 16x the fleet, far less than 2x the latency (one extra tree level).
    assert by_n[16384][2] < 2 * by_n[1024][2]
    assert by_n[4096][2] < 2 * by_n[1024][2]
    # Messages per query stay linear in N: each sensor answers once, plus
    # one relay per composite on the path.
    ratio = by_n[16384][3] / by_n[1024][3]
    assert 8 < ratio < 32
    # The federated tree stays within a small factor of bare direct
    # polling even at 16k sensors.
    for n in LARGE_FLEET_SIZES:
        assert by_n[n][2] < 30 * by_n[n][1]


def test_tree_fanout_ablation(benchmark, report):
    """Fanout sweep at N=64: deeper trees trade hops for bounded fan-out."""
    n = 64

    def run_all():
        rows = []
        for fanout in (2, 4, 8, None):
            latency, messages = time_sensorcer(
                n, fanout, Strategy.PARALLEL)
            label = "flat" if fanout is None else f"fanout {fanout}"
            rows.append([label, latency, messages])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["tree shape", "latency (s)", "msgs/query"], rows,
        title=f"E-SCALE ablation — CSP tree fanout at N={n} sensors"))
    by_shape = {row[0]: row for row in rows}
    # Latency grows with depth: flat < fanout 8 < fanout 4 < fanout 2.
    assert by_shape["flat"][1] <= by_shape["fanout 8"][1] \
        <= by_shape["fanout 4"][1] <= by_shape["fanout 2"][1]
    # Deeper trees relay through more composites -> more messages.
    assert by_shape["fanout 2"][2] > by_shape["fanout 8"][2] > \
        by_shape["flat"][2]
