"""E-PROF — the flight recorder's overhead, fidelity and spill contract.

Three claims, each the condition for trusting the profiler's output:

* **overhead**: the always-on sampled mode must cost <= 5% wall clock on
  the paper lab, and a detached recorder must leave the kernel on its
  branch-free fast path (the exact ``detail`` mode is reported, not
  gated — its user is the explicit ``repro profile`` run);
* **fidelity**: the recorder is a pure side channel — ``status --json``
  bytes are identical with and without it attached, and a detail-mode
  run attributes >= 90% of wall clock to named rows;
* **persistence**: a ~1M-event soak run spilled to sqlite through the
  ``repro profile`` CLI can be replayed by ``repro history`` — p50/p95
  over any horizon come back from the database alone, long after the
  in-memory store's retention window has evicted the early run.

``REPRO_BENCH_SMOKE=1`` shrinks run lengths and waives only the timing
budget (a shared CI runner cannot honour it reliably); every behavioural
assertion still holds.
"""

import gc
import json
import os
import time
# repro: allow-file[DET001] - benchmarks time real work on the wall clock

from repro.metrics import render_table
from repro.observability import (FlightRecorder, HistoryStore,
                                 metrics_registry, profile_run, status_json)
from repro.scenarios import build_paper_lab

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SETTLE = 6.0


def _timed_lab_run(mode, until):
    """Wall-clock seconds for a settled paper-lab run with the recorder
    off, in sampled mode, or in detail mode. GC is paused during the
    timed region (collected once before it) so allocation-count-driven
    gen-0 pauses don't get charged to whichever mode trips them."""
    lab = build_paper_lab(seed=2009)
    lab.settle(SETTLE)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        recorder = (None if mode == "off"
                    else FlightRecorder(detail=(mode == "detail")))
        if recorder is not None:
            recorder.attach(lab.env)
        started = time.perf_counter()
        lab.env.run(until=until)
        seconds = time.perf_counter() - started
        if recorder is not None:
            recorder.detach()
        return seconds, recorder, lab
    finally:
        if gc_was_enabled:
            gc.enable()


def _median(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def test_recorder_overhead_under_five_percent(benchmark, report):
    """E-PROF gate: sampled recording <= 5% wall clock, detached ~ 0%.

    Each repetition runs all three modes back to back (rotating the
    order so every mode occupies every position equally) and the gate
    compares the *median of per-repetition ratios*. Back-to-back runs
    share whatever state the host is in, so a sustained slowdown —
    another tenant, a thermal step — cancels out of the ratio instead
    of landing on whichever mode it overlapped; the median then
    discards the repetitions a one-off spike still skewed.
    """
    until, repeats = (60.0, 4) if SMOKE else (600.0, 21)
    order = ("off", "sampled", "detail")

    def run_all():
        ratios = {"sampled": [], "detail": []}
        walls, events = [], 0
        for rep in range(repeats):
            rotation = rep % len(order)
            seconds = {}
            for mode in order[rotation:] + order[:rotation]:
                seconds[mode], recorder, lab = _timed_lab_run(mode, until)
                if mode == "sampled":
                    events = recorder.events
                    # Detached again: the kernel is back on the fast path.
                    assert lab.env._profiler is None
            walls.append(seconds["off"])
            for mode in ("sampled", "detail"):
                ratios[mode].append(seconds[mode] / seconds["off"])
        return ratios, walls, events

    ratios, walls, events = benchmark.pedantic(run_all, rounds=1,
                                               iterations=1)
    sampled = _median(ratios["sampled"]) - 1.0
    detail = _median(ratios["detail"]) - 1.0
    report(render_table(
        ["metric", "value"],
        [["events per run", events],
         ["wall clock, recorder off (s)", _median(walls)],
         ["sampled overhead (median ratio)", sampled],
         ["detail overhead (median ratio)", detail]],
        title="E-PROF — wall-clock cost of the flight recorder"))
    assert events > 1000  # the recorder actually saw the workload
    if not SMOKE:
        assert sampled <= 0.05, \
            f"sampled recording costs {sampled:.1%} wall clock (budget: 5%)"


def test_recorder_is_a_pure_side_channel(report):
    """E-PROF fidelity: byte-identical status, >= 90% attribution.

    DESIGN §12's determinism contract, checked end to end: the same
    seeded run produces byte-for-byte identical ``status --json``
    documents with no recorder, a sampled recorder and a detail
    recorder, and the detail run's report attributes >= 90% of wall
    clock to named rows (``repro profile``'s acceptance bar).
    """
    until = 120.0 if SMOKE else 600.0
    documents, shares, rows = {}, {}, 0
    for mode in ("off", "sampled", "detail"):
        _, recorder, lab = _timed_lab_run(mode, until)
        documents[mode] = status_json(lab.health.snapshot())
        if recorder is not None:
            doc = recorder.report(registry=metrics_registry(lab.net))
            shares[mode] = doc["attributed_share"]
            if mode == "detail":
                rows = len(doc["attribution"])
    assert documents["off"] == documents["sampled"] == documents["detail"]
    share = shares["detail"]
    report(render_table(
        ["metric", "value"],
        [["status --json bytes", len(documents["off"])],
         ["byte-identical across modes", True],
         ["attribution rows (detail)", rows],
         ["attributed share (detail)", share],
         ["attributed share (sampled)", shares["sampled"]]],
        title="E-PROF — side-channel fidelity"))
    assert share >= 0.90, \
        f"only {share:.1%} of wall clock attributed (floor: 90%)"
    assert rows > 10  # a real profile, not one catch-all bucket


def test_soak_spill_history_round_trip(benchmark, report, tmp_path):
    """E-PROF persistence: profile a soak run, replay it from sqlite.

    Drives the real CLI both ways: ``repro profile soak --spill`` runs
    the paper lab for ~1M events (smoke: ~55k) with periodic history
    spills, then ``repro history`` answers p50/p95 queries from the
    database alone. The in-memory store retains 120 one-second windows,
    so everything before the final two minutes exists *only* in the
    spill — replaying an early horizon proves persistence, not caching.
    """
    from io import StringIO

    from repro.cli import main

    db = str(tmp_path / "history.sqlite")
    until = "1200" if SMOKE else "21600"  # ~55k / ~1M events
    run_id = "soak-seed2009"

    def profile_run_cli():
        out = StringIO()
        code = main(["profile", "soak", "--until", until, "--json",
                     "--spill", db, "--run-id", run_id], out)
        assert code == 0
        return json.loads(out.getvalue())

    profile_doc = benchmark.pedantic(profile_run_cli, rounds=1,
                                     iterations=1)

    def history(*argv):
        out = StringIO()
        assert main(["history", "--db", db, *argv, "--json"], out) == 0
        return json.loads(out.getvalue())

    runs = history("list")
    assert [r["run_id"] for r in runs] == [run_id]
    assert runs[0]["finished"] and runs[0]["events"] == profile_doc["events"]
    if not SMOKE:
        assert runs[0]["events"] >= 1_000_000

    # An early horizon: long gone from the in-memory store's retention.
    early = history("stats", "--run", run_id,
                    "rpc.rtt{host=monitor-host}",
                    "--until", "600")
    late = history("stats", "--run", run_id,
                   "rpc.rtt{host=monitor-host}",
                   "--since", str(float(until) - 300))
    assert early["windows"] > 0 and late["windows"] > 0
    assert early["p50"] is not None and early["p95"] is not None
    assert early["p95"] >= early["p50"]

    # The replayed horizon stats are a pure function of the spilled
    # windows: recompute from the raw series and cross-check.
    series = history("series", "--run", run_id,
                     "rpc.rtt{host=monitor-host}",
                     "--until", "600")
    assert len(series) == early["windows"]
    assert max(w["p95"] for w in series) == early["p95"]

    # The profile table and throughput trajectory rode along.
    spilled_profile = history("profile", "--run", run_id)
    assert spilled_profile and spilled_profile[0]["wall_s"] > 0
    kernel_stats = history("stats", "--run", run_id,
                           "kernel.scheduler.pops")
    # Every processed event is one scheduler pop, so the spilled pop
    # delta must cover at least the events the profiler saw.
    assert kernel_stats["delta"] >= profile_doc["events"]

    report(render_table(
        ["metric", "value"],
        [["soak sim seconds", until],
         ["events", runs[0]["events"]],
         ["spilled keys", len(history("keys", "--run", run_id))],
         ["early-horizon windows", early["windows"]],
         ["early-horizon p50 (s)", early["p50"]],
         ["early-horizon p95 (s)", early["p95"]],
         ["profile rows spilled", len(spilled_profile)]],
        title="E-PROF — soak spill and history replay"))
