"""E-SPACE — PUSH vs PULL exertion dispatch (§IV.D ablation).

A batch of T compute tasks (each costing 0.2 s of provider time) runs as a
parallel job either:

* **PUSH** — the Jobber binds every task to discovered providers directly
  (all tasks land on whatever providers match, concurrently); or
* **PULL** — the Spacer drops tasks into the exertion space and W workers
  take, execute and commit under transactions.

Reported: makespan vs worker count, plus the crash-recovery cost — one
worker dies mid-batch and the transactional takes put its stolen tasks
back for the survivors.

Expected shape: PULL makespan ~ T*cost/W (workers self-balance); PUSH with
P providers behaves like W=P but without crash recovery; killing one of
two workers roughly doubles the remaining makespan rather than losing
tasks.
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService, Name, TransactionManager
from repro.sorcer import (
    Access,
    Exerter,
    ExertionSpace,
    Job,
    Jobber,
    ServiceContext,
    Signature,
    SpaceWorker,
    Spacer,
    Strategy,
    Task,
    Tasker,
    join_service,
)

TASKS = 8
TASK_COST = 0.2


class Cruncher(Tasker):
    SERVICE_TYPES = ("Cruncher",)

    def __init__(self, host, name, **kw):
        # One task at a time: each provider models a single-core worker.
        super().__init__(host, name, max_concurrency=1, **kw)
        self.add_operation("crunch", self._crunch)

    def _crunch(self, ctx):
        yield self.env.timeout(TASK_COST)
        return ctx.get_value("arg/x") * 2


def batch_job(access):
    job = Job("batch", strategy=Strategy.PARALLEL, access=access)
    for index in range(TASKS):
        ctx = ServiceContext()
        ctx.put_in_value("arg/x", float(index))
        job.add(Task(f"t{index}", Signature("Cruncher", "crunch"), ctx))
    job.control.invocation_timeout = 600.0
    return job


def base_grid():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(31),
                  latency=FixedLatency(0.001))
    LookupService(Host(net, "lus-host")).start()
    return env, net


def check(job):
    assert job.is_done, job.exceptions
    for index in range(TASKS):
        assert job.context.get_value(f"t{index}/result/value") == 2.0 * index


def run_push(n_providers):
    env, net = base_grid()
    Jobber(Host(net, "jobber-host")).start()
    for index in range(n_providers):
        Cruncher(Host(net, f"worker-{index}"), f"Cruncher-{index}").start()
    env.run(until=6.0)
    exerter = Exerter(Host(net, "client"))
    t0 = env.now
    job = env.run(until=env.process(exerter.exert(batch_job(Access.PUSH))))
    check(job)
    return env.now - t0


def run_pull(n_workers, kill_one_at=None):
    env, net = base_grid()
    Spacer(Host(net, "spacer-host"), result_timeout=600.0).start()
    space_host = Host(net, "space-host")
    space = ExertionSpace(space_host)
    join_service(space_host, space.ref, net.ids.uuid(),
                 (Name("Exertion Space"),))
    tm = TransactionManager(Host(net, "txn-host"))
    workers = []
    for index in range(n_workers):
        host = Host(net, f"worker-{index}")
        provider = Cruncher(host, f"Cruncher-{index}")
        worker = SpaceWorker(provider, space.ref, txn_manager_ref=tm.ref,
                             poll_timeout=0.5, txn_duration=5.0)
        worker.start()
        workers.append(host)
    env.run(until=6.0)
    exerter = Exerter(Host(net, "client"))
    if kill_one_at is not None:
        def killer():
            yield env.timeout(kill_one_at)
            workers[0].fail()
        env.process(killer())
    t0 = env.now
    job = env.run(until=env.process(exerter.exert(batch_job(Access.PULL))))
    check(job)
    return env.now - t0


def test_push_vs_pull(benchmark, report):
    def run_all():
        rows = []
        for w in (1, 2, 4):
            rows.append([f"PULL, {w} worker(s)", run_pull(w)])
        rows.append(["PUSH, 1 provider", run_push(1)])
        rows.append(["PUSH, 4 providers", run_push(4)])
        rows.append(["PULL, 2 workers, 1 crashes mid-batch",
                     run_pull(2, kill_one_at=0.3)])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["configuration", "makespan (s)"], rows,
        title=f"E-SPACE — {TASKS} tasks x {TASK_COST}s, PUSH vs PULL dispatch"))
    by_name = {row[0]: row[1] for row in rows}
    # Workers self-balance: more workers, shorter makespan.
    assert by_name["PULL, 4 worker(s)"] < by_name["PULL, 2 worker(s)"] \
        < by_name["PULL, 1 worker(s)"]
    # Ideal scaling would be 4x from 1 -> 4 workers; allow overheads.
    assert by_name["PULL, 1 worker(s)"] / by_name["PULL, 4 worker(s)"] > 2.0
    # PUSH parallelism comes from provider count (single-core providers).
    assert by_name["PUSH, 4 providers"] < by_name["PUSH, 1 provider"] / 2
    # Crash recovery: no task lost, job still completes (already checked),
    # costing extra time vs the healthy 2-worker run.
    assert by_name["PULL, 2 workers, 1 crashes mid-batch"] \
        >= by_name["PULL, 2 worker(s)"]
