"""E-LUS — registry redundancy: query availability through an LUS outage.

§VIII claims the system "handles very well several types of network and
computer outages by utilizing the Jini infrastructure". The single point
that could contradict that is the lookup service itself, and Jini's answer
is running several (the paper's Fig 2 shows two). Here a client queries a
sensor once per second for 60 s while the (or one) LUS host is down from
t=10 to t=30; we count failed queries with one vs two registrars.

Expected shape: with one LUS, every query during the outage fails once the
client's registrar cache notices (discards on first timeout) and none
succeed until re-announcement after recovery; with two LUSs, the accessor
fails over to the surviving registrar and availability stays ~100%.
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.core import ElementarySensorProvider, SENSOR_DATA_ACCESSOR

HORIZON = 60.0
OUTAGE = (10.0, 30.0)


def run_with(n_lus):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(47),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=47)
    lus_hosts = []
    for index in range(n_lus):
        host = Host(net, f"lus-{index}")
        LookupService(host, announce_interval=5.0).start()
        lus_hosts.append(host)
    probe = TemperatureProbe(env, "p", world, (0, 0),
                             rng=np.random.default_rng(0))
    esp = ElementarySensorProvider(Host(net, "esp-host"), "Spot", probe,
                                   lease_duration=8.0)
    esp.start()
    env.run(until=6.0)
    exerter = Exerter(Host(net, "client"))
    outcomes = []

    def client():
        start = env.now
        while env.now - start < HORIZON:
            task = Task("q", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                       provider_name="Spot"),
                        ServiceContext())
            task.control.provider_wait = 0.4
            task.control.invocation_timeout = 2.0
            t0 = env.now
            result = yield env.process(exerter.exert(task))
            outcomes.append((env.now - start, result.is_done, env.now - t0))
            yield env.timeout(max(0.0, 1.0 - (env.now - t0)))

    def outage():
        yield env.timeout(OUTAGE[0])
        lus_hosts[0].fail()
        yield env.timeout(OUTAGE[1] - OUTAGE[0])
        lus_hosts[0].recover()

    env.process(outage())
    env.run(until=env.process(client()))
    ok = sum(1 for _, done, _ in outcomes if done)
    during = [done for t, done, _ in outcomes
              if OUTAGE[0] <= t < OUTAGE[1]]
    after = [done for t, done, _ in outcomes if t >= OUTAGE[1]]
    return {
        "queries": len(outcomes),
        "availability": ok / len(outcomes),
        "during_outage": (sum(during) / len(during)) if during else None,
        "after_recovery": (sum(after) / len(after)) if after else None,
    }


def test_lus_redundancy(benchmark, report):
    def run_all():
        return {n: run_with(n) for n in (1, 2)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[f"{n} lookup service(s)", r["queries"], r["availability"],
             r["during_outage"], r["after_recovery"]]
            for n, r in results.items()]
    report(render_table(
        ["configuration", "queries", "overall avail.",
         "avail. during outage", "avail. after recovery"],
        rows,
        title=f"E-LUS — LUS host down t={OUTAGE[0]:.0f}..{OUTAGE[1]:.0f}s "
              f"of a {HORIZON:.0f}s run"))
    single, dual = results[1], results[2]
    # A lone registry outage blacks out lookups...
    assert single["during_outage"] < 0.5
    # ...and the network heals itself after the LUS returns, within one
    # announce interval + join round (a few failed queries right after
    # recovery are expected — the registry restarts empty).
    assert single["after_recovery"] > 0.75
    # A second registrar rides through the outage.
    assert dual["during_outage"] > 0.95
    assert dual["availability"] > single["availability"]
