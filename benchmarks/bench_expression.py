"""E-EXPR — the runtime compute-expression mechanism (§V.A).

Real CPU microbenchmarks (no simulation): parse cost, compiled-evaluation
throughput, and the re-binding pattern a composite provider exercises —
compile once, evaluate against fresh sensor values on every query.
Expected shape: evaluation is orders of magnitude cheaper than parsing, so
caching compiled expressions (what the CSP does) is the right design.
"""

import numpy as np
# repro: allow-file[DET001] - benchmarks time real work on the wall clock
import pytest

from repro.expr import Expression, compile_expression, evaluate
from repro.metrics import render_table

PAPER_EXPRESSION = "(a + b + c)/3"
CORPUS = [
    "(a + b)/2",
    "(a + b + c)/3",
    "max(a, b) - min(a, b)",
    "a > b ? a : b",
    "clamp((a + b + c)/3, 0, 40)",
    "sqrt((a - b)^2 + (c - d)^2)",
    "avg(a, b, c, d, e, f, g, h)",
    "a * 9 / 5 + 32",
]
BINDINGS = {name: float(i + 17) for i, name in enumerate("abcdefgh")}


def test_parse_paper_expression(benchmark):
    result = benchmark(compile_expression, PAPER_EXPRESSION)
    assert result.variables == ("a", "b", "c")


def test_evaluate_compiled_paper_expression(benchmark):
    expr = compile_expression(PAPER_EXPRESSION)
    value = benchmark(expr.evaluate, BINDINGS)
    assert value == pytest.approx((17 + 18 + 19) / 3)


def test_evaluate_corpus(benchmark):
    compiled = [compile_expression(text) for text in CORPUS]

    def run():
        return [expr.evaluate(BINDINGS) for expr in compiled]

    values = benchmark(run)
    assert len(values) == len(CORPUS)


def test_one_shot_vs_compiled(benchmark, report):
    expr = compile_expression(PAPER_EXPRESSION)
    rounds = 2000

    def compiled_loop():
        for _ in range(rounds):
            expr.evaluate(BINDINGS)

    def one_shot_loop():
        for _ in range(rounds):
            evaluate(PAPER_EXPRESSION, BINDINGS)

    import time
    t0 = time.perf_counter()
    compiled_loop()
    compiled_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    one_shot_loop()
    one_shot_s = time.perf_counter() - t0
    benchmark(expr.evaluate, BINDINGS)
    report(render_table(
        ["mode", "evals/s"],
        [["compile once, evaluate many (CSP design)", rounds / compiled_s],
         ["re-parse every query", rounds / one_shot_s],
         ["speedup", one_shot_s / compiled_s]],
        title="E-EXPR — why the CSP caches compiled expressions"))
    assert compiled_s < one_shot_s


def test_rebinding_matches_fresh_values(benchmark):
    """The CSP pattern: same expression, different sensor values each query."""
    expr = compile_expression(PAPER_EXPRESSION)
    rng = np.random.default_rng(0)
    batches = [{"a": float(a), "b": float(b), "c": float(c)}
               for a, b, c in rng.normal(20, 5, size=(200, 3))]

    def run():
        return [expr.evaluate(b) for b in batches]

    values = benchmark(run)
    for value, b in zip(values, batches):
        assert value == pytest.approx((b["a"] + b["b"] + b["c"]) / 3)
