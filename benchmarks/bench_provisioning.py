"""E-PROV — QoS-aware placement: selection-policy ablation.

Deploys W=14 unit-load service instances over 6 heterogeneous cybernodes
(slots 2/2/4/4/8/8) under each selection policy and reports:

* **imbalance** — the population standard deviation of node utilization
  (lower = better spread);
* **max utilization** — the hottest node;
* **placement failures** — instantiate attempts refused for capacity.

Also verifies the QoS gate itself: a tagged element only ever lands on a
tagged node. Expected shape: least-loaded and capacity-weighted beat
uniform random and round-robin on imbalance (round-robin ignores that the
big nodes can take 4x the load of the small ones)."""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService, ServiceTemplate
from repro.rio import (
    CapacityWeightedRandom,
    Cybernode,
    LeastLoaded,
    OperationalString,
    ProvisionMonitor,
    QosCapability,
    QosRequirement,
    RandomChoice,
    RoundRobin,
    ServiceElement,
)
from repro.sorcer import Tasker

NODE_SLOTS = (2, 2, 4, 4, 8, 8)
WORKLOAD = 14


class NullProvider(Tasker):
    SERVICE_TYPES = ("Null",)

    def __init__(self, host, name, attributes=(), **kw):
        super().__init__(host, name, attributes=attributes,
                         lease_duration=10.0, **kw)
        self.add_operation("noop", lambda ctx: None)


def null_factory(host, instance_name, attributes):
    return NullProvider(host, instance_name, attributes=attributes)


def run_policy(policy_name):
    env = Environment()
    rng = np.random.default_rng(77)
    net = Network(env, rng=rng, latency=FixedLatency(0.001))
    LookupService(Host(net, "lus-host")).start()
    nodes = []
    for index, slots in enumerate(NODE_SLOTS):
        node = Cybernode(Host(net, f"cyber-{index}"), f"Cybernode-{index}",
                         capability=QosCapability(compute_slots=float(slots),
                                                  memory_mb=4096),
                         lease_duration=10.0)
        node.start()
        nodes.append(node)
    policies = {
        "random": lambda: RandomChoice(np.random.default_rng(1)),
        "round-robin": RoundRobin,
        "least-loaded": LeastLoaded,
        "capacity-weighted": lambda: CapacityWeightedRandom(
            np.random.default_rng(1)),
    }
    monitor = ProvisionMonitor(Host(net, "monitor-host"),
                               policy=policies[policy_name](),
                               poll_interval=0.5)
    monitor.start()
    element = ServiceElement(
        name="Unit", factory=null_factory, planned=WORKLOAD,
        qos=QosRequirement(load=1.0, memory_mb=1.0),
        max_per_node=WORKLOAD)
    monitor.deploy(OperationalString("prov", [element]))
    env.run(until=60.0)
    placed = sum(len(node._hosted) for node in nodes)
    utilizations = np.array([node.used_slots / node.capability.compute_slots
                             for node in nodes])
    return {
        "placed": placed,
        "imbalance": float(utilizations.std()),
        "max_util": float(utilizations.max()),
        "failures": monitor.stats["provision_failures"],
    }


def test_policy_ablation(benchmark, report):
    def run_all():
        return {name: run_policy(name)
                for name in ("random", "round-robin", "least-loaded",
                             "capacity-weighted")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, r["placed"], r["imbalance"], r["max_util"], r["failures"]]
            for name, r in results.items()]
    report(render_table(
        ["policy", "placed", "util stddev", "max util", "refusals"],
        rows,
        title=f"E-PROV — placing {WORKLOAD} unit services on nodes "
              f"with slots {NODE_SLOTS}"))
    for name, r in results.items():
        assert r["placed"] == WORKLOAD, f"{name} placed only {r['placed']}"
    # QoS-aware spreading beats uniform random; round-robin overloads the
    # small nodes (it ignores capacity), so least-loaded must beat it too.
    assert results["least-loaded"]["imbalance"] <= results["random"]["imbalance"]
    assert results["least-loaded"]["imbalance"] <= results["round-robin"]["imbalance"]


def test_qos_tag_gate(benchmark, report):
    def run():
        env = Environment()
        net = Network(env, rng=np.random.default_rng(8),
                      latency=FixedLatency(0.001))
        lus = LookupService(Host(net, "lus-host"))
        lus.start()
        plain = Cybernode(Host(net, "plain"), "Plain",
                          capability=QosCapability(compute_slots=32),
                          lease_duration=10.0)
        plain.start()
        tagged = Cybernode(Host(net, "tagged"), "Tagged",
                           capability=QosCapability(
                               compute_slots=4,
                               tags=frozenset({"sensor-gateway"})),
                           lease_duration=10.0)
        tagged.start()
        monitor = ProvisionMonitor(Host(net, "monitor-host"),
                                   poll_interval=0.5)
        monitor.start()
        element = ServiceElement(
            name="Gated", factory=null_factory, planned=4,
            qos=QosRequirement(load=1.0, memory_mb=1.0,
                               required_tags=frozenset({"sensor-gateway"})),
            max_per_node=4)
        monitor.deploy(OperationalString("gate", [element]))
        env.run(until=30.0)
        items = lus.lookup(ServiceTemplate.by_type("Null"), 16)
        return [item.service.host for item in items]

    hosts = benchmark.pedantic(run, rounds=1, iterations=1)
    report(render_table(
        ["instance", "host"],
        [[f"Gated#{i}", host] for i, host in enumerate(sorted(hosts))],
        title="E-PROV — QoS tag gate (all instances must land on 'tagged')"))
    assert len(hosts) == 4
    assert all(host == "tagged" for host in hosts)
