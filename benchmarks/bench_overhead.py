"""E-OVH — §II.1's header-overhead / data-flow claims, quantified.

Three comparisons over identical sensor fleets:

* **goodput of tiny readings**: raw streaming of one reading per message —
  headers dominate the payload (the paper's core §II.1 complaint);
* **client-link bytes per collected aggregate**: a client that wants the
  fleet average either polls all N sensors directly (N request/reply pairs
  on its own link) or asks one CSP (one exertion round trip) — the
  federated design moves the fan-out *into the network* and the client
  link cost becomes O(1) in N;
* **total network bytes**, showing where the aggregation traffic went.

Expected shape: federated wins on client-link bytes for N above a small
crossover (the per-call JERI framing is ~3x a raw TCP segment, so direct
wins for N=1 and loses for N >= ~4).
"""

import gc
import os
import time
# repro: allow-file[DET001] - benchmarks time real work on the wall clock

import pytest

from repro.metrics import render_table
from repro.net import Host
from repro.observability import tracer_of
from repro.scenarios import build_direct_grid, build_sensorcer_grid
from repro.baselines import DirectPollingCollector, StreamCollector, StreamingSensorNode
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sim import Environment
from repro.net import FixedLatency, Network
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.core import SENSOR_DATA_ACCESSOR

FLEET_SIZES = (1, 4, 16, 64)
ROUNDS = 10


def measure_direct(n):
    grid = build_direct_grid(n, seed=11, fixed_latency=0.001)
    env, net = grid.env, grid.net
    client = Host(net, "client")
    collector = DirectPollingCollector(
        client, [s.host.name for s in grid.sensors])
    base = net.stats.host_bytes("client")

    def rounds():
        for _ in range(ROUNDS):
            yield from collector.collect_average()

    env.run(until=env.process(rounds()))
    after = net.stats.host_bytes("client")
    client_bytes = (after["sent"] + after["received"]
                    - base["sent"] - base["received"]) / ROUNDS
    return client_bytes, net.stats.total_bytes / ROUNDS


def measure_sensorcer(n):
    grid = build_sensorcer_grid(n, seed=11, fixed_latency=0.001,
                                sample_interval=1e9)  # no sampling traffic
    grid.settle(6.0)
    env, net = grid.env, grid.net
    client = Host(net, "client")
    exerter = Exerter(client)
    base = net.stats.host_bytes("client")
    total_base = net.stats.total_bytes

    def rounds():
        for _ in range(ROUNDS):
            task = Task("avg", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                         service_id=grid.root.service_id),
                        ServiceContext())
            result = yield env.process(exerter.exert(task))
            assert result.is_done, result.exceptions

    env.run(until=env.process(rounds()))
    after = net.stats.host_bytes("client")
    client_bytes = (after["sent"] + after["received"]
                    - base["sent"] - base["received"]) / ROUNDS
    return client_bytes, (net.stats.total_bytes - total_base) / ROUNDS


def test_overhead_client_link(benchmark, report):
    def run_all():
        rows = []
        for n in FLEET_SIZES:
            direct_client, direct_total = measure_direct(n)
            fed_client, fed_total = measure_sensorcer(n)
            rows.append([n, direct_client, fed_client,
                         direct_client / fed_client,
                         direct_total, fed_total])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["N sensors", "direct client B/agg", "federated client B/agg",
         "client ratio", "direct net B/agg", "federated net B/agg"],
        rows,
        title="E-OVH — bytes per collected fleet aggregate"))
    by_n = {row[0]: row for row in rows}
    # Direct wins at N=1 (JERI framing costs ~2 kB per exertion round trip),
    # the crossover falls below N=16, and the advantage grows with N.
    assert by_n[1][3] < 1.0
    assert by_n[16][3] > 1.0
    assert by_n[64][3] > 4.0
    assert by_n[64][3] > by_n[16][3] > by_n[4][3]
    # The federated client link is O(1) in fleet size.
    assert by_n[64][2] < 1.5 * by_n[1][2]


def test_overhead_streaming_goodput(benchmark, report):
    def run():
        env = Environment()
        import numpy as np
        net = Network(env, rng=np.random.default_rng(3),
                      latency=FixedLatency(0.001))
        world = PhysicalEnvironment(seed=3)
        StreamCollector(Host(net, "collector"))
        host = Host(net, "node")
        probe = TemperatureProbe(env, "p", world, (0, 0),
                                 rng=np.random.default_rng(0))
        StreamingSensorNode(host, probe, "collector", interval=1.0).start()
        env.run(until=100.5)
        stream = net.stats.by_kind["direct-stream"]
        return stream

    stream = benchmark.pedantic(run, rounds=1, iterations=1)
    payload = stream["payload_bytes"]
    headers = stream["header_bytes"]
    goodput = payload / (payload + headers)
    report(render_table(
        ["metric", "value"],
        [["samples streamed", stream["messages"]],
         ["payload bytes", payload],
         ["header bytes", headers],
         ["goodput (payload/total)", goodput]],
        title="E-OVH — raw streaming of one tiny reading per message"))
    # §II.1: headers dominate tiny sensor readings.
    assert goodput < 0.5


def _timed_collect_run(n, tracing, rounds=ROUNDS):
    """Wall-clock seconds for settle + ``rounds`` aggregate collections on
    an n-sensor grid, with tracing on or off. Returns (seconds, spans).

    The cyclic GC is paused during the timed region (and collected once
    right before it): its gen-0 cadence is allocation-count driven, so it
    fires at arbitrary points and charges whole-heap scan pauses to
    whichever run happens to trip the threshold — noise, not tracing cost.
    """
    grid = build_sensorcer_grid(n, seed=11, fixed_latency=0.001,
                                sample_interval=1e9)
    tracer = tracer_of(grid.net)
    tracer.enabled = tracing
    env, net = grid.env, grid.net
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        grid.settle(6.0)
        exerter = Exerter(Host(net, "client"))

        def gen():
            for _ in range(rounds):
                task = Task("avg", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                             service_id=grid.root.service_id),
                            ServiceContext())
                result = yield env.process(exerter.exert(task))
                assert result.is_done, result.exceptions

        env.run(until=env.process(gen()))
        return time.perf_counter() - started, len(tracer)
    finally:
        if gc_was_enabled:
            gc.enable()


def test_tracing_overhead_under_five_percent(benchmark, report):
    """E-OBS — always-on tracing must cost <= 5% wall clock.

    Many short interleaved runs, compared by the mean of each mode's
    fastest half. The on/off order alternates between pairs so neither
    mode systematically rides the colder machine state; short runs fit
    inside clean CPU-quota windows on a throttled host, and dropping each
    mode's slowest half discards exactly the runs a throttle pause or
    scheduler eviction inflated — noise that only ever adds time.

    ``REPRO_BENCH_SMOKE=1`` shrinks the comparison to a CI-sized smoke
    run and waives only the timing budget (a shared runner cannot honour
    it reliably); every behavioural assertion still holds.
    """
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    n, rounds, repeats = 16, 15, (4 if smoke else 36)

    def fastest_half_mean(samples):
        best = sorted(samples)[:max(1, len(samples) // 2)]
        return sum(best) / len(best)

    def run_all():
        on, off, spans = [], [], 0
        for pair in range(repeats):
            modes = (True, False) if pair % 2 == 0 else (False, True)
            for tracing in modes:
                seconds, count = _timed_collect_run(n, tracing=tracing,
                                                    rounds=rounds)
                if tracing:
                    on.append(seconds)
                    spans = count
                else:
                    off.append(seconds)
                    assert count == 0  # disabled tracer records nothing
        return fastest_half_mean(on), fastest_half_mean(off), spans

    enabled, disabled, spans = benchmark.pedantic(run_all, rounds=1,
                                                  iterations=1)
    overhead = enabled / disabled - 1.0
    report(render_table(
        ["metric", "value"],
        [["fleet size", n],
         ["spans per traced run", spans],
         ["wall clock, tracing on (s)", enabled],
         ["wall clock, tracing off (s)", disabled],
         ["overhead", overhead]],
        title="E-OBS — wall-clock cost of always-on exertion tracing"))
    assert spans > 100  # the traced runs actually recorded the workload
    if not smoke:
        assert overhead <= 0.05, \
            f"tracing costs {overhead:.1%} wall clock (budget: 5%)"
