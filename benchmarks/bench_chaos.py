"""E-CHAOS — invariant pass-rate and MTTR across seeded fault campaigns.

The chaos engine's headline numbers over the paper-lab deployment:

* **pass-rate**: every built-in end-to-end invariant (workload
  accounting, trace integrity, 2PC atomicity, space exactly-once, health
  convergence, breaker liberation, sim sanity) must hold for *all* seeded
  campaigns — the unmodified system survives every generated fault
  schedule;
* **MTTR**: mean time from an entity leaving UP to its return, averaged
  over every incident the health model logged, with the per-kind fault
  application counts that produced them.

50 seeds by default; ``REPRO_BENCH_SMOKE=1`` runs the CI-sized 10-seed
campaign (same assertions — the invariants are not load-dependent).
"""

import os

from repro.chaos import CampaignRunner
from repro.metrics import render_table

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SEEDS = range(1, 11) if SMOKE else range(1, 51)


def run_campaigns():
    runner = CampaignRunner("paper-lab")
    return runner.run(list(SEEDS))


def test_chaos_campaign_pass_rate(benchmark, report):
    summary = benchmark.pedantic(run_campaigns, rounds=1, iterations=1)
    runs = summary["runs"]
    fault_counts: dict = {}
    for run in runs:
        for kind, count in run["faults"]["applied"].items():
            fault_counts[kind] = fault_counts.get(kind, 0) + count
    incidents = sum(run["recovery"]["incidents"] for run in runs)
    recovered = sum(run["recovery"]["recovered"] for run in runs)
    report(render_table(
        ["quantity", "value"],
        [["seeds", len(runs)],
         ["pass rate", f"{summary['pass_rate']:.2%}"],
         ["mean MTTR (sim s)", summary["mean_mttr"]],
         ["health incidents", incidents],
         ["incidents recovered", recovered],
         ["faults injected",
          ", ".join(f"{kind}={count}"
                    for kind, count in sorted(fault_counts.items()))],
         ["messages chaos-dropped",
          sum(run["faults"]["links"]["dropped"] for run in runs)],
         ["messages chaos-duplicated",
          sum(run["faults"]["links"]["duplicated"] for run in runs)]],
        title=f"E-CHAOS — {len(runs)} seeded campaigns (paper-lab)"))
    # The unmodified system survives every schedule the seeds generate.
    assert summary["failed"] == 0, summary["invariant_failures"]
    assert summary["pass_rate"] == 1.0
    # Chaos actually happened: faults applied, incidents opened and closed.
    assert sum(fault_counts.values()) >= len(runs)
    assert incidents > 0 and recovered == incidents
    assert summary["mean_mttr"] is not None and summary["mean_mttr"] > 0
