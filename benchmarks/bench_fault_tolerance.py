"""E-FT — failure detection and self-healing, with the lease ablation.

Two measurements per lease duration L:

* **detection** — a sensor service's host crashes; how long until its
  registration lease lapses and the network forgets it (§IV.B: "this
  mechanism of leasing keeps the sensor network healthy and robust");
* **repair** — the cybernode hosting a provisioned composite crashes; how
  long until the provision monitor has a replacement instance visible on
  the surviving node (§IV.C fault tolerance).

Expected shape: both scale with L (detection bounded by ~L, repair by
~L + poll interval + instantiation), so short leases buy fast healing at
the cost of renewal traffic — which the table also reports.
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService, ServiceTemplate
from repro.jini.entries import Location
from repro.resilience import Deadline, RetryPolicy, backoff_rng, \
    resilience_events
from repro.rio import Cybernode, OperationalString, ProvisionMonitor, \
    QosCapability, QosRequirement, ServiceElement
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.sorcer.accessor import breaker_registry
from repro.core import CompositeSensorProvider, ElementarySensorProvider, \
    OP_GET_VALUE, SENSOR_DATA_ACCESSOR, STALE_PATH, composite_factory

LEASES = (2.0, 5.0, 10.0, 20.0)


def detection_time(lease):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(5),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=5)
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    probe = TemperatureProbe(env, "p", world, (0, 0),
                             rng=np.random.default_rng(0))
    esp = ElementarySensorProvider(Host(net, "esp-host"), "Victim", probe,
                                   lease_duration=lease)
    esp.start()
    env.run(until=5.0)
    assert len(lus.lookup(ServiceTemplate.by_name("Victim"), 5)) == 1
    renew_base = net.stats.by_kind.get("rpc-request", {}).get("messages", 0)
    killed_at = env.now
    esp.host.fail()
    while lus.lookup(ServiceTemplate.by_name("Victim"), 5):
        env.run(until=env.now + 0.25)
        if env.now - killed_at > 10 * lease + 30:
            raise AssertionError("service never deregistered")
    return env.now - killed_at


def renewal_traffic(lease, horizon=60.0):
    """Messages per minute a single idle service costs at lease L."""
    env = Environment()
    net = Network(env, rng=np.random.default_rng(5),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=5)
    LookupService(Host(net, "lus-host")).start()
    probe = TemperatureProbe(env, "p", world, (0, 0),
                             rng=np.random.default_rng(0))
    esp = ElementarySensorProvider(Host(net, "esp-host"), "Idle", probe,
                                   sample_interval=1e9, lease_duration=lease)
    esp.start()
    env.run(until=10.0)
    base = net.stats.messages
    env.run(until=10.0 + horizon)
    return (net.stats.messages - base) * 60.0 / horizon


def repair_time(lease):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(6),
                  latency=FixedLatency(0.001))
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    nodes = []
    for index in range(2):
        node = Cybernode(Host(net, f"cyber-{index}"), "Cybernode",
                         capability=QosCapability(compute_slots=4),
                         lease_duration=lease)
        node.start()
        nodes.append(node)
    monitor = ProvisionMonitor(Host(net, "monitor-host"), poll_interval=1.0)
    monitor.start()

    def factory(host, instance_name, attributes):
        provider = composite_factory(host, instance_name, attributes)
        provider._lease_duration = lease
        return provider

    element = ServiceElement(name="Aggregate", factory=factory, planned=1,
                             qos=QosRequirement(load=1, memory_mb=8))
    monitor.deploy(OperationalString("ft", [element]))
    env.run(until=15.0)
    items = lus.lookup(ServiceTemplate.by_name("Aggregate"), 5)
    assert len(items) == 1
    victim = items[0].service.host
    net.hosts[victim].fail()
    killed_at = env.now
    while True:
        env.run(until=env.now + 0.25)
        items = lus.lookup(ServiceTemplate.by_name("Aggregate"), 5)
        if items and items[0].service.host != victim:
            return env.now - killed_at
        if env.now - killed_at > 10 * lease + 60:
            raise AssertionError("service never re-provisioned")


def scripted_partition(breaker_enabled, fault_policy, expression=None,
                       seed=7):
    """One client polling a two-child CSP through scripted partitions.

    The link between the CSP and its second child is cut and healed five
    times (the heal lands at a different phase of the client's poll cycle
    each episode); the client polls with a hard per-query deadline (a
    dashboard refresh, not a batch job) and, like any polite poller, backs
    off exponentially while its polls keep failing. Returns
    during-partition availability, stale-substitution count, mean time
    from a heal to the first successful post-heal poll, and the full
    resilience event trace.
    """
    # Tight enough that the cut-off child's retry ladder (3 x 1 s timeouts
    # plus backoff) cannot finish inside it — without breakers the whole
    # query budget is burned waiting on the dead branch.
    BUDGET = 2.5
    PARTITIONS = [(10.0, 25.0), (30.0, 45.0), (50.0, 65.0),
                  (70.0, 85.0), (90.0, 105.0)]
    END = 110.0
    env = Environment()
    net = Network(env, rng=np.random.default_rng(seed),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=seed)
    LookupService(Host(net, "lus-host")).start()
    esps = []
    for index, location in enumerate([(0.0, 0.0), (60.0, 0.0)]):
        name = f"FT{index + 1}"
        probe = TemperatureProbe(env, name.lower(), world, location,
                                 rng=np.random.default_rng(index),
                                 sensing_noise=0.0)
        esp = ElementarySensorProvider(Host(net, f"{name}-host"), name, probe,
                                       sample_interval=1.0,
                                       location=Location(building="Lab"))
        esp.start()
        esps.append(esp)
    csp = CompositeSensorProvider(Host(net, "csp-host"), "Composite-FT",
                                  fault_policy=fault_policy,
                                  child_wait=1.0, child_timeout=1.0,
                                  stale_max_age=120.0)
    csp.start()
    for esp in esps:
        csp.add_child(esp.service_id, esp.name)
    if expression is not None:
        csp.set_expression(expression)
    client_host = Host(net, "client-host")
    for host in (csp.host, client_host):
        registry = breaker_registry(host)
        registry.enabled = breaker_enabled
        registry.reset_timeout = 6.0
    results = []  # (started, finished, ok, stale)

    def client_loop():
        exerter = Exerter(client_host)
        poll_backoff = RetryPolicy(base_delay=0.5, multiplier=2.0,
                                   max_delay=8.0, jitter=0.5)
        poll_rng = backoff_rng(client_host.name, salt=3)
        consecutive_failures = 0
        yield env.timeout(3.0)  # join/discovery settle
        while env.now < END:
            task = Task(f"read-{len(results)}",
                        Signature(SENSOR_DATA_ACCESSOR, OP_GET_VALUE,
                                  service_id=csp.service_id),
                        ServiceContext())
            task.control.provider_wait = 2.0
            task.control.invocation_timeout = BUDGET
            task.control.retries = 0
            task.control.deadline = Deadline.after(env.now, BUDGET)
            started = env.now
            result = yield env.process(exerter.exert(task))
            stale = bool(result.is_done
                         and result.context.get_value(STALE_PATH, None))
            results.append((started, env.now, result.is_done, stale))
            if result.is_done:
                consecutive_failures = 0
                yield env.timeout(0.5)
            else:
                yield env.timeout(
                    poll_backoff.delay(consecutive_failures, poll_rng))
                consecutive_failures += 1

    def script():
        sides = (["csp-host"], [f"{esps[1].name}-host"])
        for start, stop in PARTITIONS:
            yield env.timeout(start - env.now)
            net.partition(*sides)
            yield env.timeout(stop - env.now)
            net.heal_partition(*sides)

    env.process(client_loop())
    env.process(script())
    env.run(until=END)

    def cut(t):
        return any(start <= t < stop for start, stop in PARTITIONS)

    window = [r for r in results if cut(r[0])]
    availability = (sum(1 for r in window if r[2]) / len(window)
                    if window else 0.0)
    stale_answers = sum(1 for r in window if r[3])
    # Recovery: from each heal to the completion of the first successful
    # poll *issued* after it, averaged over the episodes. A breaker-less
    # client has been failing for the whole cut, so at heal time it is
    # deep in poll backoff (or draining a doomed in-flight query); a
    # breaker-protected one never stopped polling at full cadence.
    recoveries = []
    for index, (start, stop) in enumerate(PARTITIONS):
        horizon = (PARTITIONS[index + 1][0] if index + 1 < len(PARTITIONS)
                   else END)
        done = [r[1] for r in results
                if r[2] and stop <= r[0] < horizon]
        recoveries.append(min(done) - stop if done else horizon - stop)
    recovery = sum(recoveries) / len(recoveries)
    events = resilience_events(net)
    return {
        "availability": availability,
        "stale_answers": stale_answers,
        "recovery": recovery,
        "breaker_opens": events.count("breaker_open"),
        "trace": events.trace,
    }


def test_partition_resilience(benchmark, report):
    def run_all():
        return {
            "breaker off / skip": scripted_partition(False, "skip"),
            "breaker on / skip": scripted_partition(True, "skip"),
            "breaker on / degraded": scripted_partition(
                True, "degraded", expression="(a + b)/2"),
        }

    arms = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[label, f"{arm['availability']:.0%}", arm["stale_answers"],
             f"{arm['recovery']:.2f}", int(arm["breaker_opens"])]
            for label, arm in arms.items()]
    report(render_table(
        ["configuration", "partition availability", "stale answers",
         "mean recovery after heal (s)", "breaker opens"],
        rows,
        title="E-RES — circuit breakers + degraded CSP under scripted "
              "partitions (5 x 15 s cuts, client deadline 2.5 s)"))

    off, on, degraded = (arms["breaker off / skip"],
                         arms["breaker on / skip"],
                         arms["breaker on / degraded"])
    # Without breakers every poll burns its whole budget waiting on the
    # cut-off child and the client's deadline expires first.
    assert off["availability"] < 0.2
    assert off["breaker_opens"] == 0
    # Breakers skip the unreachable child in O(1): the survivors answer.
    assert on["availability"] > 0.8
    assert on["breaker_opens"] >= 1
    # ...which also means the reading path is already responsive when the
    # partition heals: first post-heal reading arrives sooner.
    assert on["recovery"] < off["recovery"]
    # Degraded mode keeps the *expression* answering, flagged as stale.
    assert degraded["availability"] > 0.8
    assert degraded["stale_answers"] >= 10
    # Identical seeds replay the identical resilience event trace.
    replay = scripted_partition(True, "skip")
    assert replay["trace"] == on["trace"]


def test_fault_tolerance(benchmark, report):
    def run_all():
        rows = []
        for lease in LEASES:
            rows.append([lease, detection_time(lease), repair_time(lease),
                         renewal_traffic(lease)])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["lease (s)", "detection (s)", "repair (s)", "renewal msgs/min"],
        rows,
        title="E-FT — crash detection and self-healing vs lease duration"))
    by_lease = {row[0]: row for row in rows}
    for lease in LEASES:
        # Detection is bounded by roughly one lease duration (+ sweep).
        assert by_lease[lease][1] <= lease + 2.0
        # Repair includes detection + monitor poll + instantiation.
        assert by_lease[lease][2] <= lease + 8.0
    # Short leases detect faster but renew more often.
    assert by_lease[2.0][1] < by_lease[20.0][1]
    assert by_lease[2.0][3] > by_lease[20.0][3]
