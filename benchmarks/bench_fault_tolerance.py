"""E-FT — failure detection and self-healing, with the lease ablation.

Two measurements per lease duration L:

* **detection** — a sensor service's host crashes; how long until its
  registration lease lapses and the network forgets it (§IV.B: "this
  mechanism of leasing keeps the sensor network healthy and robust");
* **repair** — the cybernode hosting a provisioned composite crashes; how
  long until the provision monitor has a replacement instance visible on
  the surviving node (§IV.C fault tolerance).

Expected shape: both scale with L (detection bounded by ~L, repair by
~L + poll interval + instantiation), so short leases buy fast healing at
the cost of renewal traffic — which the table also reports.
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService, ServiceTemplate
from repro.rio import Cybernode, OperationalString, ProvisionMonitor, \
    QosCapability, QosRequirement, ServiceElement
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.core import ElementarySensorProvider, SENSOR_DATA_ACCESSOR, \
    composite_factory

LEASES = (2.0, 5.0, 10.0, 20.0)


def detection_time(lease):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(5),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=5)
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    probe = TemperatureProbe(env, "p", world, (0, 0),
                             rng=np.random.default_rng(0))
    esp = ElementarySensorProvider(Host(net, "esp-host"), "Victim", probe,
                                   lease_duration=lease)
    esp.start()
    env.run(until=5.0)
    assert len(lus.lookup(ServiceTemplate.by_name("Victim"), 5)) == 1
    renew_base = net.stats.by_kind.get("rpc-request", {}).get("messages", 0)
    killed_at = env.now
    esp.host.fail()
    while lus.lookup(ServiceTemplate.by_name("Victim"), 5):
        env.run(until=env.now + 0.25)
        if env.now - killed_at > 10 * lease + 30:
            raise AssertionError("service never deregistered")
    return env.now - killed_at


def renewal_traffic(lease, horizon=60.0):
    """Messages per minute a single idle service costs at lease L."""
    env = Environment()
    net = Network(env, rng=np.random.default_rng(5),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=5)
    LookupService(Host(net, "lus-host")).start()
    probe = TemperatureProbe(env, "p", world, (0, 0),
                             rng=np.random.default_rng(0))
    esp = ElementarySensorProvider(Host(net, "esp-host"), "Idle", probe,
                                   sample_interval=1e9, lease_duration=lease)
    esp.start()
    env.run(until=10.0)
    base = net.stats.messages
    env.run(until=10.0 + horizon)
    return (net.stats.messages - base) * 60.0 / horizon


def repair_time(lease):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(6),
                  latency=FixedLatency(0.001))
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    nodes = []
    for index in range(2):
        node = Cybernode(Host(net, f"cyber-{index}"), "Cybernode",
                         capability=QosCapability(compute_slots=4),
                         lease_duration=lease)
        node.start()
        nodes.append(node)
    monitor = ProvisionMonitor(Host(net, "monitor-host"), poll_interval=1.0)
    monitor.start()

    def factory(host, instance_name, attributes):
        provider = composite_factory(host, instance_name, attributes)
        provider._lease_duration = lease
        return provider

    element = ServiceElement(name="Aggregate", factory=factory, planned=1,
                             qos=QosRequirement(load=1, memory_mb=8))
    monitor.deploy(OperationalString("ft", [element]))
    env.run(until=15.0)
    items = lus.lookup(ServiceTemplate.by_name("Aggregate"), 5)
    assert len(items) == 1
    victim = items[0].service.host
    net.hosts[victim].fail()
    killed_at = env.now
    while True:
        env.run(until=env.now + 0.25)
        items = lus.lookup(ServiceTemplate.by_name("Aggregate"), 5)
        if items and items[0].service.host != victim:
            return env.now - killed_at
        if env.now - killed_at > 10 * lease + 60:
            raise AssertionError("service never re-provisioned")


def test_fault_tolerance(benchmark, report):
    def run_all():
        rows = []
        for lease in LEASES:
            rows.append([lease, detection_time(lease), repair_time(lease),
                         renewal_traffic(lease)])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["lease (s)", "detection (s)", "repair (s)", "renewal msgs/min"],
        rows,
        title="E-FT — crash detection and self-healing vs lease duration"))
    by_lease = {row[0]: row for row in rows}
    for lease in LEASES:
        # Detection is bounded by roughly one lease duration (+ sweep).
        assert by_lease[lease][1] <= lease + 2.0
        # Repair includes detection + monitor poll + instantiation.
        assert by_lease[lease][2] <= lease + 8.0
    # Short leases detect faster but renew more often.
    assert by_lease[2.0][1] < by_lease[20.0][1]
    assert by_lease[2.0][3] > by_lease[20.0][3]
