"""E-SNAP — snapshot round-trip cost and warm-restore shrink speedup.

Two claims from DESIGN.md §14, measured:

* **round trip is cheap and exact** — capturing the full federation at a
  checkpoint, writing the envelope, reading it back and replay-verifying
  the digest costs a small fraction of simply re-running the scenario,
  and the restored continuation's ``status --json`` is byte-identical to
  the uninterrupted run;
* **warm probes pay off** — ddmin over a 50-event late-fault plan (one
  culprit partition hidden behind 49 harmless slowdowns, all past t=100
  of a 120s horizon) runs >= 2x faster with fork-based warm-restore
  probes than with cold full re-runs, because every probe skips the
  settled 100s prefix; the warm minimum is cold-validated and must equal
  the cold minimum exactly.

``REPRO_BENCH_SMOKE=1`` runs the same plan with the speedup gate relaxed
to 1.3x (CI runners share cores; the equality gates stay exact).
"""

# repro: allow-file[DET001] - benchmarks time real work on the wall clock

import json
import os
import time

from repro.chaos import CampaignConfig, CampaignRunner, ChaosPlan, FaultEvent
from repro.chaos.shrink import _matches_failure, shrink_plan
from repro.metrics import render_table
from repro.snapshot.format import read_snapshot
from repro.snapshot.programs import run_program, status_spec
from repro.snapshot.restore import restore_run
from repro.util.atomicio import atomic_write_text

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: Warm ddmin must beat cold by this factor on the late-fault plan.
MIN_SPEEDUP = 1.3 if SMOKE else 2.0

HORIZON = 120.0
#: All 50 events land in [100, 116): the settled prefix dominates the
#: run, which is exactly when warm-restore probes should pay off.
FAULT_WINDOW_START = 100.0
PLAN_EVENTS = 50
SHRINK_BUDGET = 60
FILLER_HOSTS = ("neem-host", "jade-host", "coral-host", "diamond-host")


def late_fault_plan() -> ChaosPlan:
    """One convergence-breaking partition plus 49 harmless 1s slowdowns.

    The culprit leads the event list, which is the adversarial ordering
    for ddmin (every complement that drops the head passes), so both
    probe modes do the full ~11-run reduction rather than getting lucky.
    """
    # Ends at t=116 with only 4s of horizon left: health cannot converge.
    events = [FaultEvent("partition", "composite-host|facade-host",
                         FAULT_WINDOW_START, 16.0)]
    events += [
        FaultEvent("slowdown", FILLER_HOSTS[i % len(FILLER_HOSTS)],
                   round(FAULT_WINDOW_START + 1.0 + i * 0.3, 3), 1.0,
                   {"delay": 0.05})
        for i in range(PLAN_EVENTS - 1)]
    return ChaosPlan(seed=0, scenario="paper-lab", horizon=HORIZON,
                     events=events)


def _runner() -> CampaignRunner:
    return CampaignRunner("paper-lab",
                          config=CampaignConfig(horizon=HORIZON))


def _round_trip(tmp: str) -> dict:
    spec = status_spec(seed=2009, until=30.0)
    path = os.path.join(tmp, "e_snap.snap")

    run_program(spec)  # warm import/scenario caches off the clock

    t0 = time.perf_counter()
    run_program(spec)
    plain_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    baseline, _ = run_program(spec, checkpoint_at=[12.0], sink=path)
    run_and_capture_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    body = read_snapshot(path)
    restore_run(path, continue_run=False)  # replay-verify the digest
    verify_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    restored, _ = restore_run(path)
    restore_s = time.perf_counter() - t0

    assert restored["status"] == baseline["status"]
    assert restored["trace"] == baseline["trace"]
    return {
        "bytes": os.path.getsize(path),
        "sections": len(body["state"]),
        "plain_run_s": round(plain_s, 3),
        "run_and_capture_s": round(run_and_capture_s, 3),
        "verify_s": round(verify_s, 3),
        "restore_s": round(restore_s, 3),
    }


def _shrink_both_ways() -> dict:
    plan = late_fault_plan()
    failed = {"health-convergence"}
    verdict = _runner().run_plan(plan)
    assert not verdict["ok"], "the late-fault plan must fail unshrunk"

    cold_runner = _runner()

    def cold_fails(candidate: ChaosPlan) -> bool:
        return _matches_failure(cold_runner.run_plan(candidate), failed)

    t0 = time.perf_counter()
    cold = shrink_plan(plan, cold_fails, max_runs=SHRINK_BUDGET)
    cold_s = time.perf_counter() - t0

    warm_runner = _runner()
    t0 = time.perf_counter()
    session = warm_runner.warm_session(plan)

    def warm_fails(candidate: ChaosPlan) -> bool:
        return _matches_failure(session.run_plan(candidate), failed)

    warm = shrink_plan(plan, warm_fails, max_runs=SHRINK_BUDGET)
    validated = _matches_failure(_runner().run_plan(warm.plan), failed)
    warm_s = time.perf_counter() - t0

    return {
        "cold_s": round(cold_s, 3), "cold_runs": cold.runs,
        "warm_s": round(warm_s, 3), "warm_runs": warm.runs,
        "speedup": round(cold_s / warm_s, 2),
        "validated": validated,
        "cold_plan": cold.plan.to_json(),
        "warm_plan": warm.plan.to_json(),
        "minimal_events": len(cold.plan.events),
    }


def test_snapshot_round_trip_and_warm_shrink(benchmark, report, results_dir,
                                             tmp_path):
    def body():
        return {"round_trip": _round_trip(str(tmp_path)),
                "shrink": _shrink_both_ways()}

    results = benchmark.pedantic(body, rounds=1, iterations=1)
    trip, shrink = results["round_trip"], results["shrink"]

    blob = json.dumps(results, sort_keys=True, separators=(",", ":")) + "\n"
    atomic_write_text(results_dir / "e_snap.json", blob)

    report(render_table(
        ["quantity", "value"],
        [["snapshot bytes", trip["bytes"]],
         ["state sections", trip["sections"]],
         ["plain run (s)", trip["plain_run_s"]],
         ["run + capture (s)", trip["run_and_capture_s"]],
         ["verify-only restore (s)", trip["verify_s"]],
         ["restore + continue (s)", trip["restore_s"]],
         ["cold ddmin (s)", f"{shrink['cold_s']} ({shrink['cold_runs']} runs)"],
         ["warm ddmin (s)", f"{shrink['warm_s']} ({shrink['warm_runs']} runs)"],
         ["warm speedup", f"{shrink['speedup']}x (gate {MIN_SPEEDUP}x)"],
         ["minimal plan events",
          f"{shrink['minimal_events']} (from {PLAN_EVENTS})"]],
        title="E-SNAP — snapshot round trip + warm-restore shrink "
              f"({PLAN_EVENTS}-event plan, {HORIZON:g}s horizon)"))

    # Round trip is exact (asserted inside) and not absurdly expensive:
    # capturing mid-run costs less than one extra uninterrupted run.
    overhead = trip["run_and_capture_s"] - trip["plain_run_s"]
    assert overhead < trip["plain_run_s"], (
        f"capture overhead {overhead:.3f}s exceeds a full run")
    assert trip["bytes"] > 1024, "snapshot is implausibly small"

    # Warm probes found the same one-event minimum, cold-validated...
    assert shrink["validated"], "warm minimum failed cold validation"
    assert shrink["warm_plan"] == shrink["cold_plan"]
    assert shrink["minimal_events"] == 1
    # ...at a real speedup: every probe skipped the settled prefix.
    assert shrink["speedup"] >= MIN_SPEEDUP, (
        f"warm ddmin only {shrink['speedup']}x faster "
        f"(needed {MIN_SPEEDUP}x)")
