"""E-LOAD — graceful saturation under open-loop multi-tenant load.

Sweeps offered load across multiples of the default gold/silver/bronze
tenant mix against the admission-controlled paper lab (fresh lab per
point) and asserts the shape that distinguishes *graceful* saturation
from congestion collapse:

* **goodput plateau** — past the knee, goodput stays within 80% of the
  peak point instead of collapsing as queues grow;
* **bounded latency** — admitted work's p99 never exceeds the tenants'
  deadline, because bounded queues bound waiting;
* **typed shedding** — the excess is absorbed by typed rejections
  (queue-full / expired / quota), with zero untyped failures;
* **determinism** — the whole curve is byte-identical when re-swept with
  the same seed.

Full sweep is 5 points (0.4x–2.4x); ``REPRO_BENCH_SMOKE=1`` runs the
CI-sized 3-point sweep (same assertions). The curve is persisted as a
canonical-JSON artifact next to the table for plotting/CI upload.
"""

import json
import os

from repro.load import SWEEP_FULL, SWEEP_SMOKE, saturation_curve
from repro.metrics import render_table
from repro.util.atomicio import atomic_write_text

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SWEEP = SWEEP_SMOKE if SMOKE else SWEEP_FULL
SEED = 2009
DURATION = 8.0
#: Tenant deadline in the default mix — the latency bound for admitted work.
DEADLINE = 2.0


def _sweep():
    return saturation_curve(seed=SEED, multipliers=SWEEP, duration=DURATION)


def _canonical(curve) -> str:
    return json.dumps(curve, sort_keys=True, separators=(",", ":")) + "\n"


def test_load_graceful_saturation(benchmark, report, results_dir):
    curve = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    points = curve["points"]

    blob = _canonical(curve)
    atomic_write_text(results_dir / "e_load_curve.json", blob)

    rows = []
    for point in points:
        latency = point["latency"]
        rows.append([
            f"{point['scale']:g}x", point["offered"], point["completed"],
            point["goodput"], point["rejected"], point["failed"],
            f"{point['goodput_rate']:.3f}",
            f"{latency['p50']:.3f}" if latency["p50"] is not None else "-",
            f"{latency['p99']:.3f}" if latency["p99"] is not None else "-"])
    report(render_table(
        ["scale", "offered", "completed", "goodput", "rejected", "failed",
         "goodput%", "p50", "p99"], rows,
        title=f"E-LOAD — saturation sweep, seed {SEED}, "
              f"{DURATION:g}s per point"))

    # Determinism: the same seed re-sweeps to the identical curve.
    assert _canonical(_sweep()) == blob

    # The sweep actually crossed the knee: the top point sheds load.
    top = points[-1]
    assert top["rejected"] > 0, "top point never saturated the lab"

    # Goodput plateaus instead of collapsing: every past-knee point keeps
    # at least 80% of the best point's goodput.
    peak = max(point["goodput"] for point in points)
    shedding = [point for point in points if point["rejected"]]
    for point in shedding:
        assert point["goodput"] >= 0.8 * peak, (
            f"goodput collapsed at {point['scale']:g}x: "
            f"{point['goodput']} < 0.8 * {peak}")

    # Bounded queues bound waiting: admitted work stays under the deadline.
    for point in points:
        p99 = point["latency"]["p99"]
        assert p99 is not None and p99 <= DEADLINE, (
            f"p99 {p99} exceeds the {DEADLINE:g}s deadline "
            f"at {point['scale']:g}x")

    # Overload is shed as typed rejections, never as failures.
    assert all(point["failed"] == 0 for point in points)
