"""E-PUSH — delivering sensor data: polling vs leased push subscriptions.

Our §II.5 extension (ESP `subscribe`) closes the paper's "data on-the-fly"
motivation; this bench quantifies what it buys. A consumer wants one fresh
reading every D seconds from one ESP for 60 s:

* **poll** — exert ``getValue`` every D seconds (request + reply, each an
  exertion round trip);
* **push** — one ``subscribe`` exertion, then leased events at
  ``min_interval=D`` (one message per delivery, plus half-life lease
  renewals on a 60 s lease).

Reported: network messages and bytes per delivered reading. Expected
shape: push roughly halves the messages (no requests) and cuts bytes by
more (events are smaller than exertion round trips); the advantage shrinks
as D grows because lease renewals amortize worse.
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment
from repro.net import FixedLatency, Host, Network, rpc_endpoint
from repro.jini import LookupService
from repro.sensors import PhysicalEnvironment, TemperatureProbe
from repro.sorcer import Exerter, ServiceContext, Signature, Task
from repro.core import ElementarySensorProvider, SENSOR_DATA_ACCESSOR

DELIVERY_INTERVALS = (1.0, 5.0)
HORIZON = 60.0


def stack(seed=37):
    env = Environment()
    net = Network(env, rng=np.random.default_rng(seed),
                  latency=FixedLatency(0.001))
    world = PhysicalEnvironment(seed=seed)
    LookupService(Host(net, "lus-host")).start()
    probe = TemperatureProbe(env, "p", world, (0, 0),
                             rng=np.random.default_rng(0))
    esp = ElementarySensorProvider(Host(net, "esp-host"), "Spot", probe,
                                   sample_interval=1.0)
    esp.start()
    env.run(until=5.0)
    return env, net, esp


def consumer_traffic(net, host_name):
    stats = net.stats.host_bytes(host_name)
    return (stats["sent_messages"] + stats["received_messages"],
            stats["sent"] + stats["received"])


def run_poll(interval):
    env, net, esp = stack()
    client = Host(net, "consumer")
    exerter = Exerter(client)
    delivered = 0

    def proc():
        nonlocal delivered
        # Warm-up excludes one-off discovery costs from the per-reading rate.
        warm = Task("warm", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                      service_id=esp.service_id),
                    ServiceContext())
        yield env.process(exerter.exert(warm))
        base = consumer_traffic(net, "consumer")
        deadline = env.now + HORIZON
        while env.now < deadline:
            task = Task("q", Signature(SENSOR_DATA_ACCESSOR, "getValue",
                                       service_id=esp.service_id),
                        ServiceContext())
            result = yield env.process(exerter.exert(task))
            if result.is_done:
                delivered += 1
            yield env.timeout(interval)
        return base

    base = env.run(until=env.process(proc()))
    after = consumer_traffic(net, "consumer")
    return delivered, after[0] - base[0], after[1] - base[1]


def run_push(interval):
    env, net, esp = stack()
    client = Host(net, "consumer")
    ep = rpc_endpoint(client)
    exerter = Exerter(client)
    received = []

    class Listener:
        REMOTE_TYPES = ("RemoteEventListener",)

        def notify(self, event):
            received.append(event)

    listener_ref = ep.export(Listener(), "listener")

    def proc():
        ctx = ServiceContext()
        ctx.put_in_value("arg/listener", listener_ref)
        ctx.put_in_value("arg/min_interval", interval)
        ctx.put_in_value("arg/lease_duration", 60.0)
        task = Task("sub", Signature(SENSOR_DATA_ACCESSOR, "subscribe",
                                     service_id=esp.service_id), ctx)
        result = yield env.process(exerter.exert(task))
        assert result.is_done, result.exceptions
        sub = result.get_return_value()
        base = consumer_traffic(net, "consumer")
        deadline = env.now + HORIZON
        while env.now < deadline:
            yield env.timeout(30.0)  # renew at the lease half-life
            renew_ctx = ServiceContext()
            renew_ctx.put_in_value("arg/lease_id", sub.lease_id)
            renew_ctx.put_in_value("arg/lease_duration", 60.0)
            renew = Task("renew", Signature(SENSOR_DATA_ACCESSOR,
                                            "renewSubscription",
                                            service_id=esp.service_id),
                         renew_ctx)
            yield env.process(exerter.exert(renew))
        return base

    base = env.run(until=env.process(proc()))
    after = consumer_traffic(net, "consumer")
    return len(received), after[0] - base[0], after[1] - base[1]


def test_push_vs_poll(benchmark, report):
    def run_all():
        rows = []
        for interval in DELIVERY_INTERVALS:
            p_count, p_msgs, p_bytes = run_poll(interval)
            s_count, s_msgs, s_bytes = run_push(interval)
            rows.append([interval,
                         p_msgs / p_count, p_bytes / p_count,
                         s_msgs / s_count, s_bytes / s_count])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(render_table(
        ["delivery interval (s)", "poll msgs/reading", "poll B/reading",
         "push msgs/reading", "push B/reading"],
        rows,
        title=f"E-PUSH — consumer-link cost per delivered reading "
              f"({HORIZON:.0f}s horizon)"))
    for row in rows:
        _, poll_msgs, poll_bytes, push_msgs, push_bytes = row
        assert push_msgs < poll_msgs
        assert push_bytes < poll_bytes / 2
