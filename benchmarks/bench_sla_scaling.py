"""E-SLA — autoscaling extension: planned capacity follows load.

The paper's provisioning discussion (§IV.C) gives Rio "pluggable load
distribution and resource utilization analysis mechanisms"; the SLA scaler
is the natural closing of that loop (scale the planned count of a service
element between watermarks). A synthetic load curve steps up and back down;
the table shows the planned/live instance timeline.

Expected shape: live instances track the load with a lag of roughly
(check interval + provision time) per step, and return to the floor when
the load clears.
"""

import numpy as np
import pytest

from repro.metrics import render_table
from repro.sim import Environment
from repro.net import FixedLatency, Host, Network
from repro.jini import LookupService, ServiceTemplate
from repro.rio import (
    Cybernode,
    OperationalString,
    ProvisionMonitor,
    QosCapability,
    QosRequirement,
    ServiceElement,
    SlaScaler,
)
from repro.sorcer import Tasker


class Worker(Tasker):
    SERVICE_TYPES = ("Worker",)

    def __init__(self, host, name, attributes=(), **kw):
        super().__init__(host, name, attributes=attributes,
                         lease_duration=5.0, **kw)
        self.add_operation("work", lambda ctx: 1)


def worker_factory(host, instance_name, attributes):
    return Worker(host, instance_name, attributes=attributes)


#: (time, load) steps of the synthetic demand curve.
LOAD_CURVE = [(0.0, 0.0), (20.0, 12.0), (60.0, 0.0)]


def current_load(now):
    load = 0.0
    for t, value in LOAD_CURVE:
        if now >= t:
            load = value
    return load


def run():
    env = Environment()
    net = Network(env, rng=np.random.default_rng(55),
                  latency=FixedLatency(0.001))
    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    Cybernode(Host(net, "cyber-0"), "Cybernode",
              capability=QosCapability(compute_slots=16),
              lease_duration=5.0).start()
    monitor = ProvisionMonitor(Host(net, "monitor-host"), poll_interval=1.0)
    monitor.start()
    element = ServiceElement(name="Worker", factory=worker_factory, planned=1,
                             qos=QosRequirement(load=1, memory_mb=1),
                             max_per_node=16)
    monitor.deploy(OperationalString("sla", [element]))
    scaler = SlaScaler(Host(net, "sla-host"), monitor.ref, "sla", "Worker",
                       load_metric=lambda: current_load(env.now),
                       high_water=5.0, low_water=1.0,
                       min_planned=1, max_planned=4, check_interval=2.0)
    scaler.start()

    timeline = []

    def sampler():
        while env.now < 110.0:
            live = len(lus.lookup(ServiceTemplate.by_type("Worker"), 32))
            timeline.append([env.now, current_load(env.now),
                             scaler.planned, live])
            yield env.timeout(10.0)

    env.run(until=env.process(sampler()))
    return timeline


def test_sla_autoscaling(benchmark, report):
    timeline = benchmark.pedantic(run, rounds=1, iterations=1)
    report(render_table(
        ["t (s)", "load", "planned", "live instances"], timeline,
        title="E-SLA — planned capacity tracking a load spike "
              "(watermarks 1/5, bounds 1..4)"))
    by_time = {row[0]: row for row in timeline}
    assert by_time[10.0][3] == 1          # baseline before the spike
    assert by_time[50.0][2] == 4          # scaled to the ceiling under load
    assert by_time[50.0][3] == 4
    assert by_time[100.0][2] == 1         # back to the floor after it
    assert by_time[100.0][3] == 1
