"""Legacy setup shim: the sandbox has setuptools 65 without the ``wheel``
package, so PEP-517 editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` (or plain ``pip install -e .`` on a modern toolchain)
uses this file instead. All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
