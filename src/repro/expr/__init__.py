"""Compute-expression language (the Groovy substitute, §V.A).

Composite providers attach expressions over dynamically created variables
(``a``, ``b``, ... one per composed service) and evaluate them against fresh
sensor values at query time: ``evaluate("(a+b+c)/3", {...})``.
"""

from .errors import ExprError, ExprEvalError, ExprNameError, ExprSyntaxError
from .evaluator import Expression, compile_expression, evaluate
from .functions import BUILTINS
from .lexer import Token, TokenType, tokenize
from .nodes import Binary, Call, Conditional, Node, Number, Unary, Variable
from .parser import parse

__all__ = [
    "BUILTINS",
    "Binary",
    "Call",
    "Conditional",
    "ExprError",
    "ExprEvalError",
    "ExprNameError",
    "ExprSyntaxError",
    "Expression",
    "Node",
    "Number",
    "Token",
    "TokenType",
    "Unary",
    "Variable",
    "compile_expression",
    "evaluate",
    "parse",
    "tokenize",
]
