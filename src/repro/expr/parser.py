"""Pratt (top-down operator precedence) parser for compute-expressions.

Grammar (loosest to tightest binding)::

    conditional :  or_expr '?' expr ':' expr
    or          :  '||'
    and         :  '&&'
    comparison  :  < <= > >= == !=     (non-associative chain -> left)
    additive    :  + -
    multiplicative : * / %
    unary       :  - !  (prefix)
    power       :  ^   (right associative)
    primary     :  number | ident | ident '(' args ')' | '(' expr ')'
"""

from __future__ import annotations

from .errors import ExprSyntaxError
from .lexer import Token, TokenType, tokenize
from .nodes import Binary, Call, Conditional, Node, Number, Unary, Variable

__all__ = ["parse"]

#: Binding power for left-associative infix operators.
_INFIX_POWER = {
    "||": (10, 11),
    "&&": (20, 21),
    "<": (30, 31), "<=": (30, 31), ">": (30, 31), ">=": (30, 31),
    "==": (30, 31), "!=": (30, 31),
    "+": (40, 41), "-": (40, 41),
    "*": (50, 51), "/": (50, 51), "%": (50, 51),
    "^": (61, 60),  # right associative
}
_UNARY_POWER = 70
_TERNARY_POWER = 5


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, token_type: TokenType) -> Token:
        token = self.peek()
        if token.type is not token_type:
            raise ExprSyntaxError(
                f"expected {token_type.value!r}, found {token.text or 'end of input'!r}",
                token.position)
        return self.advance()

    # -- expression parsing -----------------------------------------------------

    def parse_expression(self, min_power: int = 0) -> Node:
        left = self.parse_prefix()
        while True:
            token = self.peek()
            if token.type is TokenType.OP and token.text in _INFIX_POWER:
                left_power, right_power = _INFIX_POWER[token.text]
                if left_power < min_power:
                    break
                self.advance()
                right = self.parse_expression(right_power)
                left = Binary(token.text, left, right)
                continue
            if token.type is TokenType.QUESTION and _TERNARY_POWER >= min_power:
                self.advance()
                if_true = self.parse_expression(0)
                self.expect(TokenType.COLON)
                if_false = self.parse_expression(_TERNARY_POWER)
                left = Conditional(left, if_true, if_false)
                continue
            break
        return left

    def parse_prefix(self) -> Node:
        token = self.advance()
        if token.type is TokenType.NUMBER:
            return Number(float(token.text))
        if token.type is TokenType.IDENT:
            if self.peek().type is TokenType.LPAREN:
                self.advance()
                args: list[Node] = []
                if self.peek().type is not TokenType.RPAREN:
                    args.append(self.parse_expression(0))
                    while self.peek().type is TokenType.COMMA:
                        self.advance()
                        args.append(self.parse_expression(0))
                self.expect(TokenType.RPAREN)
                return Call(token.text, tuple(args))
            return Variable(token.text)
        if token.type is TokenType.LPAREN:
            inner = self.parse_expression(0)
            self.expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.OP and token.text in ("-", "!"):
            operand = self.parse_expression(_UNARY_POWER)
            return Unary(token.text, operand)
        raise ExprSyntaxError(
            f"unexpected token {token.text or 'end of input'!r}", token.position)


def parse(text: str) -> Node:
    """Parse expression text into an AST; raises :class:`ExprSyntaxError`."""
    if not text or not text.strip():
        raise ExprSyntaxError("empty expression")
    parser = _Parser(tokenize(text))
    node = parser.parse_expression(0)
    trailing = parser.peek()
    if trailing.type is not TokenType.END:
        raise ExprSyntaxError(
            f"unexpected trailing input {trailing.text!r}", trailing.position)
    return node
