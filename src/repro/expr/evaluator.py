"""Expression evaluation with late-bound variables.

:class:`Expression` compiles once and evaluates many times against changing
bindings — exactly how a composite sensor provider uses it: the expression
``(a + b + c)/3`` is attached once, while ``a``/``b``/``c`` resolve to fresh
sensor values on every query.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Union

from .errors import ExprEvalError, ExprNameError
from .functions import BUILTINS
from .nodes import Binary, Call, Conditional, Node, Number, Unary, Variable
from .parser import parse

__all__ = ["Expression", "compile_expression", "evaluate", "CONSTANTS"]

Resolver = Callable[[str], float]

#: Predefined names usable in any expression; they are *not* free
#: variables. Uppercase by design: composite providers create lowercase
#: variables (a, b, ... e, ...), so constants can never shadow them.
CONSTANTS: dict = {
    "PI": 3.141592653589793,
    "E": 2.718281828459045,
    "TRUE": 1.0,
    "FALSE": 0.0,
}


def _as_resolver(bindings: Union[Mapping, Resolver, None]) -> Resolver:
    if bindings is None:
        def empty(name: str) -> float:
            raise ExprNameError(f"unbound variable {name!r}")
        return empty
    if callable(bindings):
        return bindings

    def lookup(name: str) -> float:
        try:
            return bindings[name]
        except KeyError:
            raise ExprNameError(f"unbound variable {name!r}") from None
    return lookup


def _truthy(value: float) -> bool:
    return bool(value)


def _eval(node: Node, resolver: Resolver,
          functions: Mapping[str, Callable]) -> float:
    if isinstance(node, Number):
        return node.value
    if isinstance(node, Variable):
        if node.name in CONSTANTS:
            return CONSTANTS[node.name]
        value = resolver(node.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExprEvalError(
                f"variable {node.name!r} resolved to non-numeric {value!r}")
        return float(value)
    if isinstance(node, Unary):
        operand = _eval(node.operand, resolver, functions)
        if node.op == "-":
            return -operand
        if node.op == "!":
            return 0.0 if _truthy(operand) else 1.0
        raise ExprEvalError(f"unknown unary operator {node.op!r}")
    if isinstance(node, Conditional):
        condition = _eval(node.condition, resolver, functions)
        branch = node.if_true if _truthy(condition) else node.if_false
        return _eval(branch, resolver, functions)
    if isinstance(node, Call):
        fn = functions.get(node.func)
        if fn is None:
            raise ExprNameError(f"unknown function {node.func!r}")
        args = [_eval(arg, resolver, functions) for arg in node.args]
        return float(fn(*args))
    if isinstance(node, Binary):
        if node.op == "&&":
            left = _eval(node.left, resolver, functions)
            if not _truthy(left):
                return 0.0
            return 1.0 if _truthy(_eval(node.right, resolver, functions)) else 0.0
        if node.op == "||":
            left = _eval(node.left, resolver, functions)
            if _truthy(left):
                return 1.0
            return 1.0 if _truthy(_eval(node.right, resolver, functions)) else 0.0
        left = _eval(node.left, resolver, functions)
        right = _eval(node.right, resolver, functions)
        op = node.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExprEvalError("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise ExprEvalError("modulo by zero")
            return left % right
        if op == "^":
            try:
                return float(left ** right)
            except (OverflowError, ZeroDivisionError, ValueError) as exc:
                raise ExprEvalError(f"{left} ^ {right}: {exc}") from exc
        if op == "<":
            return 1.0 if left < right else 0.0
        if op == "<=":
            return 1.0 if left <= right else 0.0
        if op == ">":
            return 1.0 if left > right else 0.0
        if op == ">=":
            return 1.0 if left >= right else 0.0
        if op == "==":
            return 1.0 if left == right else 0.0
        if op == "!=":
            return 1.0 if left != right else 0.0
        raise ExprEvalError(f"unknown operator {op!r}")
    raise ExprEvalError(f"cannot evaluate node {node!r}")  # pragma: no cover


class Expression:
    """A compiled compute-expression."""

    def __init__(self, text: str,
                 functions: Optional[Mapping[str, Callable]] = None):
        self.text = text
        self.ast = parse(text)
        self.functions = dict(BUILTINS)
        if functions:
            self.functions.update(functions)
        #: Free variables (constants excluded), sorted.
        self.variables = tuple(sorted(
            self.ast.free_variables() - set(CONSTANTS)))

    def evaluate(self, bindings: Union[Mapping, Resolver, None] = None) -> float:
        return _eval(self.ast, _as_resolver(bindings), self.functions)

    def __call__(self, **bindings) -> float:
        return self.evaluate(bindings)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Expression {self.text!r} vars={self.variables}>"


def compile_expression(text: str,
                       functions: Optional[Mapping[str, Callable]] = None) -> Expression:
    return Expression(text, functions)


def evaluate(text: str, bindings: Union[Mapping, Resolver, None] = None) -> float:
    """One-shot convenience: parse + evaluate."""
    return Expression(text).evaluate(bindings)
