"""Built-in function library for compute-expressions.

A deliberately small, numeric-only standard library: aggregation helpers the
composite sensor provider needs (``avg``, ``min``, ``max``...), common math,
and a functional ``if``.
"""

from __future__ import annotations

import math
from typing import Callable

from .errors import ExprEvalError

__all__ = ["BUILTINS"]


def _require_args(name: str, args, minimum: int, maximum: int | None = None):
    if len(args) < minimum or (maximum is not None and len(args) > maximum):
        span = f"{minimum}" if maximum == minimum else (
            f"at least {minimum}" if maximum is None else f"{minimum}..{maximum}")
        raise ExprEvalError(f"{name}() expects {span} argument(s), got {len(args)}")


def _avg(*args):
    _require_args("avg", args, 1)
    return sum(args) / len(args)


def _min(*args):
    _require_args("min", args, 1)
    return min(args)


def _max(*args):
    _require_args("max", args, 1)
    return max(args)


def _sum(*args):
    _require_args("sum", args, 1)
    return sum(args)


def _clamp(*args):
    _require_args("clamp", args, 3, 3)
    x, lo, hi = args
    if lo > hi:
        raise ExprEvalError(f"clamp(): lower bound {lo} exceeds upper bound {hi}")
    return max(lo, min(hi, x))


def _sqrt(*args):
    _require_args("sqrt", args, 1, 1)
    if args[0] < 0:
        raise ExprEvalError(f"sqrt() of negative value {args[0]}")
    return math.sqrt(args[0])


def _log(*args):
    _require_args("log", args, 1, 2)
    if args[0] <= 0:
        raise ExprEvalError(f"log() of non-positive value {args[0]}")
    if len(args) == 2:
        if args[1] <= 0 or args[1] == 1:
            raise ExprEvalError(f"log() with invalid base {args[1]}")
        return math.log(args[0], args[1])
    return math.log(args[0])


def _if(*args):
    _require_args("if", args, 3, 3)
    return args[1] if args[0] else args[2]


def _unary(name: str, fn: Callable) -> Callable:
    def wrapper(*args):
        _require_args(name, args, 1, 1)
        return fn(args[0])
    return wrapper


def _pow(*args):
    _require_args("pow", args, 2, 2)
    try:
        return math.pow(args[0], args[1])
    except (ValueError, OverflowError) as exc:
        raise ExprEvalError(f"pow({args[0]}, {args[1]}): {exc}") from exc


BUILTINS: dict[str, Callable] = {
    "avg": _avg,
    "mean": _avg,
    "min": _min,
    "max": _max,
    "sum": _sum,
    "clamp": _clamp,
    "sqrt": _sqrt,
    "log": _log,
    "exp": _unary("exp", math.exp),
    "abs": _unary("abs", abs),
    "floor": _unary("floor", math.floor),
    "ceil": _unary("ceil", math.ceil),
    "round": _unary("round", round),
    "pow": _pow,
    "if": _if,
}
