"""Tokenizer for compute-expressions.

The paper's composite providers attach Groovy expressions like
``(a + b + c)/3`` to sensor services. This lexer covers that surface plus
comparisons, boolean operators and function calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .errors import ExprSyntaxError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(Enum):
    NUMBER = "number"
    IDENT = "ident"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    QUESTION = "?"
    COLON = ":"
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.text!r}@{self.position})"


#: Multi-character operators first so maximal munch works.
_OPERATORS = ("<=", ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%",
              "^", "<", ">", "!")


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    # Exponent must be followed by digits or a sign+digits.
                    j = i + 1
                    if j < n and text[j] in "+-":
                        j += 1
                    if j < n and text[j].isdigit():
                        seen_exp = True
                        i = j + 1
                    else:
                        break
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(Token(TokenType.IDENT, text[start:i], start))
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, ch, i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ch, i))
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ch, i))
            i += 1
            continue
        if ch == "?":
            tokens.append(Token(TokenType.QUESTION, ch, i))
            i += 1
            continue
        if ch == ":":
            tokens.append(Token(TokenType.COLON, ch, i))
            i += 1
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, i))
                i += len(op)
                break
        else:
            raise ExprSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, "", n))
    return tokens
