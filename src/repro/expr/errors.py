"""Expression-language errors."""

from __future__ import annotations

__all__ = ["ExprError", "ExprSyntaxError", "ExprNameError", "ExprEvalError"]


class ExprError(Exception):
    """Base class for expression failures."""


class ExprSyntaxError(ExprError):
    """The expression text does not parse."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message if position < 0 else f"{message} (at column {position})")
        self.position = position


class ExprNameError(ExprError):
    """A variable or function name is unbound."""


class ExprEvalError(ExprError):
    """Evaluation failed (division by zero, domain error, bad arity...)."""
