"""AST node types for compute-expressions."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Node", "Number", "Variable", "Unary", "Binary", "Call",
           "Conditional"]


class Node:
    """Base AST node."""

    def free_variables(self) -> set:
        """Names this subtree reads (function names excluded)."""
        raise NotImplementedError  # pragma: no cover


@dataclass(frozen=True)
class Number(Node):
    value: float

    def free_variables(self) -> set:
        return set()


@dataclass(frozen=True)
class Variable(Node):
    name: str

    def free_variables(self) -> set:
        return {self.name}


@dataclass(frozen=True)
class Unary(Node):
    op: str
    operand: Node

    def free_variables(self) -> set:
        return self.operand.free_variables()


@dataclass(frozen=True)
class Binary(Node):
    op: str
    left: Node
    right: Node

    def free_variables(self) -> set:
        return self.left.free_variables() | self.right.free_variables()


@dataclass(frozen=True)
class Call(Node):
    func: str
    args: tuple

    def free_variables(self) -> set:
        out: set = set()
        for arg in self.args:
            out |= arg.free_variables()
        return out


@dataclass(frozen=True)
class Conditional(Node):
    condition: Node
    if_true: Node
    if_false: Node

    def free_variables(self) -> set:
        return (self.condition.free_variables()
                | self.if_true.free_variables()
                | self.if_false.free_variables())
