"""Intraprocedural control-flow graphs over stdlib ``ast`` functions.

The resource-lifecycle rules (:mod:`repro.analysis.lifecycle`) need one
question answered precisely: *from this statement, which statements can run
next — including when something raises?* This module builds a small CFG per
function that models exactly the control constructs the repo's process
bodies use:

* straight-line statements, ``if``/``for``/``while`` (with ``break`` /
  ``continue`` / ``else``), ``with``, ``return`` and ``raise``;
* ``try``/``except``/``finally``: every statement that *can raise* gets an
  exceptional edge to the innermost handler dispatch; handlers that are not
  total (they name something narrower than ``Exception``) propagate onward,
  and exceptional routes run the ``finally`` body before leaving;
* **Interrupt edges**: a ``yield`` is where the kernel delivers
  :class:`~repro.sim.Interrupt` (and event failures), so every yield point
  gets a distinct ``"interrupt"`` exceptional edge — the edge most leak
  bugs hide on.

The model is deliberately *may*-flow: any ``Call`` is assumed able to
raise. That over-approximates paths (fine for a lint that reports "this
resource *may* leak") and the lifecycle pass decides which exits are worth
reporting. The ``finally`` body is shared between its normal and
exceptional routes, so a handful of infeasible cross-route paths exist;
they can only ever under-report (a release on the other route masks a
leak), never invent one.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = ["CfgNode", "Cfg", "build_cfg", "can_raise", "has_yield",
           "head_exprs", "NORMAL", "EXC", "INTERRUPT"]

#: Edge kinds. ``normal`` — ordinary fall-through / branch. ``exc`` — a
#: statement raised. ``interrupt`` — an Interrupt (or event failure)
#: surfaced at a yield point.
NORMAL = "normal"
EXC = "exc"
INTERRUPT = "interrupt"

_RAISING_EXPRS = (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _walk_own_exprs(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression/statement without entering nested scopes."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if not isinstance(current, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(current))


def can_raise(node: ast.AST) -> bool:
    """May evaluating ``node`` raise? Calls, yields, awaits and explicit
    raises can; plain data plumbing is assumed safe (attribute and
    subscript errors on the happy path are programming errors the test
    suite catches, not control flow the CFG should model)."""
    if isinstance(node, ast.Raise):
        return True
    return any(isinstance(sub, _RAISING_EXPRS)
               for sub in _walk_own_exprs(node))


def has_yield(node: ast.AST) -> bool:
    """Does ``node`` contain a yield point (where Interrupt can surface)?"""
    return any(isinstance(sub, (ast.Yield, ast.YieldFrom))
               for sub in _walk_own_exprs(node))


def _is_total_handler(handler: ast.ExceptHandler) -> bool:
    """Catches everything that matters? (bare, Exception, BaseException)"""
    if handler.type is None:
        return True
    nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in nodes:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None)
        if name in ("Exception", "BaseException"):
            return True
    return False


class CfgNode:
    """One CFG node: a simple statement, or a synthetic entry/exit/join."""

    __slots__ = ("index", "stmt", "line", "label")

    def __init__(self, index: int, stmt: Optional[ast.AST], label: str):
        self.index = index
        self.stmt = stmt
        self.line = getattr(stmt, "lineno", 0)
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CfgNode {self.index} {self.label} line={self.line}>"


class Cfg:
    """The graph: nodes plus labelled successor edges."""

    def __init__(self, func: ast.AST):
        self.func = func
        self.nodes: list[CfgNode] = []
        #: node index -> list of (successor index, edge kind)
        self.succ: dict[int, list] = {}
        self.entry = self._new(None, "entry")
        #: Normal return / fall-off-the-end exit.
        self.exit = self._new(None, "exit")
        #: An exception or Interrupt left the function un-handled.
        self.raise_exit = self._new(None, "raise-exit")

    def _new(self, stmt: Optional[ast.AST], label: str) -> CfgNode:
        node = CfgNode(len(self.nodes), stmt, label)
        self.nodes.append(node)
        self.succ[node.index] = []
        return node

    def _edge(self, src: CfgNode, dst: CfgNode, kind: str = NORMAL) -> None:
        pair = (dst.index, kind)
        if pair not in self.succ[src.index]:
            self.succ[src.index].append(pair)

    def successors(self, node: CfgNode) -> Iterator[tuple]:
        for index, kind in self.succ[node.index]:
            yield self.nodes[index], kind

    def statement_nodes(self) -> Iterator[CfgNode]:
        for node in self.nodes:
            if node.stmt is not None and not isinstance(node.stmt,
                                                        ast.ExceptHandler):
                yield node


def head_exprs(node: CfgNode) -> list:
    """The expressions ``node`` itself evaluates.

    For a simple statement that is the whole statement; for a compound
    head (``if`` / loop / ``with``) only the test/iterable/context
    expressions — the body statements have their own nodes. Used by the
    lifecycle pass so an acquire inside an ``if`` body is attributed to
    its own node, not to the branch head as well.
    """
    stmt = node.stmt
    if stmt is None:
        return []
    if node.label == "if":
        return [stmt.test]
    if node.label == "loop-head":
        return [stmt.test] if isinstance(stmt, ast.While) else [stmt.iter]
    if node.label == "with":
        return [item.context_expr for item in stmt.items]
    if node.label == "def":
        return []  # nested scopes are opaque
    return [stmt]


class _Frame:
    """Loop / exception context surrounding the statements being wired.

    ``return_target`` is where a ``return`` transfers control: the exit
    node at top level, or the enclosing ``finally`` body's entry pad when
    returning out of a ``try`` — Python runs every finally on the way out
    and the CFG must too, or a release in a finally looks skipped.
    """

    __slots__ = ("exc_target", "break_target", "continue_target",
                 "return_target")

    def __init__(self, exc_target: CfgNode,
                 break_target: Optional[CfgNode],
                 continue_target: Optional[CfgNode],
                 return_target: CfgNode):
        self.exc_target = exc_target
        self.break_target = break_target
        self.continue_target = continue_target
        self.return_target = return_target


def build_cfg(func: ast.AST) -> Cfg:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    cfg = Cfg(func)
    builder = _Builder(cfg)
    last = builder.wire_block(func.body, cfg.entry,
                              _Frame(cfg.raise_exit, None, None, cfg.exit))
    if last is not None:
        cfg._edge(last, cfg.exit)
    return cfg


class _Builder:
    def __init__(self, cfg: Cfg):
        self.cfg = cfg
        #: >0 while wiring ``finally`` bodies. Plain calls there are
        #: assumed not to raise (cleanup code that throws is its own bug,
        #: and modelling it flags every multi-statement finally); yield
        #: points still get their edges — the kernel injects Interrupts
        #: wherever a generator is suspended, cleanup or not.
        self.cleanup_depth = 0

    # Each wire_* method connects a construct after predecessor ``pred``
    # and returns the node that falls through to whatever follows (or
    # ``None`` when control cannot fall through: return/raise/...).

    def wire_block(self, stmts, pred: Optional[CfgNode],
                   frame: _Frame) -> Optional[CfgNode]:
        for stmt in stmts:
            if pred is None:
                break  # unreachable code after return/raise
            pred = self.wire_stmt(stmt, pred, frame)
        return pred

    def _exc_edges(self, node: CfgNode, source: ast.AST,
                   frame: _Frame) -> None:
        """Wire the exceptional out-edges of ``node``, judging raise- and
        yield-ability from ``source`` (for compound statements that is the
        head expression only, not the nested body)."""
        if not can_raise(source):
            return
        if self.cleanup_depth and not has_yield(source) \
                and not isinstance(source, ast.Raise):
            return  # cleanup calls are assumed not to raise
        self.cfg._edge(node, frame.exc_target, EXC)
        if has_yield(source):
            # The Interrupt edge is distinct so findings can say "leaks
            # at the yield on line N" even alongside the generic one.
            self.cfg._edge(node, frame.exc_target, INTERRUPT)

    def wire_stmt(self, stmt: ast.stmt, pred: CfgNode,
                  frame: _Frame) -> Optional[CfgNode]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            node = cfg._new(stmt, "if")
            cfg._edge(pred, node)
            self._exc_edges(node, stmt.test, frame)
            join = cfg._new(None, "join")
            then_last = self.wire_block(stmt.body, node, frame)
            if then_last is not None:
                cfg._edge(then_last, join)
            if stmt.orelse:
                else_last = self.wire_block(stmt.orelse, node, frame)
                if else_last is not None:
                    cfg._edge(else_last, join)
            else:
                cfg._edge(node, join)  # test-false falls through
            return join
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = cfg._new(stmt, "loop-head")
            cfg._edge(pred, head)
            head_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            self._exc_edges(head, head_expr, frame)
            after = cfg._new(None, "loop-after")
            body_frame = _Frame(frame.exc_target, after, head,
                                frame.return_target)
            body_last = self.wire_block(stmt.body, head, body_frame)
            if body_last is not None:
                cfg._edge(body_last, head)
            if stmt.orelse:
                else_last = self.wire_block(stmt.orelse, head, frame)
                if else_last is not None:
                    cfg._edge(else_last, after)
            else:
                cfg._edge(head, after)  # loop exhausted / test false
            return after
        if isinstance(stmt, ast.Try):
            return self.wire_try(stmt, pred, frame)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg._new(stmt, "with")
            cfg._edge(pred, node)
            for item in stmt.items:
                self._exc_edges(node, item.context_expr, frame)
            return self.wire_block(stmt.body, node, frame)
        if isinstance(stmt, ast.Return):
            node = cfg._new(stmt, "return")
            cfg._edge(pred, node)
            if stmt.value is not None:
                self._exc_edges(node, stmt.value, frame)
            cfg._edge(node, frame.return_target)
            return None
        if isinstance(stmt, ast.Raise):
            node = cfg._new(stmt, "raise")
            cfg._edge(pred, node)
            cfg._edge(node, frame.exc_target, EXC)
            return None
        if isinstance(stmt, ast.Break):
            node = cfg._new(stmt, "break")
            cfg._edge(pred, node)
            if frame.break_target is not None:
                cfg._edge(node, frame.break_target)
            return None
        if isinstance(stmt, ast.Continue):
            node = cfg._new(stmt, "continue")
            cfg._edge(pred, node)
            if frame.continue_target is not None:
                cfg._edge(node, frame.continue_target)
            return None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            node = cfg._new(stmt, "def")  # nested scopes are opaque
            cfg._edge(pred, node)
            return node
        # Simple statement: assignment, expression, assert, delete, ...
        node = cfg._new(stmt, "stmt")
        cfg._edge(pred, node)
        self._exc_edges(node, stmt, frame)
        return node

    def wire_try(self, stmt: ast.Try, pred: CfgNode,
                 frame: _Frame) -> Optional[CfgNode]:
        cfg = self.cfg
        # Where exceptions raised in the body land.
        dispatch = cfg._new(None, "except-dispatch")
        join = cfg._new(None, "try-join")

        # The finally body runs on every route out of the statement. It is
        # wired once; routes pick their continuation among its out-edges
        # (shared-body approximation, see the module docstring).
        finally_entry: Optional[CfgNode] = None
        finally_last: Optional[CfgNode] = None
        if stmt.finalbody:
            finally_entry = cfg._new(None, "finally")
            self.cleanup_depth += 1
            try:
                finally_last = self.wire_block(stmt.finalbody, finally_entry,
                                               frame)
            finally:
                self.cleanup_depth -= 1

        def leave(src: CfgNode, target: CfgNode, kind: str = NORMAL) -> None:
            """Route ``src -> target`` through the finally body if any."""
            if finally_entry is None:
                cfg._edge(src, target, kind)
            else:
                cfg._edge(src, finally_entry, kind)
                if finally_last is not None:
                    cfg._edge(finally_last, target, kind)

        # Return / break / continue / handler-raise leaving this statement
        # must run the finally body on their way out. Each such route gets
        # a *pad*: statements jump to the pad, and pads that were actually
        # used are connected pad -> finally -> outer target afterwards
        # (connecting unused pads would fabricate skip-the-release paths).
        if finally_entry is None:
            body_frame = _Frame(dispatch, frame.break_target,
                                frame.continue_target, frame.return_target)
            handler_frame = frame
            pads = ()
        else:
            return_pad = cfg._new(None, "pad-return")
            exc_pad = cfg._new(None, "pad-exc")
            break_pad = (cfg._new(None, "pad-break")
                         if frame.break_target is not None else None)
            continue_pad = (cfg._new(None, "pad-continue")
                            if frame.continue_target is not None else None)
            body_frame = _Frame(dispatch, break_pad, continue_pad,
                                return_pad)
            handler_frame = _Frame(exc_pad, break_pad, continue_pad,
                                   return_pad)
            pads = ((return_pad, frame.return_target),
                    (exc_pad, frame.exc_target),
                    (break_pad, frame.break_target),
                    (continue_pad, frame.continue_target))
        body_last = self.wire_block(stmt.body, pred, body_frame)

        # Normal completion: body -> else -> (finally) -> join. The else
        # clause's exceptions are NOT caught by this statement's handlers.
        if body_last is not None:
            else_last = self.wire_block(stmt.orelse, body_last,
                                        handler_frame)
            if else_last is not None:
                leave(else_last, join)

        # Handlers: dispatch -> handler body -> (finally) -> join.
        total = False
        for handler in stmt.handlers:
            handler_entry = cfg._new(handler, "except")
            cfg._edge(dispatch, handler_entry)
            handler_last = self.wire_block(handler.body, handler_entry,
                                           handler_frame)
            if handler_last is not None:
                leave(handler_last, join)
            if _is_total_handler(handler):
                total = True
        if not total:
            # Something the handlers don't catch (or there are none)
            # propagates outward — through the finally body first.
            leave(dispatch, frame.exc_target, EXC)

        used = set()
        for succs in cfg.succ.values():
            for index, _kind in succs:
                used.add(index)
        for pad, target in pads:
            if pad is None or pad.index not in used:
                continue
            cfg._edge(pad, finally_entry)
            if finally_last is not None:
                cfg._edge(finally_last, target)
        return join
