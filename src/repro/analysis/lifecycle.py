"""RES0xx — resource-lifecycle rules over the intraprocedural CFG.

Every rule here proves the same shape of property: *an acquire has a
matching release on every path that leaves the function*, where "every
path" includes the exceptional edges the CFG models (a raising call, a
``raise``, and the Interrupt edge at every yield point). The acquire /
release pairs are the repo's own contracts:

=======  ==================================================================
RES001   a span opened with ``start_span`` must be ``end()``-ed on all
         paths (an open span never appears in duration rollups and holds
         its annotations forever)
RES002   a lease ``grant(...)`` whose handle is discarded can never be
         renewed or cancelled — the resource is pinned until it lapses
RES003   an admission slot taken with ``admission.acquire(...)`` must be
         returned with ``admission.release(...)`` on all paths (a leaked
         slot permanently shrinks the provider's concurrency)
RES004   a ``HistoryStore`` / ``sqlite3.connect`` handle must be
         ``close()``-d on all paths (or held in a ``with`` block)
RES005   an armed timer callback (``timer.callbacks.append``) that the
         function also disarms (``timer.callbacks.clear``) must be
         disarmed on the exceptional edges too — an Interrupt between arm
         and disarm leaves a stale callback that fires into freed state
RES006   an ``AtomicFile`` handle must be ``close()``-d or ``abort()``-ed
         on all paths, Interrupt edges included (or held in a ``with``
         block) — an interrupted writer strands the temp file and never
         publishes (or never cleans up) the artifact
=======  ==================================================================

A bound resource that *escapes* the function (returned, yielded, passed as
an argument, stored into an attribute/container, aliased, or captured by a
nested function) is someone else's responsibility and is never flagged —
that is the documented "cannot prove" escape hatch (DESIGN §13).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .cfg import EXC, INTERRUPT, NORMAL, Cfg, build_cfg, head_exprs
from .rules import ModuleInfo, Rule, register

__all__ = ["leaks_for"]


# ---------------------------------------------------------------------------
# Small AST matchers


def _dotted(expr: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` / ``a`` as a dotted string; None for anything else."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return None


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _attr_call(call: ast.Call) -> tuple:
    """``(method_name, receiver)`` of an attribute call, else (None, None)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr, call.func.value
    return None, None


def _own_function_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """All AST nodes of the function, *including* nested scopes (escape
    analysis must see closures that capture the resource)."""
    yield from ast.walk(func)


# ---------------------------------------------------------------------------
# Escape analysis for name-bound resources


def _mentions_object(expr: ast.AST, name: str) -> bool:
    """Can evaluating ``expr`` yield (a reference to) the object bound to
    ``name`` — as opposed to a value merely *derived* from it?

    ``span`` → yes; ``span.span_id`` / ``store is None`` → no (an
    attribute read or a comparison produces a different object);
    ``run_id if store else None`` → no (the test is truthiness only).
    """
    if isinstance(expr, ast.Name):
        return expr.id == name
    if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Compare)):
        return False
    if isinstance(expr, ast.IfExp):
        return _mentions_object(expr.body, name) \
            or _mentions_object(expr.orelse, name)
    return any(_mentions_object(child, name)
               for child in ast.iter_child_nodes(expr))


def _name_escapes(func: ast.AST, name: str, binder: ast.stmt) -> bool:
    """Can ``name`` outlive the function (or this binding)?

    True when the object is returned, yielded, raised, passed as a call
    argument, stored into an attribute/subscript/collection, aliased to
    another name, or captured by a nested function. Receiver position
    (``name.method(...)``) and derived values (``name.attr``) don't
    escape.
    """
    for node in _own_function_nodes(func):
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _mentions_object(arg, name):
                    return True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom,
                               ast.Raise)):
            value = getattr(node, "value", None) or getattr(node, "exc", None)
            if value is not None and _mentions_object(value, name):
                return True
        elif isinstance(node, ast.Assign) and node is not binder:
            stores_elsewhere = any(
                not (isinstance(t, ast.Name) and t.id == name)
                for t in node.targets)
            if stores_elsewhere and _mentions_object(node.value, name):
                return True
        elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)) and node is not func:
            # Captured by a closure: any mention at all pins the object.
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                if any(isinstance(sub, ast.Name) and sub.id == name
                       for sub in ast.walk(stmt)):
                    return True
    return False


# ---------------------------------------------------------------------------
# The leak engine


class _Leak:
    __slots__ = ("kind", "via_line")

    def __init__(self, kind: str, via_line: int):
        self.kind = kind        # NORMAL / EXC / INTERRUPT
        self.via_line = via_line


def _find_leaks(cfg: Cfg, acquire_node, is_release, is_rebind) -> list:
    """Paths from ``acquire_node`` to an exit without a release.

    Returns one :class:`_Leak` per distinct (exit kind, via line): the
    dataflow propagates an *open* token along edges — except the acquire
    node's own exceptional edges, where the acquisition itself failed and
    there is nothing to release.
    """
    leaks: dict[tuple, _Leak] = {}
    seen = set()
    work = [(acquire_node, succ, kind)
            for succ, kind in cfg.successors(acquire_node)
            if kind == NORMAL]
    while work:
        src, node, kind = work.pop()
        if node is cfg.exit:
            leaks.setdefault((NORMAL, 0), _Leak(NORMAL, src.line))
            continue
        if node is cfg.raise_exit:
            leaks.setdefault((kind, src.line), _Leak(kind, src.line))
            continue
        if (node.index, kind) in seen:
            continue
        seen.add((node.index, kind))
        if node.stmt is not None:
            if is_release(node.stmt):
                continue
            if is_rebind(node.stmt):
                continue
        for succ, edge_kind in cfg.successors(node):
            # A non-normal edge stamps the path with its kind; the line we
            # report is the last real statement the path left through.
            carried = kind if edge_kind == NORMAL else edge_kind
            work.append((node if node.line else src, succ, carried))
    return list(leaks.values())


def _leak_message(what: str, leak: _Leak) -> str:
    if leak.kind == INTERRUPT:
        return (f"{what} is not released on the Interrupt edge of the "
                f"yield at line {leak.via_line}")
    if leak.kind == EXC:
        return (f"{what} is not released on the exception path escaping "
                f"at line {leak.via_line}")
    return f"{what} is not released on every normal path to return"


def leaks_for(cfg: Cfg, acquire_node, is_release, is_rebind,
              exceptional_only: bool = False) -> list:
    leaks = _find_leaks(cfg, acquire_node, is_release, is_rebind)
    if exceptional_only:
        leaks = [leak for leak in leaks if leak.kind != NORMAL]
    # Deterministic order: interrupts first (most actionable), then by line.
    order = {INTERRUPT: 0, EXC: 1, NORMAL: 2}
    leaks.sort(key=lambda leak: (order[leak.kind], leak.via_line))
    return leaks


# ---------------------------------------------------------------------------
# Shared per-function driver for bind-style protocols


def _binding_of(stmt: ast.stmt, match_call) -> tuple:
    """``(bound_name, call)`` when ``stmt`` binds a matching acquire call to
    a plain local name; ``(None, call)`` when the call's result is dropped
    or bound to something we cannot track (tuple target, attribute, ...).
    ``(None, None)`` when the statement has no matching call."""
    for call in _calls_in(stmt):
        if not match_call(call):
            continue
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.value is not None):
            # Direct bind, possibly through `x = yield from acquire(...)`.
            return stmt.targets[0].id, call
        if isinstance(stmt, ast.Expr):
            return None, call
        return "<untracked>", call
    return None, None


def _release_on_name(name: str, method: str):
    def is_release(stmt: ast.stmt) -> bool:
        for call in _calls_in(stmt):
            attr, recv = _attr_call(call)
            if (attr == method and isinstance(recv, ast.Name)
                    and recv.id == name):
                return True
        return False
    return is_release


def _rebind_of_name(name: str, binder: ast.stmt):
    def is_rebind(stmt: ast.stmt) -> bool:
        if stmt is binder:
            return True
        if isinstance(stmt, ast.Assign):
            return any(isinstance(t, ast.Name) and t.id == name
                       for t in stmt.targets)
        return False
    return is_rebind


class _LifecycleRule(Rule):
    """Base: walks every function, builds its CFG, delegates."""

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        for func in module.functions:
            yield from self.check_function(module, func)

    def check_function(self, module, func):  # pragma: no cover
        raise NotImplementedError

    def _check_bound_protocol(self, module, func, match_call: object,
                              release_method: str, what: str,
                              drop_message: Optional[str] = None,
                              exceptional_only: bool = False):
        cfg = build_cfg(func)
        for node in cfg.statement_nodes():
            name, call = _binding_of(node.stmt, match_call)
            if call is None:
                continue
            if name is None:
                if drop_message:
                    yield call.lineno, drop_message
                continue
            if name == "<untracked>":
                continue  # bound into a structure: assume handed off
            if _name_escapes(func, name, node.stmt):
                continue
            leaks = leaks_for(cfg, node,
                              _release_on_name(name, release_method),
                              _rebind_of_name(name, node.stmt),
                              exceptional_only=exceptional_only)
            if leaks:
                yield call.lineno, _leak_message(
                    f"{what} {name!r}", leaks[0])


# ---------------------------------------------------------------------------
# RES001 — spans


def _is_start_span(call: ast.Call) -> bool:
    attr, _ = _attr_call(call)
    return attr == "start_span"


@register
class SpanLifecycleRule(_LifecycleRule):
    rule_id = "RES001"
    summary = "span opened but not ended on every path"
    hint = ("close the span in a try/finally (or `except BaseException: "
            "span.end('error'); raise`); spans that outlive the function "
            "must be handed off explicitly")

    def check_function(self, module, func):
        yield from self._check_bound_protocol(
            module, func, _is_start_span, "end", "span",
            drop_message="span started and immediately dropped — it can "
                         "never be ended")


# ---------------------------------------------------------------------------
# RES002 — discarded lease grants


@register
class LeaseGrantRule(Rule):
    rule_id = "RES002"
    summary = "lease granted but the handle is discarded"
    hint = ("keep the Lease returned by grant() — without it the holder "
            "can neither renew nor cancel, and the resource is pinned "
            "until the lease lapses on its own")

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        for func in module.functions:
            for node in ast.walk(func):
                if not (isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Call)):
                    continue
                attr, recv = _attr_call(node.value)
                dotted = _dotted(recv) if recv is not None else None
                if attr == "grant" and dotted is not None \
                        and "landlord" in dotted.lower():
                    yield (node.lineno,
                           f"{dotted}.grant(...) discards the Lease handle")


# ---------------------------------------------------------------------------
# RES003 — admission slots


def _admission_owner(call: ast.Call) -> Optional[str]:
    attr, recv = _attr_call(call)
    if attr != "acquire" or recv is None:
        return None
    dotted = _dotted(recv)
    if dotted is not None and "admission" in dotted.rsplit(".", 1)[-1]:
        return dotted
    return None


@register
class AdmissionSlotRule(_LifecycleRule):
    rule_id = "RES003"
    summary = "admission slot acquired but not released on every path"
    hint = ("release the slot in a try/finally around the work; a leaked "
            "slot permanently shrinks the provider's concurrency")

    def check_function(self, module, func):
        cfg = build_cfg(func)
        for node in cfg.statement_nodes():
            owner = None
            acquire_call = None
            for expr in head_exprs(node):
                for call in _calls_in(expr):
                    owner = _admission_owner(call)
                    if owner is not None:
                        acquire_call = call
                        break
                if owner is not None:
                    break
            if owner is None:
                continue

            def is_release(stmt: ast.stmt, owner=owner) -> bool:
                for call in _calls_in(stmt):
                    attr, recv = _attr_call(call)
                    if attr == "release" and recv is not None \
                            and _dotted(recv) == owner:
                        return True
                return False

            leaks = leaks_for(cfg, node, is_release, lambda stmt: False)
            if leaks:
                yield acquire_call.lineno, _leak_message(
                    f"admission slot from {owner}.acquire()", leaks[0])


# ---------------------------------------------------------------------------
# RES004 — sqlite / HistoryStore handles


def _is_store_open(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "HistoryStore":
        return True
    if isinstance(func, ast.Attribute):
        if func.attr == "HistoryStore":
            return True
        if func.attr == "connect" and isinstance(func.value, ast.Name) \
                and func.value.id == "sqlite3":
            return True
    return False


@register
class StoreLifecycleRule(_LifecycleRule):
    rule_id = "RES004"
    summary = "sqlite/HistoryStore handle not closed on every path"
    hint = ("use `with HistoryStore(...) as store:` or close() in a "
            "try/finally — an unclosed WAL connection can hold the "
            "database lock past the run")

    def check_function(self, module, func):
        # `with HistoryStore(...)` manages its own lifetime: skip any
        # acquire that appears as a with-item context expression.
        with_calls = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for call in _calls_in(item.context_expr):
                        with_calls.add(call)

        def match(call: ast.Call) -> bool:
            return _is_store_open(call) and call not in with_calls

        yield from self._check_bound_protocol(
            module, func, match, "close", "history-store handle",
            drop_message="history-store handle opened and immediately "
                         "dropped — the connection can never be closed")


# ---------------------------------------------------------------------------
# RES005 — armed timers across yield points


def _timer_owner_of(call: ast.Call, method: str) -> Optional[str]:
    """Owner ``T`` of ``T.callbacks.<method>(...)``."""
    attr, recv = _attr_call(call)
    if attr != method or not isinstance(recv, ast.Attribute):
        return None
    if recv.attr != "callbacks":
        return None
    return _dotted(recv.value)


@register
class TimerArmRule(_LifecycleRule):
    rule_id = "RES005"
    summary = "armed timer callback not cleared on the exceptional paths"
    hint = ("clear the timer's callbacks in a try/finally (or an Interrupt "
            "handler) so an interrupted process cannot leave a stale "
            "callback armed")

    def check_function(self, module, func):
        # Conditional protocol: a function that never disarms is using the
        # fire-later pattern and is fine; one that disarms on the happy
        # path but not on the exceptional edges has the bug.
        disarmed_owners = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                owner = _timer_owner_of(node, "clear")
                if owner is not None:
                    disarmed_owners.add(owner)
        if not disarmed_owners:
            return
        cfg = build_cfg(func)
        for node in cfg.statement_nodes():
            arm_call = None
            owner = None
            for expr in head_exprs(node):
                for call in _calls_in(expr):
                    owner = _timer_owner_of(call, "append")
                    if owner is not None and owner in disarmed_owners:
                        arm_call = call
                        break
                if arm_call is not None:
                    break
            if arm_call is None:
                continue

            def is_release(stmt: ast.stmt, owner=owner) -> bool:
                for call in _calls_in(stmt):
                    if _timer_owner_of(call, "clear") == owner:
                        return True
                return False

            leaks = leaks_for(cfg, node, is_release, lambda stmt: False,
                              exceptional_only=True)
            if leaks:
                yield arm_call.lineno, _leak_message(
                    f"timer callback armed on {owner}", leaks[0])


# ---------------------------------------------------------------------------
# RES006 — AtomicFile handles


def _is_atomic_open(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "AtomicFile"
    return isinstance(func, ast.Attribute) and func.attr == "AtomicFile"


@register
class AtomicFileRule(_LifecycleRule):
    rule_id = "RES006"
    summary = "AtomicFile handle not closed/aborted on every path"
    hint = ("use `with AtomicFile(...) as fh:` or close()/abort() in a "
            "try/finally — an interrupted writer strands the temp file "
            "and the artifact is never published (nor cleaned up)")

    def check_function(self, module, func):
        # `with AtomicFile(...)` commits/aborts via __exit__: skip any
        # acquire that appears as a with-item context expression.
        with_calls = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for call in _calls_in(item.context_expr):
                        with_calls.add(call)

        def match(call: ast.Call) -> bool:
            return _is_atomic_open(call) and call not in with_calls

        cfg = build_cfg(func)
        for node in cfg.statement_nodes():
            name, call = _binding_of(node.stmt, match)
            if call is None:
                continue
            if name is None:
                yield call.lineno, ("AtomicFile opened and immediately "
                                    "dropped — its content can never be "
                                    "published")
                continue
            if name == "<untracked>":
                continue  # bound into a structure: assume handed off
            if _name_escapes(func, name, node.stmt):
                continue

            def is_release(stmt: ast.stmt, name=name) -> bool:
                # Either outcome of the protocol — publish or discard —
                # releases the handle (and the temp file behind it).
                for rel in _calls_in(stmt):
                    attr, recv = _attr_call(rel)
                    if attr in ("abort", "close") \
                            and isinstance(recv, ast.Name) \
                            and recv.id == name:
                        return True
                return False

            leaks = leaks_for(cfg, node, is_release,
                              _rebind_of_name(name, node.stmt))
            if leaks:
                yield call.lineno, _leak_message(
                    f"atomic-file handle {name!r}", leaks[0])
