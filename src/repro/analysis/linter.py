"""Driver for the static-analysis pass (``repro lint``).

Parses files with the stdlib :mod:`ast` and runs the registered rules from
:mod:`repro.analysis.rules` in two phases:

1. **local rules** see one module at a time (DET/SIM/RES families);
2. **program rules** (:class:`~repro.analysis.rules.ProgramRule` — the
   CTX/API families) see every parsed module at once, so a write in one
   file can satisfy a read in another.

Pragma suppressions apply to both phases:

``# repro: allow[<rule>]``
    on a line: suppress that rule for that line;
``# repro: allow-file[<rule>]``
    anywhere in the file: suppress that rule for the whole file.

Multiple rules may be listed comma-separated inside the brackets. Unknown
rule names in pragmas are themselves reported (a stale pragma is a lie
about the code).

Findings can also be filtered through a committed *baseline* — a text
file of ``path<TAB>rule<TAB>message`` triples (line numbers deliberately
excluded so unrelated edits don't churn it). A finding matching a
baseline triple is suppressed; the expected steady state is an empty
baseline, the file existing so CI can diff what regressed.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .rules import RULES, ModuleInfo, ProgramRule, all_rules

__all__ = ["Finding", "lint_source", "lint_paths", "render_findings",
           "render_json", "render_sarif", "load_baseline", "apply_baseline",
           "format_baseline"]

_PRAGMA = re.compile(r"#\s*repro:\s*(allow|allow-file)\[([A-Za-z0-9_,\s]*)\]")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a file:line with a fix hint."""

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def _parse_pragmas(source: str):
    """Return ``(line_allows, file_allows, bad_pragmas)``.

    ``line_allows`` maps line number -> set of rule ids allowed there;
    ``file_allows`` is the set of rule ids allowed file-wide;
    ``bad_pragmas`` lists (line, token) for unknown rule names.
    """
    line_allows: dict[int, set] = {}
    file_allows: set = set()
    bad: list[tuple] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _PRAGMA.finditer(line):
            scope, rules_text = match.groups()
            for token in rules_text.split(","):
                token = token.strip()
                if not token:
                    continue
                if token not in RULES:
                    bad.append((lineno, token))
                    continue
                if scope == "allow-file":
                    file_allows.add(token)
                else:
                    line_allows.setdefault(lineno, set()).add(token)
    return line_allows, file_allows, bad


class _ParsedFile:
    """One file through the front end: module, pragmas, or a syntax error."""

    __slots__ = ("path", "module", "line_allows", "file_allows", "findings")

    def __init__(self, source: str, path: str):
        self.path = path
        self.module: Optional[ModuleInfo] = None
        self.findings: list = []
        self.line_allows: dict = {}
        self.file_allows: set = set()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.findings.append(Finding(
                path=path, line=exc.lineno or 1, rule="E999",
                message=f"syntax error: {exc.msg}"))
            return
        self.line_allows, self.file_allows, bad = _parse_pragmas(source)
        self.module = ModuleInfo(path, source, tree)
        for lineno, token in bad:
            self.findings.append(Finding(
                path=path, line=lineno, rule="PRAGMA",
                message=f"pragma names unknown rule {token!r}",
                hint=f"known rules: {', '.join(sorted(RULES))}"))

    def admit(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_allows:
            return False
        return rule_id not in self.line_allows.get(line, ())


def _run(parsed: Sequence, rules: Optional[Sequence]) -> list:
    active = list(rules) if rules is not None else all_rules()
    local_rules = [r for r in active if not isinstance(r, ProgramRule)]
    program_rules = [r for r in active if isinstance(r, ProgramRule)]
    by_path = {pf.path: pf for pf in parsed}
    findings: list = []
    for pf in parsed:
        findings.extend(pf.findings)
        if pf.module is None:
            continue
        for rule in local_rules:
            if rule.rule_id in pf.file_allows:
                continue
            for line, message in rule.check(pf.module):
                if pf.admit(rule.rule_id, line):
                    findings.append(Finding(
                        path=pf.path, line=line, rule=rule.rule_id,
                        message=message, hint=rule.hint))
    modules = [pf.module for pf in parsed if pf.module is not None]
    if modules:
        for rule in program_rules:
            for path, line, message in rule.check_program(modules):
                pf = by_path[path]
                if pf.admit(rule.rule_id, line):
                    findings.append(Finding(
                        path=path, line=line, rule=rule.rule_id,
                        message=message, hint=rule.hint))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence] = None) -> list:
    """Lint one module's source text; returns sorted :class:`Finding`s.

    Program rules run too, over the one-module program — snippet tests
    (and single-file lints) stay self-contained.
    """
    return _run([_ParsedFile(source, path)], rules)


def _iter_py_files(paths: Iterable) -> list:
    files: list = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return files


def lint_paths(paths: Iterable,
               rules: Optional[Sequence] = None) -> list:
    """Lint every ``.py`` file under ``paths`` (files or directories) as
    one program: local rules per file, program rules across all of them."""
    parsed = [_ParsedFile(path.read_text(encoding="utf-8"), str(path))
              for path in _iter_py_files(paths)]
    return _run(parsed, rules)


# ---------------------------------------------------------------------------
# Baseline


def load_baseline(text: str) -> set:
    """Parse a baseline file into ``(path, rule, message)`` triples."""
    triples: set = set()
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) == 3:
            triples.add(tuple(parts))
    return triples


def apply_baseline(findings: Sequence, baseline: set) -> list:
    """Drop findings whose (path, rule, message) triple is baselined."""
    return [f for f in findings
            if (f.path, f.rule, f.message) not in baseline]


def format_baseline(findings: Sequence) -> str:
    """Render findings as baseline lines (sorted, line numbers omitted)."""
    header = [
        "# repro lint baseline — one `path<TAB>rule<TAB>message` per line.",
        "# Findings matching a triple are suppressed; keep this empty.",
    ]
    triples = sorted({(f.path, f.rule, f.message) for f in findings})
    return "\n".join(header + ["\t".join(t) for t in triples]) + "\n"


# ---------------------------------------------------------------------------
# Renderers


def render_findings(findings: Sequence) -> str:
    """Human-readable report, one block per finding plus a summary line."""
    if not findings:
        return "repro lint: clean"
    lines = [finding.render() for finding in findings]
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    summary = ", ".join(f"{rule}: {count}"
                        for rule, count in sorted(by_rule.items()))
    lines.append(f"repro lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence) -> str:
    """Canonical JSON report (sorted keys, stable ordering, no clocks)."""
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "findings": [
            {"path": f.path, "line": f.line, "rule": f.rule,
             "message": f.message, "hint": f.hint}
            for f in findings
        ],
        "summary": {"total": len(findings), "by_rule": by_rule},
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(findings: Sequence) -> str:
    """SARIF 2.1.0 report (canonical: sorted keys, no timestamps)."""
    rule_ids = sorted({f.rule for f in findings} | set(RULES))
    rules_meta = []
    for rule_id in rule_ids:
        rule = RULES.get(rule_id)
        meta = {"id": rule_id}
        if rule is not None:
            meta["shortDescription"] = {"text": rule.summary}
            if rule.hint:
                meta["help"] = {"text": rule.hint}
        rules_meta.append(meta)
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": index.get(f.rule, -1),
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(f.line, 1)},
                },
            }],
        })
    payload = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro",
                "rules": rules_meta,
            }},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
