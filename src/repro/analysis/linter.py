"""Driver for the determinism lint pass (``repro lint``).

Parses files with the stdlib :mod:`ast`, runs every registered rule from
:mod:`repro.analysis.rules` and applies pragma suppressions:

``# repro: allow[<rule>]``
    on a line: suppress that rule for that line;
``# repro: allow-file[<rule>]``
    anywhere in the file: suppress that rule for the whole file.

Multiple rules may be listed comma-separated inside the brackets. Unknown
rule names in pragmas are themselves reported (a stale pragma is a lie
about the code).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .rules import RULES, ModuleInfo, all_rules

__all__ = ["Finding", "lint_source", "lint_paths", "render_findings"]

_PRAGMA = re.compile(r"#\s*repro:\s*(allow|allow-file)\[([A-Za-z0-9_,\s]*)\]")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a file:line with a fix hint."""

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def _parse_pragmas(source: str):
    """Return ``(line_allows, file_allows, bad_pragmas)``.

    ``line_allows`` maps line number -> set of rule ids allowed there;
    ``file_allows`` is the set of rule ids allowed file-wide;
    ``bad_pragmas`` lists (line, token) for unknown rule names.
    """
    line_allows: dict[int, set] = {}
    file_allows: set = set()
    bad: list[tuple] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _PRAGMA.finditer(line):
            scope, rules_text = match.groups()
            for token in rules_text.split(","):
                token = token.strip()
                if not token:
                    continue
                if token not in RULES:
                    bad.append((lineno, token))
                    continue
                if scope == "allow-file":
                    file_allows.add(token)
                else:
                    line_allows.setdefault(lineno, set()).add(token)
    return line_allows, file_allows, bad


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence] = None) -> list:
    """Lint one module's source text; returns sorted :class:`Finding`s."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1, rule="E999",
                        message=f"syntax error: {exc.msg}")]
    line_allows, file_allows, bad_pragmas = _parse_pragmas(source)
    module = ModuleInfo(path, source, tree)
    findings = [
        Finding(path=path, line=lineno, rule="PRAGMA",
                message=f"pragma names unknown rule {token!r}",
                hint=f"known rules: {', '.join(sorted(RULES))}")
        for lineno, token in bad_pragmas
    ]
    for rule in (rules if rules is not None else all_rules()):
        if rule.rule_id in file_allows:
            continue
        for line, message in rule.check(module):
            if rule.rule_id in line_allows.get(line, ()):
                continue
            findings.append(Finding(path=path, line=line, rule=rule.rule_id,
                                    message=message, hint=rule.hint))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def _iter_py_files(paths: Iterable) -> list:
    files: list = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return files


def lint_paths(paths: Iterable,
               rules: Optional[Sequence] = None) -> list:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list = []
    for path in _iter_py_files(paths):
        findings.extend(lint_source(path.read_text(encoding="utf-8"),
                                    path=str(path), rules=rules))
    return findings


def render_findings(findings: Sequence) -> str:
    """Human-readable report, one block per finding plus a summary line."""
    if not findings:
        return "repro lint: clean"
    lines = [finding.render() for finding in findings]
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    summary = ", ".join(f"{rule}: {count}"
                        for rule, count in sorted(by_rule.items()))
    lines.append(f"repro lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)
