"""Determinism sanitizer suite.

Three layers guard the repo's determinism contract (DESIGN.md):

* the **static lint pass** — :func:`lint_paths` / :func:`lint_source` and
  the rule registry in :mod:`repro.analysis.rules`, exposed as
  ``repro lint`` on the CLI;
* the **runtime race sanitizer** — :class:`RaceSanitizer`, enabled with
  ``Environment(sanitize=True)``, which flags same-(time, priority) events
  with conflicting shared-state accesses (re-exported from
  :mod:`repro.sim.sanitizer`, where it lives so bottom-layer modules can
  import it without cycles);
* the **tie-break shuffle harness** — ``Environment(tie_break_seed=N)`` or
  the ``REPRO_SHUFFLE_SEED`` environment variable, randomizing the order
  of same-(time, priority) events to surface order dependence.
"""

from ..sim.sanitizer import RaceSanitizer, SanitizerViolation
from .linter import Finding, lint_paths, lint_source, render_findings
from .rules import RULES, Rule, all_rules, register

__all__ = [
    "Finding",
    "RULES",
    "RaceSanitizer",
    "Rule",
    "SanitizerViolation",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
    "render_findings",
]
