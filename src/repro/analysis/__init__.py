"""Static-analysis and determinism sanitizer suite.

Four layers guard the repo's contracts (DESIGN.md §7/§8/§13):

* the **static lint pass** — :func:`lint_paths` / :func:`lint_source` and
  the rule registry in :mod:`repro.analysis.rules`, exposed as
  ``repro lint`` on the CLI. Local rule families: DET (determinism), SIM
  (process-generator hygiene), RES (resource lifecycle over the CFG in
  :mod:`repro.analysis.cfg`). Whole-program families: CTX (ServiceContext
  path contracts, :mod:`repro.analysis.contracts`) and API (RPC interface
  conformance, :mod:`repro.analysis.conformance`);
* the **runtime race sanitizer** — :class:`RaceSanitizer`, enabled with
  ``Environment(sanitize=True)``, which flags same-(time, priority) events
  with conflicting shared-state accesses (re-exported from
  :mod:`repro.sim.sanitizer`, where it lives so bottom-layer modules can
  import it without cycles);
* the **tie-break shuffle harness** — ``Environment(tie_break_seed=N)`` or
  the ``REPRO_SHUFFLE_SEED`` environment variable, randomizing the order
  of same-(time, priority) events to surface order dependence.
"""

from ..sim.sanitizer import RaceSanitizer, SanitizerViolation
from . import conformance as _conformance  # noqa: F401  (registers API0xx)
from . import contracts as _contracts  # noqa: F401  (registers CTX0xx)
from . import lifecycle as _lifecycle  # noqa: F401  (registers RES0xx)
from .cfg import Cfg, build_cfg
from .linter import (Finding, apply_baseline, format_baseline, lint_paths,
                     lint_source, load_baseline, render_findings,
                     render_json, render_sarif)
from .rules import RULES, ProgramRule, Rule, all_rules, register

__all__ = [
    "Cfg",
    "Finding",
    "ProgramRule",
    "RULES",
    "RaceSanitizer",
    "Rule",
    "SanitizerViolation",
    "all_rules",
    "apply_baseline",
    "build_cfg",
    "format_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "render_findings",
    "render_json",
    "render_sarif",
]
