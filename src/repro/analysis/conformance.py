"""API0xx — RPC interface conformance (whole-program).

A :class:`~repro.net.rpc.RemoteRef` is an untyped proxy: the method name
travels as a string and nothing checks it until the server raises at
dispatch time, three simulated hops from the call site. This pass collects
every export table the program declares and checks every
``endpoint.call(ref, "method", ...)`` site against the union of them:

=======  ==================================================================
API001   the called selector is not exported by any interface in the
         program
API002   no exported method with that name accepts the call's arity
API003   an ``export(..., methods=...)`` tuple names a method the
         exported class does not define
=======  ==================================================================

What resolves (DESIGN §13 lists the escape hatches):

* ``export(self, ...)`` → the enclosing class;
* ``export(ClassName(...), ...)`` and ``x = ClassName(...); export(x,``
  → the class definition, looked up program-wide by name;
* ``methods=`` as a literal tuple/list of strings or a (``self.``)
  ``NAME`` resolved against the exported class's class attributes;
* call sites: any ``<expr>.call(ref, "selector", ...)`` whose second
  positional argument is a string literal.

Because refs are untyped, checks use *union* semantics — a call conforms
when **any** exported interface accepts it — and the whole pass stands
down when the program declares no exports (a snippet or a pure-client
tree has no interface universe to check against). Classes whose bases
cannot all be resolved in the program are treated as open interfaces:
their unknown inherited methods disable API001 for the whole run rather
than risk inventing a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .rules import ProgramRule, register

__all__ = ["collect_interfaces"]

#: kwargs consumed by RpcEndpoint.call itself, never forwarded.
_INFRA_KWARGS = frozenset({"timeout", "kind", "trace_parent"})


class MethodSig:
    """Callable shape of one remote method (``self`` excluded)."""

    __slots__ = ("name", "min_args", "max_args", "param_names", "has_kwargs")

    def __init__(self, func: ast.AST):
        self.name = func.name
        args = func.args
        positional = list(args.posonlyargs) + list(args.args)
        if positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        defaults = len(args.defaults)
        self.min_args = len(positional) - defaults
        self.max_args = None if args.vararg else len(positional)
        self.param_names = {a.arg for a in positional} \
            | {a.arg for a in args.kwonlyargs}
        self.has_kwargs = args.kwarg is not None

    def accepts(self, n_positional: int, kwarg_names) -> bool:
        kwarg_names = set(kwarg_names)
        if not self.has_kwargs and not kwarg_names <= self.param_names:
            return False
        needed = n_positional + len(kwarg_names & self.param_names)
        if needed < self.min_args:
            return False
        if self.max_args is not None and n_positional > self.max_args:
            return False
        return True


class Interface:
    """One export site: the class, its selector set, and its signatures."""

    __slots__ = ("class_name", "selectors", "signatures", "open_base",
                 "module_path", "line")

    def __init__(self, class_name: str, selectors, signatures: dict,
                 open_base: bool, module_path: str, line: int):
        self.class_name = class_name
        self.selectors = selectors        # None = every public method
        self.signatures = signatures      # name -> MethodSig
        self.open_base = open_base
        self.module_path = module_path
        self.line = line

    def exported_names(self):
        if self.selectors is not None:
            return set(self.selectors)
        return set(self.signatures)


def _class_table(modules) -> dict:
    table: dict[str, tuple] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                table.setdefault(node.name, (node, module))
    return table


def _class_signatures(cls: ast.ClassDef, table: dict) -> tuple:
    """``(signatures, open_base)`` walking resolvable bases depth-first."""
    signatures: dict[str, MethodSig] = {}
    open_base = False
    seen = set()

    def visit(node: ast.ClassDef) -> None:
        nonlocal open_base
        if node.name in seen:
            return
        seen.add(node.name)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and not stmt.name.startswith("_"):
                signatures.setdefault(stmt.name, MethodSig(stmt))
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None)
            if name in (None, "object"):
                open_base = open_base or name is None
                continue
            if name in table:
                visit(table[name][0])
            else:
                open_base = True

    visit(cls)
    return signatures, open_base


def _string_tuple(expr: ast.AST) -> Optional[tuple]:
    if isinstance(expr, (ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in expr.elts):
        return tuple(e.value for e in expr.elts)
    return None


def _class_attr_tuple(cls: ast.ClassDef, name: str) -> Optional[tuple]:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name
                for t in stmt.targets):
            return _string_tuple(stmt.value)
    return None


def _resolve_exported_class(obj: ast.AST, enclosing_class, func,
                            table: dict) -> Optional[ast.ClassDef]:
    if isinstance(obj, ast.Name):
        if obj.id == "self":
            return enclosing_class
        # A local `slot = SlotClass(...)` binding earlier in the function.
        if func is not None:
            for node in ast.walk(func):
                if (isinstance(node, ast.Assign)
                        and any(isinstance(t, ast.Name) and t.id == obj.id
                                for t in node.targets)
                        and isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Name)
                        and node.value.func.id in table):
                    return table[node.value.func.id][0]
        return None
    if isinstance(obj, ast.Call) and isinstance(obj.func, ast.Name) \
            and obj.func.id in table:
        return table[obj.func.id][0]
    return None


def _resolve_selectors(call: ast.Call, cls: ast.ClassDef) -> tuple:
    """``(selectors, resolved)`` from the ``methods=`` argument."""
    methods_arg = None
    if len(call.args) >= 3:
        methods_arg = call.args[2]
    for kw in call.keywords:
        if kw.arg == "methods":
            methods_arg = kw.value
    if methods_arg is None or (isinstance(methods_arg, ast.Constant)
                               and methods_arg.value is None):
        return None, True
    literal = _string_tuple(methods_arg)
    if literal is not None:
        return literal, True
    name = None
    if isinstance(methods_arg, ast.Attribute):
        name = methods_arg.attr
    elif isinstance(methods_arg, ast.Name):
        name = methods_arg.id
    if name is not None and cls is not None:
        attr = _class_attr_tuple(cls, name)
        if attr is not None:
            return attr, True
    return None, False


def collect_interfaces(modules) -> list:
    """Every resolvable ``export(...)`` site in the program."""
    table = _class_table(modules)
    interfaces: list = []
    for module in modules:
        # Walk with enclosing class/function tracking.
        stack: list[tuple] = [(module.tree, None, None)]
        while stack:
            node, enclosing_class, enclosing_func = stack.pop()
            for child in ast.iter_child_nodes(node):
                cls = enclosing_class
                func = enclosing_func
                if isinstance(child, ast.ClassDef):
                    cls, func = child, None
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    func = child
                stack.append((child, cls, func))
                if not (isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr == "export"
                        and child.args):
                    continue
                exported = _resolve_exported_class(
                    child.args[0], enclosing_class, enclosing_func, table)
                if exported is None:
                    continue
                selectors, resolved = _resolve_selectors(child, exported)
                if not resolved:
                    selectors = None  # unreadable restriction: assume open
                signatures, open_base = _class_signatures(exported, table)
                interfaces.append(Interface(
                    exported.name, selectors, signatures, open_base,
                    module.path, child.lineno))
    interfaces.sort(key=lambda i: (i.module_path, i.line))
    return interfaces


def _call_sites(modules) -> Iterator[tuple]:
    """``(module, call, selector, n_positional, kwarg_names)`` for every
    ``<expr>.call(ref, "selector", ...)`` site."""
    for module in modules:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "call"
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)):
                continue
            if any(isinstance(a, ast.Starred) for a in node.args):
                continue  # *args call: arity is dynamic
            kwarg_names = [kw.arg for kw in node.keywords
                           if kw.arg is not None
                           and kw.arg not in _INFRA_KWARGS]
            if any(kw.arg is None for kw in node.keywords):
                continue  # **kwargs call: names are dynamic
            yield (module, node, node.args[1].value,
                   len(node.args) - 2, kwarg_names)


@register
class UnknownSelectorRule(ProgramRule):
    rule_id = "API001"
    summary = "RPC call to a selector no exported interface declares"
    hint = ("the server will raise AttributeError at dispatch time; "
            "export the method or fix the selector string")

    def check_program(self, modules) -> Iterator[tuple]:
        interfaces = collect_interfaces(modules)
        if not interfaces or any(i.open_base and i.selectors is None
                                 for i in interfaces):
            return
        universe = set()
        for iface in interfaces:
            universe |= iface.exported_names()
        for module, call, selector, _n, _kw in _call_sites(modules):
            if selector not in universe:
                yield (module.path, call.lineno,
                       f"selector {selector!r} is not exported by any "
                       f"interface in the program")


@register
class ArityMismatchRule(ProgramRule):
    rule_id = "API002"
    summary = "RPC call arity matches no exported method of that name"
    hint = ("the server will raise TypeError at dispatch time; compare "
            "the call with the exported method's signature")

    def check_program(self, modules) -> Iterator[tuple]:
        interfaces = collect_interfaces(modules)
        if not interfaces:
            return
        for module, call, selector, n_pos, kwarg_names in \
                _call_sites(modules):
            candidates = [
                iface.signatures[selector] for iface in interfaces
                if selector in iface.exported_names()
                and selector in iface.signatures]
            if not candidates:
                continue  # API001's department
            if any(sig.accepts(n_pos, kwarg_names) for sig in candidates):
                continue
            shapes = sorted({
                f"{sig.min_args}"
                if sig.max_args == sig.min_args else
                f"{sig.min_args}..{'*' if sig.max_args is None else sig.max_args}"
                for sig in candidates})
            yield (module.path, call.lineno,
                   f"call passes {n_pos} positional arg(s) to {selector!r} "
                   f"but exported signatures take {', '.join(shapes)}")


@register
class PhantomExportRule(ProgramRule):
    rule_id = "API003"
    summary = "export restricts to a method the class does not define"
    hint = ("the selector can never dispatch — remove it from methods= "
            "or implement it on the exported class")

    def check_program(self, modules) -> Iterator[tuple]:
        for iface in collect_interfaces(modules):
            if iface.selectors is None or iface.open_base:
                continue
            for selector in iface.selectors:
                if selector not in iface.signatures:
                    yield (iface.module_path, iface.line,
                           f"methods= names {selector!r} but class "
                           f"{iface.class_name} does not define it")
