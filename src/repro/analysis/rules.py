"""Determinism lint rules — the rule registry and the stock rules.

Each rule inspects one parsed module (a :class:`ModuleInfo`) and yields
``(line, message)`` pairs; the driver in :mod:`repro.analysis.linter` turns
them into :class:`~repro.analysis.linter.Finding`s, applies pragma
suppressions and renders reports.

The rules encode the repo's determinism contract (DESIGN.md §7/§8):

=======  ==============================================================
DET001   wall-clock use (``time.time``/``datetime.now``/...)
DET002   module-level ``random.*`` instead of a seeded ``random.Random``
DET003   unordered iteration (set/frozenset/dict views) feeding
         scheduling or fan-out calls without ``sorted(...)``
DET004   ``sum()``/``+=`` accumulation over sets (float addition is
         order-sensitive)
DET005   direct ``random.Random(...)`` construction outside the
         sanctioned substream helper (:mod:`repro.util.rng`)
SIM001   broad ``except`` in a generator process body that can swallow
         :class:`~repro.sim.Interrupt` without re-raising
SIM002   ``yield`` of a statically-known non-event in a process
         generator
=======  ==============================================================

Everything here is stdlib-``ast`` based; the analyses are deliberately
shallow (single module, local name inference only) so they stay fast,
dependency-free and predictable — a rule fires only where the hazard is
statically decidable.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

__all__ = ["ModuleInfo", "ProgramRule", "Rule", "RULES", "register",
           "all_rules"]


# ---------------------------------------------------------------------------
# Shared AST helpers


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk descendants without entering nested function/class scopes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _own_nodes_of_stmts(stmts: Iterable[ast.stmt]) -> Iterator[ast.AST]:
    for stmt in stmts:
        yield stmt
        yield from _own_nodes(stmt)


def _attr_name(node: ast.AST) -> Optional[str]:
    """Terminal identifier of a Name or dotted Attribute (``a.b.c`` → c)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ModuleInfo:
    """One parsed module plus the shared facts rules keep re-deriving."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        #: local alias -> imported module name ("import time as t" → t: time)
        self.module_aliases: dict[str, str] = {}
        #: local name -> (module, original name) for "from m import x as y"
        self.from_imports: dict[str, tuple] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module, alias.name)
        self.functions = [node for node in ast.walk(tree)
                          if isinstance(node, (ast.FunctionDef,
                                               ast.AsyncFunctionDef))]

    def aliases_of(self, module: str) -> set:
        return {alias for alias, mod in self.module_aliases.items()
                if mod == module}

    def is_generator(self, func: ast.AST) -> bool:
        return any(isinstance(node, (ast.Yield, ast.YieldFrom))
                   for node in _own_nodes(func))


# ---------------------------------------------------------------------------
# Registry


class Rule:
    """One lint rule. Subclasses set the class attributes and implement
    :meth:`check`, yielding ``(line, message)`` pairs."""

    rule_id: str = ""
    summary: str = ""
    hint: str = ""

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        raise NotImplementedError


class ProgramRule(Rule):
    """A whole-program rule: sees every parsed module at once.

    Subclasses implement :meth:`check_program`, yielding
    ``(path, line, message)`` triples (pragma suppression is still applied
    per file by the driver). The per-module :meth:`check` is a no-op so
    program rules can live in the same registry as local rules.
    """

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        return iter(())

    def check_program(self, modules) -> Iterator[tuple]:
        raise NotImplementedError


RULES: dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule to the registry (keyed by rule id)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls()
    return cls


def all_rules() -> list:
    return [RULES[rule_id] for rule_id in sorted(RULES)]


# ---------------------------------------------------------------------------
# DET001 — wall-clock use


_TIME_FNS = frozenset({
    "time", "monotonic", "perf_counter", "process_time", "time_ns",
    "monotonic_ns", "perf_counter_ns", "process_time_ns", "localtime",
    "gmtime",
})
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


@register
class WallClockRule(Rule):
    rule_id = "DET001"
    summary = "wall-clock read in simulation code"
    hint = ("use simulated time (env.now); benchmarks may opt out with a "
            "file pragma `# repro: allow-file[DET001]`")

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        time_aliases = module.aliases_of("time")
        dt_module_aliases = module.aliases_of("datetime")
        dt_class_aliases = {
            name for name, (mod, orig) in module.from_imports.items()
            if mod == "datetime" and orig in ("datetime", "date")}
        time_fn_names = {
            name for name, (mod, orig) in module.from_imports.items()
            if mod == "time" and orig in _TIME_FNS}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)):
                base, attr = func.value.id, func.attr
                if base in time_aliases and attr in _TIME_FNS:
                    yield node.lineno, f"call to time.{attr}() reads the wall clock"
                elif base in dt_class_aliases and attr in _DATETIME_FNS:
                    yield node.lineno, f"call to datetime.{attr}() reads the wall clock"
            elif (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in dt_module_aliases
                    and func.value.attr in ("datetime", "date")
                    and func.attr in _DATETIME_FNS):
                yield (node.lineno,
                       f"call to datetime.{func.value.attr}.{func.attr}() "
                       f"reads the wall clock")
            elif isinstance(func, ast.Name) and func.id in time_fn_names:
                yield (node.lineno,
                       f"call to {func.id}() (imported from time) reads the "
                       f"wall clock")


# ---------------------------------------------------------------------------
# DET002 — module-level random


@register
class ModuleRandomRule(Rule):
    rule_id = "DET002"
    summary = "module-level random.* shares unseeded global RNG state"
    hint = ("thread a seeded random.Random (or numpy Generator) through "
            "instead of the random module's global stream")

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        random_aliases = module.aliases_of("random")
        for name, (mod, orig) in module.from_imports.items():
            if mod == "random" and orig not in ("Random",):
                # The import itself is the hazard: the bound name *is* the
                # global stream's method.
                for node in ast.walk(module.tree):
                    if (isinstance(node, ast.ImportFrom)
                            and node.module == "random"):
                        for alias in node.names:
                            if alias.name == orig:
                                yield (node.lineno,
                                       f"from random import {orig} binds the "
                                       f"module-global RNG stream")
                break
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in random_aliases
                    and node.func.attr != "Random"):
                yield (node.lineno,
                       f"random.{node.func.attr}() uses the module-global "
                       f"RNG stream")


# ---------------------------------------------------------------------------
# set-ish expression inference (shared by DET003/DET004)


_DICT_VIEW_ATTRS = frozenset({"keys", "values", "items"})
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _setish_expr(expr: ast.AST, setish_names: set,
                 include_views: bool) -> bool:
    """Is ``expr`` statically an unordered collection?

    ``include_views`` additionally treats zero-argument ``.keys()`` /
    ``.values()`` / ``.items()`` calls as unordered (their order is
    insertion order — deterministic per run, but implicit).
    """
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in setish_names
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (include_views and isinstance(func, ast.Attribute)
                and func.attr in _DICT_VIEW_ATTRS
                and not expr.args and not expr.keywords):
            return True
        # list()/tuple()/iter() preserve whatever (non-)order came in.
        if (isinstance(func, ast.Name) and func.id in ("list", "tuple", "iter")
                and len(expr.args) == 1):
            return _setish_expr(expr.args[0], setish_names, include_views)
        if isinstance(func, ast.Name) and func.id == "enumerate" and expr.args:
            return _setish_expr(expr.args[0], setish_names, include_views)
        # s.union(...) / s.intersection(...) and friends stay sets.
        if (isinstance(func, ast.Attribute)
                and func.attr in ("union", "intersection", "difference",
                                  "symmetric_difference", "copy")
                and _setish_expr(func.value, setish_names, include_views)):
            return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_BINOPS):
        return (_setish_expr(expr.left, setish_names, include_views)
                or _setish_expr(expr.right, setish_names, include_views))
    return False


def _setish_names_in(func: ast.AST, include_views: bool) -> set:
    """Local names assigned from set-producing expressions, to a fixpoint
    over two passes (enough for the chained-assignment cases that occur in
    practice)."""
    names: set = set()
    for _ in range(2):
        before = len(names)
        for node in _own_nodes(func):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and _setish_expr(node.value, names, include_views)):
                names.add(node.targets[0].id)
        if len(names) == before:
            break
    return names


def _is_sorted_call(expr: ast.AST) -> bool:
    return (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id == "sorted")


_FANOUT_ATTRS = frozenset({
    "process", "schedule", "_schedule", "timeout", "succeed", "fail",
    "interrupt", "notify", "call", "multicast", "send",
})


def _has_fanout_call(nodes: Iterable[ast.AST]) -> Optional[str]:
    """First scheduling/fan-out call among ``nodes``, or ``None``."""
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _FANOUT_ATTRS:
                return func.attr
            # Event-callback registration: something.callbacks.append(...)
            if (func.attr == "append" and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "callbacks"):
                return "callbacks.append"
    return None


# ---------------------------------------------------------------------------
# DET003 — unordered iteration feeding scheduling / fan-out


@register
class UnorderedFanoutRule(Rule):
    rule_id = "DET003"
    summary = "unordered iteration feeds scheduling/fan-out"
    hint = "iterate over sorted(...) so the fan-out order is explicit"

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        for func in module.functions:
            setish = _setish_names_in(func, include_views=True)
            for node in _own_nodes(func):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if _is_sorted_call(node.iter):
                        continue
                    if not _setish_expr(node.iter, setish, include_views=True):
                        continue
                    fanout = _has_fanout_call(_own_nodes_of_stmts(node.body))
                    if fanout:
                        yield (node.lineno,
                               f"iteration over an unordered collection "
                               f"drives {fanout}(); scheduling order is "
                               f"implicit")
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp)):
                    gen = node.generators[0]
                    if _is_sorted_call(gen.iter):
                        continue
                    if not _setish_expr(gen.iter, setish, include_views=True):
                        continue
                    fanout = _has_fanout_call(ast.walk(node.elt))
                    if fanout:
                        yield (node.lineno,
                               f"comprehension over an unordered collection "
                               f"drives {fanout}(); scheduling order is "
                               f"implicit")


# ---------------------------------------------------------------------------
# DET004 — order-sensitive accumulation over sets


@register
class UnorderedAccumulationRule(Rule):
    rule_id = "DET004"
    summary = "accumulation over a set (float addition is order-sensitive)"
    hint = "accumulate over sorted(...) so the reduction order is fixed"

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        for func in module.functions:
            setish = _setish_names_in(func, include_views=False)
            for node in _own_nodes(func):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "sum" and node.args):
                    arg = node.args[0]
                    if _setish_expr(arg, setish, include_views=False):
                        yield (node.lineno,
                               "sum() over a set: the reduction order is "
                               "whatever the hash layout gives")
                    elif (isinstance(arg, (ast.GeneratorExp, ast.ListComp))
                            and _setish_expr(arg.generators[0].iter, setish,
                                             include_views=False)
                            and not _is_sorted_call(arg.generators[0].iter)):
                        yield (node.lineno,
                               "sum() over a set-driven comprehension: the "
                               "reduction order is whatever the hash layout "
                               "gives")
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if (_setish_expr(node.iter, setish, include_views=False)
                            and not _is_sorted_call(node.iter)
                            and any(isinstance(sub, ast.AugAssign)
                                    and isinstance(sub.op, ast.Add)
                                    for sub in _own_nodes_of_stmts(node.body))):
                        yield (node.lineno,
                               "+= accumulation while iterating a set: the "
                               "reduction order is whatever the hash layout "
                               "gives")


# ---------------------------------------------------------------------------
# DET005 — ad-hoc random.Random construction


@register
class AdHocRandomRule(Rule):
    rule_id = "DET005"
    summary = "direct random.Random construction bypasses the substream scheme"
    hint = ("derive generators with repro.util.rng.substream(seed, *names) "
            "so streams are domain-separated; the sim kernel's tie-break "
            "RNG is the sanctioned exception (`# repro: allow[DET005]`)")

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        random_aliases = module.aliases_of("random")
        # "from random import Random [as R]" bindings.
        class_names = {
            name for name, (mod, orig) in module.from_imports.items()
            if mod == "random" and orig == "Random"}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in random_aliases
                    and func.attr == "Random"):
                yield (node.lineno,
                       f"{func.value.id}.Random(...) creates an ad-hoc "
                       f"stream outside the substream scheme")
            elif isinstance(func, ast.Name) and func.id in class_names:
                yield (node.lineno,
                       f"{func.id}(...) creates an ad-hoc stream outside "
                       f"the substream scheme")


# ---------------------------------------------------------------------------
# SIM001 — broad except swallowing Interrupt in process bodies


def _mentions_interrupt(type_node: Optional[ast.AST]) -> bool:
    if type_node is None:
        return False
    nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
             else [type_node])
    return any((_attr_name(node) or "").endswith("Interrupt")
               for node in nodes)


def _is_broad(type_node: Optional[ast.AST]) -> bool:
    if type_node is None:
        return True  # bare except
    nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
             else [type_node])
    return any(_attr_name(node) in ("Exception", "BaseException")
               for node in nodes)


@register
class BroadExceptInProcessRule(Rule):
    rule_id = "SIM001"
    summary = "broad except around a yield can swallow Interrupt"
    hint = ("add `except Interrupt: raise` above it (or re-raise inside), "
            "or catch the specific failure types instead")

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        for func in module.functions:
            if not module.is_generator(func):
                continue
            for node in _own_nodes(func):
                if not isinstance(node, ast.Try):
                    continue
                # Interrupts surface at yield points: a try block without a
                # yield cannot swallow one.
                if not any(isinstance(sub, (ast.Yield, ast.YieldFrom))
                           for sub in _own_nodes_of_stmts(node.body)):
                    continue
                interrupt_handled = False
                for handler in node.handlers:
                    if _mentions_interrupt(handler.type):
                        interrupt_handled = True
                        continue
                    if not _is_broad(handler.type) or interrupt_handled:
                        continue
                    reraises = any(
                        isinstance(sub, ast.Raise) and sub.exc is None
                        for sub in _own_nodes_of_stmts(handler.body))
                    if not reraises:
                        yield (handler.lineno,
                               "broad except around a yield in a process "
                               "generator swallows Interrupt/deadline "
                               "signals")


# ---------------------------------------------------------------------------
# SIM002 — yield of a statically-known non-event


_EVENTISH_ATTRS = frozenset({
    "timeout", "event", "process", "all_of", "any_of", "call", "request",
    "exert", "get", "put", "take", "write",
})

_LITERAL_NODES = (ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set,
                  ast.JoinedStr)


def _is_eventish_yield(node: ast.AST) -> bool:
    if isinstance(node, ast.YieldFrom):
        return True
    if isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
        func = node.value.func
        return isinstance(func, ast.Attribute) and func.attr in _EVENTISH_ATTRS
    return False


@register
class YieldNonEventRule(Rule):
    rule_id = "SIM002"
    summary = "yield of a non-Event in a process generator"
    hint = ("a process generator must yield Events (env.timeout(...), "
            "endpoint.call(...)); return data instead of yielding it")

    def check(self, module: ModuleInfo) -> Iterator[tuple]:
        for func in module.functions:
            yields = [node for node in _own_nodes(func)
                      if isinstance(node, (ast.Yield, ast.YieldFrom))]
            # Only generators that demonstrably talk to the kernel are
            # process bodies; plain data generators may yield anything.
            if not any(_is_eventish_yield(node) for node in yields):
                continue
            for node in yields:
                if not isinstance(node, ast.Yield):
                    continue
                if node.value is None:
                    yield (node.lineno,
                           "bare yield in a process generator (yields None, "
                           "not an Event)")
                elif isinstance(node.value, _LITERAL_NODES):
                    yield (node.lineno,
                           "yield of a literal in a process generator — the "
                           "kernel only accepts Events")
