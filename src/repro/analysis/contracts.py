"""CTX0xx — ServiceContext path-contract dataflow (whole-program).

The federation's hops communicate through path-addressed
:class:`~repro.sorcer.context.ServiceContext` slots ("arg/name",
"trace/parent", ...). The contract between a writer and a reader is just a
string — nothing checks it until the value comes back ``None`` three hops
later. This pass harvests every statically-resolvable path the program
reads or writes into a contract registry and cross-checks the two sides:

=======  ==================================================================
CTX001   a read of a path no statement in the program can ever write
CTX002   a write to a path no statement in the program ever reads
CTX003   a read path that is an edit-distance-1 near miss of a path the
         program does write — almost certainly a typo
CTX004   a raw string literal for a path that has a declared ``*_PATH``
         constant — the literal silently forks the contract
=======  ==================================================================

What resolves (everything else is skipped, see DESIGN §13):

* string literals containing ``/`` passed to ``put_value`` /
  ``put_in_value`` / ``put_out_value`` / ``get_value`` / ``has_path``,
  and to direct ``ctx._data[...]`` / ``ctx._data.get(...)`` access;
* names whose terminal identifier matches a module-level ``*_PATH``
  string constant (resolved program-wide by name);
* f-strings whose literal head contains ``/`` — harvested as a *prefix*
  (``f"arg/{key}"`` writes the whole ``arg/`` subtree).

A prefix write satisfies every read under it and vice versa. Reads/writes
through variables, attributes like ``pipe.to_path``, or f-strings with no
literal head are invisible to the pass — it can under-report, never
fabricate a contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .rules import ProgramRule, register

__all__ = ["ContractRegistry", "harvest"]

_PUT_METHODS = frozenset({"put_value", "put_in_value", "put_out_value"})
_GET_METHODS = frozenset({"get_value", "has_path"})


class PathUse:
    """One statically-resolved read or write of a context path."""

    __slots__ = ("path", "is_prefix", "module_path", "line", "raw_literal")

    def __init__(self, path: str, is_prefix: bool, module_path: str,
                 line: int, raw_literal: bool):
        self.path = path
        self.is_prefix = is_prefix
        self.module_path = module_path
        self.line = line
        self.raw_literal = raw_literal


class ContractRegistry:
    """All harvested path uses plus the declared ``*_PATH`` constants."""

    def __init__(self):
        self.reads: list = []
        self.writes: list = []
        #: constant name -> (value, module_path, line)
        self.constants: dict[str, tuple] = {}


def _terminal_name(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _resolve_path(expr: ast.AST, constants: dict) -> Optional[tuple]:
    """``(path, is_prefix, raw_literal)`` or None when unresolvable."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        text = expr.value
        if "*" in text:
            head = text.split("*", 1)[0]
            return (head, True, False) if "/" in head else None
        return (text, False, True) if "/" in text else None
    name = _terminal_name(expr)
    if name is not None and name in constants:
        return constants[name][0], False, False
    if isinstance(expr, ast.JoinedStr) and expr.values:
        head = expr.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str) \
                and "/" in head.value:
            return head.value, True, False
        return None
    return None


def _harvest_constants(modules, registry: ContractRegistry) -> None:
    for module in modules:
        for node in module.tree.body:
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id.endswith("_PATH")
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                    and "/" in node.value.value):
                registry.constants[node.targets[0].id] = (
                    node.value.value, module.path, node.lineno)


def _harvest_uses(module, registry: ContractRegistry) -> None:
    constants = registry.constants

    def record(side: list, expr: ast.AST, line: int) -> None:
        resolved = _resolve_path(expr, constants)
        if resolved is None:
            return
        path, is_prefix, raw = resolved
        side.append(PathUse(path, is_prefix, module.path, line, raw))

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            method = None
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
            if method in _PUT_METHODS and 1 <= len(node.args) <= 2:
                record(registry.writes, node.args[0], node.lineno)
            elif method in _GET_METHODS and 1 <= len(node.args) <= 2:
                record(registry.reads, node.args[0], node.lineno)
            elif (method == "get" and isinstance(node.func.value,
                                                 ast.Attribute)
                    and node.func.value.attr == "_data"
                    and 1 <= len(node.args) <= 2):
                record(registry.reads, node.args[0], node.lineno)
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Attribute) \
                and node.value.attr == "_data":
            side = (registry.writes if isinstance(node.ctx, ast.Store)
                    else registry.reads)
            record(side, node.slice, node.lineno)


def harvest(modules) -> ContractRegistry:
    """Build the program-wide contract registry from parsed modules."""
    registry = ContractRegistry()
    _harvest_constants(modules, registry)
    for module in modules:
        _harvest_uses(module, registry)
    return registry


def _covered(use, others) -> bool:
    """Does any use on the *other* side reach the same slot(s)?"""
    for other in others:
        if use.is_prefix and other.is_prefix:
            if use.path.startswith(other.path) \
                    or other.path.startswith(use.path):
                return True
        elif use.is_prefix:
            if other.path.startswith(use.path):
                return True
        elif other.is_prefix:
            if use.path.startswith(other.path):
                return True
        elif use.path == other.path:
            return True
    return False


def _edit_distance_at_most_one(a: str, b: str) -> bool:
    if a == b:
        return False
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) > len(b):
        a, b = b, a
    # b is the longer (or equal-length) string; one pass suffices.
    i = j = 0
    edited = False
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            i += 1
            j += 1
            continue
        if edited:
            return False
        edited = True
        if len(a) == len(b):
            i += 1
        j += 1
    return True


@register
class OrphanReadRule(ProgramRule):
    rule_id = "CTX001"
    summary = "context path read with no possible writer"
    hint = ("no statement in the linted program writes this path — the "
            "read can only ever see its default; if the writer is outside "
            "the linted tree, suppress with `# repro: allow[CTX001]`")

    def check_program(self, modules) -> Iterator[tuple]:
        registry = harvest(modules)
        written = {use.path for use in registry.writes if not use.is_prefix}
        for use in registry.reads:
            if _covered(use, registry.writes):
                continue
            if not use.is_prefix and any(
                    _edit_distance_at_most_one(use.path, path)
                    for path in written):
                continue  # CTX003 reports the near-miss more precisely
            what = (f"prefix {use.path!r}" if use.is_prefix
                    else repr(use.path))
            yield (use.module_path, use.line,
                   f"context path {what} is read but never written")


@register
class DeadWriteRule(ProgramRule):
    rule_id = "CTX002"
    summary = "context path written but never read"
    hint = ("no statement in the linted program reads this path back — "
            "either the reader was renamed or the write is dead; readers "
            "outside the linted tree need `# repro: allow[CTX002]`")

    def check_program(self, modules) -> Iterator[tuple]:
        registry = harvest(modules)
        for use in registry.writes:
            if use.is_prefix:
                continue  # a subtree write: reads are checked per-path
            if _covered(use, registry.reads):
                continue
            yield (use.module_path, use.line,
                   f"context path {use.path!r} is written but never read")


@register
class PathTypoRule(ProgramRule):
    rule_id = "CTX003"
    summary = "context path is an edit-distance-1 near miss of a known path"
    hint = "one side of the contract is typo'd — unify the two spellings"

    def check_program(self, modules) -> Iterator[tuple]:
        registry = harvest(modules)
        written = sorted({use.path for use in registry.writes
                          if not use.is_prefix})
        for use in registry.reads:
            if use.is_prefix or _covered(use, registry.writes):
                continue
            near = [path for path in written
                    if _edit_distance_at_most_one(use.path, path)]
            if near:
                yield (use.module_path, use.line,
                       f"context path {use.path!r} is never written, but "
                       f"{near[0]!r} is — likely a typo")


@register
class RawLiteralRule(ProgramRule):
    rule_id = "CTX004"
    summary = "raw path literal bypasses the declared constant"
    hint = ("import and use the *_PATH constant so renames stay "
            "one-line changes")

    def check_program(self, modules) -> Iterator[tuple]:
        registry = harvest(modules)
        by_value = {value: name for name, (value, _, _)
                    in sorted(registry.constants.items())}
        for use in registry.reads + registry.writes:
            if not use.raw_literal:
                continue
            name = by_value.get(use.path)
            if name is not None:
                yield (use.module_path, use.line,
                       f"raw literal {use.path!r} bypasses the declared "
                       f"constant {name}")
