"""Parametric sensor grids for the scalability/overhead experiments.

Builds N temperature sensors either as SenSORCER services (ESPs, optionally
wired under a balanced CSP tree) or as bare direct-IP nodes, so the
benchmarks compare identical fleets across architectures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..sim import Environment
from ..net import FixedLatency, Host, LanLatency, Network
from ..jini import LookupService, lookup_discovery
from ..sensors import PhysicalEnvironment, TemperatureProbe
from ..sorcer import Jobber, Strategy
from ..core import CompositeSensorProvider, ElementarySensorProvider
from ..baselines import DirectSensorNode

__all__ = ["SensorGrid", "build_sensorcer_grid", "build_direct_grid",
           "grid_locations", "probe_location", "seed_locator_discovery"]

SPACING = 10.0


def grid_locations(n: int) -> list:
    """Deterministic sensor placements on a square-ish lattice."""
    side = int(np.ceil(np.sqrt(n)))
    return [((i % side) * SPACING, (i // side) * SPACING) for i in range(n)]


def probe_location(index: int) -> tuple:
    """Placement of probe ``index`` — the value
    ``grid_locations(index + 1)[index]`` would have, in O(1) instead of
    building the whole prefix lattice (which made fleet construction
    quadratic in N)."""
    side = int(np.ceil(np.sqrt(index + 1)))
    return ((index % side) * SPACING, (index // side) * SPACING)


def _probe(env, world, index, seed):
    return TemperatureProbe(
        env, f"probe-{index}", world, probe_location(index),
        rng=np.random.default_rng(seed + index), sensing_noise=0.0,
        read_latency=0.01)


@dataclass
class SensorGrid:
    env: Environment
    net: Network
    world: PhysicalEnvironment
    lus: Optional[LookupService]
    sensors: list                 # ESPs or DirectSensorNodes
    locations: list
    root: Optional[CompositeSensorProvider] = None
    composites: list = field(default_factory=list)

    def settle(self, duration: float = 6.0) -> None:
        self.env.run(until=self.env.now + duration)

    def ground_truth_mean(self) -> float:
        return self.world.mean_over("temperature", self.locations,
                                    self.env.now)


def _base(seed: int, fixed_latency: Optional[float]):
    env = Environment()
    rng = np.random.default_rng(seed)
    latency = (FixedLatency(fixed_latency) if fixed_latency is not None
               else LanLatency(rng))
    net = Network(env, rng=rng, latency=latency)
    world = PhysicalEnvironment(seed=seed)
    return env, rng, net, world


def seed_locator_discovery(host: Host, lus_host: str = "lus-host") -> Host:
    """Put a host on unicast locator discovery (Jini's ``LookupLocator``):
    it probes the named LUS host directly instead of multicasting on the
    discovery group. Must run before anything else touches the host's
    shared :class:`~repro.jini.LookupDiscovery`. Returns the host."""
    lookup_discovery(host, probe_count=0).add_locator(lus_host)
    return host


def build_sensorcer_grid(n_sensors: int, seed: int = 11,
                         tree_fanout: Optional[int] = None,
                         strategy: Strategy = Strategy.PARALLEL,
                         sample_interval: float = 1.0,
                         fixed_latency: Optional[float] = None,
                         discovery: str = "multicast") -> SensorGrid:
    """N ESPs under one root composite.

    ``tree_fanout=None`` puts every sensor directly under the root (flat);
    otherwise a balanced tree of composites with the given fanout is built
    (each internal composite on its own host, mirroring subnet gateways).

    ``discovery`` selects how service hosts find the LUS: ``"multicast"``
    is the default protocol (every starting host multicasts probe rounds
    on the discovery group — with one host per sensor that is O(N^2)
    probe deliveries during fleet build), ``"locator"`` is Jini's unicast
    ``LookupLocator`` configuration (each host probes the known LUS host
    directly, O(N) build traffic — what a real large deployment uses, and
    what makes the 16k-sensor scale experiments tractable).
    """
    if discovery not in ("multicast", "locator"):
        raise ValueError(f"unknown discovery mode {discovery!r}")
    env, rng, net, world = _base(seed, fixed_latency)
    lus = LookupService(Host(net, "lus-host"))
    lus.start()

    def make_host(name: str) -> Host:
        host = Host(net, name)
        if discovery == "locator":
            seed_locator_discovery(host)
        return host

    Jobber(make_host("jobber-host")).start()
    locations = grid_locations(n_sensors)
    sensors = []
    for index in range(n_sensors):
        name = f"Sensor-{index:03d}"
        esp = ElementarySensorProvider(
            make_host(f"esp-{index}"), name,
            _probe(env, world, index, seed),
            sample_interval=sample_interval)
        esp.start()
        sensors.append(esp)

    composites: list = []

    def make_composite(name: str) -> CompositeSensorProvider:
        csp = CompositeSensorProvider(make_host(f"{name}-host"), name,
                                      strategy=strategy)
        csp.start()
        composites.append(csp)
        return csp

    root = make_composite("Root")
    if tree_fanout is None:
        for esp in sensors:
            root.add_child(esp.service_id, esp.name)
    else:
        # Bottom-up balanced tree: group leaves into composites of
        # `tree_fanout`, then group those, until one layer fits the root.
        layer = [(esp.service_id, esp.name) for esp in sensors]
        level = 0
        while len(layer) > tree_fanout:
            next_layer = []
            for g, start in enumerate(range(0, len(layer), tree_fanout)):
                group = layer[start:start + tree_fanout]
                if len(group) == 1:
                    next_layer.append(group[0])
                    continue
                csp = make_composite(f"Group-L{level}-{g}")
                for service_id, name in group:
                    csp.add_child(service_id, name)
                next_layer.append((csp.service_id, csp.name))
            layer = next_layer
            level += 1
        for service_id, name in layer:
            root.add_child(service_id, name)
    return SensorGrid(env=env, net=net, world=world, lus=lus,
                      sensors=sensors, locations=locations, root=root,
                      composites=composites)


def build_direct_grid(n_sensors: int, seed: int = 11,
                      fixed_latency: Optional[float] = None) -> SensorGrid:
    """N bare direct-IP sensor nodes (no registry, no services)."""
    env, rng, net, world = _base(seed, fixed_latency)
    locations = grid_locations(n_sensors)
    sensors = []
    for index in range(n_sensors):
        host = Host(net, f"node-{index}")
        sensors.append(DirectSensorNode(host, _probe(env, world, index, seed)))
    return SensorGrid(env=env, net=net, world=world, lus=None,
                      sensors=sensors, locations=locations)
