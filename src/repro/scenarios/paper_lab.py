"""The SORCER-Lab deployment of the paper's §VI experiment (Fig 2).

Builds, on one simulated network:

* Jini infrastructure — lookup service, transaction manager, event mailbox,
  lease renewal service, lookup discovery service;
* Rio provisioning — two cybernodes and one provision monitor;
* four elementary sensor services, each wrapping the temperature probe of
  its own Sun SPOT (Neem / Jade / Coral / Diamond, like the paper);
* one composite sensor service ("Composite-Service");
* one SenSORCER façade.

Everything is returned in a :class:`PaperLab` so tests, examples and
benchmarks drive the very same deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sim import Environment
from ..net import Host, LanLatency, Network
from ..jini import (
    EventMailbox,
    LeaseRenewalService,
    LookupDiscoveryService,
    LookupService,
    Name,
    TransactionManager,
)
from ..rio import Cybernode, ProvisionMonitor, QosCapability
from ..sensors import PhysicalEnvironment, SunSpotDevice, SunSpotTemperatureProbe
from ..sorcer import Jobber, join_service
from ..core import (
    CompositeSensorProvider,
    ElementarySensorProvider,
    SensorBrowser,
    SensorcerFacade,
)
from ..jini.entries import Location

__all__ = ["PaperLab", "build_paper_lab", "SENSOR_NAMES"]

#: The four Sun SPOT sensors of Fig 2.
SENSOR_NAMES = ("Neem-Sensor", "Jade-Sensor", "Coral-Sensor", "Diamond-Sensor")

#: Where each SPOT sits in the (synthetic) lab, metres from the door.
SENSOR_LOCATIONS = {
    "Neem-Sensor": (0.0, 0.0),
    "Jade-Sensor": (8.0, 2.0),
    "Coral-Sensor": (3.0, 9.0),
    "Diamond-Sensor": (12.0, 7.0),
}


@dataclass
class PaperLab:
    env: Environment
    net: Network
    world: PhysicalEnvironment
    rng: np.random.Generator
    lus: LookupService
    txn_manager: TransactionManager
    mailbox: EventMailbox
    lease_renewal: LeaseRenewalService
    discovery_service: LookupDiscoveryService
    monitor: ProvisionMonitor
    cybernodes: list
    jobber: Jobber
    sensors: dict
    devices: dict
    composite: CompositeSensorProvider
    facade: SensorcerFacade
    browser: SensorBrowser
    hosts: dict
    health: object  # HealthMonitor with the stock SLO set installed

    def settle(self, duration: float = 5.0) -> None:
        """Run long enough for discovery/join to converge."""
        self.env.run(until=self.env.now + duration)

    def sensor_locations(self, names=None) -> list:
        names = names if names is not None else list(self.sensors)
        return [SENSOR_LOCATIONS[name] for name in names]

    def ground_truth_mean(self, names, t: Optional[float] = None) -> float:
        """Environment-truth average temperature across named sensors."""
        at = t if t is not None else self.env.now
        return self.world.mean_over("temperature",
                                    self.sensor_locations(names), at)


def build_paper_lab(seed: int = 2009, sample_interval: float = 1.0,
                    sensor_names=SENSOR_NAMES) -> PaperLab:
    env = Environment()
    rng = np.random.default_rng(seed)
    net = Network(env, rng=rng, latency=LanLatency(rng))
    world = PhysicalEnvironment(seed=seed)
    hosts: dict = {}

    def host(name: str) -> Host:
        hosts[name] = Host(net, name)
        return hosts[name]

    # Jini infrastructure (the persimmon.cs.ttu.edu box of Fig 2).
    lus = LookupService(host("persimmon"), name="Lookup Service")
    lus.start()
    txn_manager = TransactionManager(host("txn-host"))
    join_service(hosts["txn-host"], txn_manager.ref, net.ids.uuid(),
                 (Name("Transaction Manager"),))
    mailbox = EventMailbox(host("mailbox-host"))
    join_service(hosts["mailbox-host"], mailbox.ref, net.ids.uuid(),
                 (Name("Event Mailbox"),))
    lease_renewal = LeaseRenewalService(host("renewal-host"))
    join_service(hosts["renewal-host"], lease_renewal.ref, net.ids.uuid(),
                 (Name("Lease Renewal Service"),))
    discovery_service = LookupDiscoveryService(host("lds-host"))
    join_service(hosts["lds-host"], discovery_service.ref, net.ids.uuid(),
                 (Name("Lookup Discovery Service"),))

    # Rio provisioning: two cybernodes + monitor, as in Fig 2.
    cybernodes = []
    for index in range(2):
        node = Cybernode(host(f"cybernode-{index}"), name="Cybernode",
                         capability=QosCapability(compute_slots=4.0,
                                                  memory_mb=1024.0),
                         lease_duration=5.0)
        node.start()
        cybernodes.append(node)
    monitor = ProvisionMonitor(host("monitor-host"), name="Monitor")
    monitor.start()

    # SORCER rendezvous peer so jobs can run.
    jobber = Jobber(host("jobber-host"))
    jobber.start()

    # Four Sun SPOT temperature sensors, one ESP each.
    sensors: dict = {}
    devices: dict = {}
    for name in sensor_names:
        short = name.split("-")[0].lower()
        device = SunSpotDevice(env, short)
        probe = SunSpotTemperatureProbe(
            env, device, world, SENSOR_LOCATIONS.get(name, (0.0, 0.0)),
            rng=np.random.default_rng(rng.integers(2**32)))
        esp = ElementarySensorProvider(
            host(f"{short}-host"), name, probe,
            sample_interval=sample_interval,
            location=Location(floor="3", room="310", building="CP TTU"),
            technology="sunspot")
        esp.start()
        sensors[name] = esp
        devices[name] = device

    # One composite and one façade.
    composite = CompositeSensorProvider(host("composite-host"),
                                        "Composite-Service")
    composite.start()
    facade = SensorcerFacade(host("facade-host"))
    facade.start()
    browser = SensorBrowser(host("browser-host"))

    # Management plane: health rollups + the stock SLO set, evaluated once
    # per simulated second (reads in-process state, no network traffic).
    from ..observability.health import default_slos, health_monitor
    health = health_monitor(net)
    for slo in default_slos():
        health.engine.add(slo)

    return PaperLab(
        env=env, net=net, world=world, rng=rng, lus=lus,
        txn_manager=txn_manager, mailbox=mailbox,
        lease_renewal=lease_renewal, discovery_service=discovery_service,
        monitor=monitor, cybernodes=cybernodes, jobber=jobber,
        sensors=sensors, devices=devices, composite=composite,
        facade=facade, browser=browser, hosts=hosts, health=health)
