"""Precision-agriculture deployment — the motivating scenario of §II.2.

"...in agricultural area, where the sensors are located at different
locations on the farms for various measurements, the data collection
specialist has to collect the data from the sensors, directly visiting
those places."

Builds a farm of ``n_fields`` fields, each with ``sensors_per_field``
temperature + humidity sensors, one composite per field (the field subnet)
and one farm-level composite over the field composites — the logical
sensor network the specialist manages from the browser instead of driving
out to the fields.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim import Environment
from ..net import Host, LanLatency, Network
from ..jini import LookupService
from ..jini.entries import Location
from ..sensors import HumidityProbe, PhysicalEnvironment, TemperatureProbe
from ..sorcer import Jobber
from ..core import (
    CompositeSensorProvider,
    ElementarySensorProvider,
    SensorBrowser,
    SensorcerFacade,
)

__all__ = ["Farm", "build_farm"]

#: Field corners are spaced widely so spatial gradients matter.
FIELD_SPACING = 200.0
SENSOR_SPACING = 25.0


@dataclass
class Farm:
    env: Environment
    net: Network
    world: PhysicalEnvironment
    lus: LookupService
    facade: SensorcerFacade
    browser: SensorBrowser
    fields: dict           # field name -> list of ESPs
    field_composites: dict  # field name -> CSP
    farm_composite: CompositeSensorProvider
    locations: dict        # sensor name -> (x, y)

    def settle(self, duration: float = 6.0) -> None:
        self.env.run(until=self.env.now + duration)

    def ground_truth_field_mean(self, field_name: str, quantity: str) -> float:
        names = [esp.name for esp in self.fields[field_name]
                 if esp.probe.teds.quantity == quantity]
        return self.world.mean_over(
            quantity, [self.locations[name] for name in names], self.env.now)


def build_farm(seed: int = 7, n_fields: int = 3,
               sensors_per_field: int = 4) -> Farm:
    env = Environment()
    rng = np.random.default_rng(seed)
    net = Network(env, rng=rng, latency=LanLatency(rng))
    world = PhysicalEnvironment(seed=seed)

    lus = LookupService(Host(net, "lus-host"))
    lus.start()
    Jobber(Host(net, "jobber-host")).start()

    fields: dict = {}
    field_composites: dict = {}
    locations: dict = {}
    for f in range(n_fields):
        field_name = f"Field-{f}"
        esps = []
        for s in range(sensors_per_field):
            x = f * FIELD_SPACING + (s % 2) * SENSOR_SPACING
            y = (s // 2) * SENSOR_SPACING
            probe_cls = TemperatureProbe if s % 2 == 0 else HumidityProbe
            quantity = "temperature" if s % 2 == 0 else "humidity"
            name = f"{field_name}-{quantity}-{s}"
            probe = probe_cls(env, name.lower(), world, (x, y),
                              rng=np.random.default_rng(rng.integers(2**32)),
                              sensing_noise=0.0)
            esp = ElementarySensorProvider(
                Host(net, f"{name}-host"), name, probe,
                location=Location(building=field_name),
                technology="field-station")
            esp.start()
            esps.append(esp)
            locations[name] = (x, y)
        fields[field_name] = esps
        composite = CompositeSensorProvider(
            Host(net, f"{field_name}-csp-host"), field_name)
        composite.start()
        field_composites[field_name] = composite

    farm_composite = CompositeSensorProvider(Host(net, "farm-csp-host"),
                                             "Farm")
    farm_composite.start()
    facade = SensorcerFacade(Host(net, "facade-host"))
    facade.start()
    browser = SensorBrowser(Host(net, "browser-host"))

    return Farm(env=env, net=net, world=world, lus=lus, facade=facade,
                browser=browser, fields=fields,
                field_composites=field_composites,
                farm_composite=farm_composite, locations=locations)
