"""Canned deployments shared by tests, examples and benchmarks."""

from .farm import Farm, build_farm
from .grids import (
    SensorGrid,
    build_direct_grid,
    build_sensorcer_grid,
    grid_locations,
    probe_location,
    seed_locator_discovery,
)
from .paper_lab import SENSOR_NAMES, PaperLab, build_paper_lab

__all__ = [
    "Farm",
    "PaperLab",
    "SENSOR_NAMES",
    "SensorGrid",
    "build_direct_grid",
    "build_farm",
    "build_paper_lab",
    "build_sensorcer_grid",
    "grid_locations",
    "probe_location",
    "seed_locator_discovery",
]
