"""The paper lab under protection: admission control + open-loop tenants.

``build_load_lab`` takes the stock §VI deployment and makes it a
capacity-bounded, multi-tenant system:

* the facade gets an :class:`~repro.overload.AdmissionController` with a
  weighted-fair queue over the tenants (and optional per-tenant quotas);
  the jobber gets a plain bounded FIFO — rendezvous work has no tenant
  skew worth arbitrating;
* the composite coalesces concurrent reads (one child fan-out serves all
  overlapping ``getValue`` queries);
* elementary sensors get a configurable ``op_overhead`` so the lab has a
  *knowable* capacity (max_inflight / per-request service time) that the
  E-LOAD benchmark can push past;
* the health engine watches the overload SLO on top of the stock set.

The returned :class:`LoadLab` carries the paper lab, the controller and
an :class:`~repro.load.engine.OpenLoopEngine` ready to ``run()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net import Host
from ..observability.health import overload_slos
from ..overload import AdmissionController, QuotaRegistry, WeightedFairQueue
from ..resilience import resilience_events
from ..scenarios.paper_lab import SENSOR_NAMES, PaperLab, build_paper_lab
from .engine import OpenLoopEngine, TenantSpec

__all__ = ["LoadLab", "DEFAULT_TENANTS", "build_load_lab"]

#: Three service classes, 3:2:1 weights, ~50 req/s offered at scale 1.0.
DEFAULT_TENANTS = (
    TenantSpec("gold", rate=25.0, weight=3.0, deadline=2.0,
               targets=SENSOR_NAMES),
    TenantSpec("silver", rate=15.0, weight=2.0, deadline=2.0,
               targets=SENSOR_NAMES),
    TenantSpec("bronze", rate=10.0, weight=1.0, deadline=2.0,
               targets=SENSOR_NAMES),
)


@dataclass
class LoadLab:
    lab: PaperLab
    engine: OpenLoopEngine
    admission: AdmissionController
    tenants: tuple

    @property
    def env(self):
        return self.lab.env

    def run(self) -> dict:
        """Drive the engine to completion and return its summary."""
        proc = self.env.process(self.engine.run(), name="load-engine")
        self.env.run(until=proc)
        return self.engine.summary()


def build_load_lab(seed: int = 2009, tenants=None, duration: float = 8.0,
                   scale: float = 1.0, max_inflight: int = 4,
                   max_queue: int = 16, esp_overhead: float = 0.05,
                   quotas: Optional[QuotaRegistry] = None,
                   settle: float = 6.0, trace: Optional[dict] = None) -> LoadLab:
    """A protected paper lab plus an open-loop engine against it.

    Capacity ≈ ``max_inflight / (esp_overhead + overlay overhead)`` —
    with the defaults roughly 50-60 req/s, so ``scale`` ~1 sits near the
    knee and ``scale`` ≥ 1.5 is firmly past saturation.
    """
    tenants = tuple(tenants) if tenants is not None else DEFAULT_TENANTS
    lab = build_paper_lab(seed=seed)
    # Give requests a real service time so saturation is reachable at
    # rates the sim can sweep quickly.
    for esp in lab.sensors.values():
        esp.op_overhead = esp_overhead
    lab.composite.coalesce = True
    registry_events = resilience_events(lab.net)
    from ..observability import metrics_registry
    registry = metrics_registry(lab.net)
    fair = WeightedFairQueue(
        weights={spec.name: spec.weight for spec in tenants})
    admission = AdmissionController(
        lab.env, lab.facade.name, registry, events=registry_events,
        max_inflight=max_inflight, max_queue=max_queue,
        quotas=quotas, fair=fair)
    lab.facade.admission = admission
    # The jobber serves rendezvous jobs; bound it too so composite work
    # cannot pile up behind a saturated facade.
    lab.jobber.admission = AdmissionController(
        lab.env, lab.jobber.name, registry, events=registry_events,
        max_inflight=max_inflight * 2, max_queue=max_queue * 2)
    for slo in overload_slos():
        lab.health.engine.add(slo)
    engine_host = Host(lab.net, "load-host")
    engine = OpenLoopEngine(engine_host, tenants, seed=seed,
                            duration=duration, scale=scale,
                            facade_name=lab.facade.name, trace=trace)
    lab.settle(settle)
    return LoadLab(lab=lab, engine=engine, admission=admission,
                   tenants=tenants)
