"""Open-loop load generation — the traffic side of the overload plane.

:mod:`repro.overload` is the defence; this package is the attack: seeded
Poisson (or trace-driven) multi-tenant requestors that keep arriving no
matter how slow the system gets. Together they let E-LOAD demonstrate the
tentpole property — *graceful saturation*: past the capacity knee the
federation sheds excess load with typed rejections while goodput stays
near its peak and admitted-work latency stays bounded, instead of every
request timing out.
"""

from .curve import SWEEP_FULL, SWEEP_SMOKE, saturation_curve
from .engine import OpenLoopEngine, TenantSpec
from .scenario import DEFAULT_TENANTS, LoadLab, build_load_lab

__all__ = [
    "DEFAULT_TENANTS",
    "LoadLab",
    "OpenLoopEngine",
    "SWEEP_FULL",
    "SWEEP_SMOKE",
    "TenantSpec",
    "build_load_lab",
    "saturation_curve",
]
