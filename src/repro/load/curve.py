"""The latency-vs-offered-load curve (experiment E-LOAD).

Sweeps offered load across multiples of the default tenant mix, building
a *fresh* lab per point (no warm caches or half-drained queues leaking
between points), and reports per-point latency quantiles and goodput.
The shape to expect from a graceful system: flat latency below the knee,
then bounded latency for *admitted* work past it while rejections absorb
the excess — goodput plateaus near capacity instead of collapsing.
"""

from __future__ import annotations

from .scenario import build_load_lab

__all__ = ["SWEEP_FULL", "SWEEP_SMOKE", "saturation_curve"]

#: Offered-load multipliers: below, around and well past the knee.
SWEEP_FULL = (0.4, 0.8, 1.2, 1.6, 2.4)
SWEEP_SMOKE = (0.6, 1.2, 2.0)


def saturation_curve(seed: int = 2009, multipliers=SWEEP_FULL,
                     duration: float = 8.0, **lab_kwargs) -> dict:
    """One curve: a list of per-multiplier summary points, JSON-ready."""
    points = []
    for multiplier in multipliers:
        load_lab = build_load_lab(seed=seed, scale=float(multiplier),
                                  duration=duration, **lab_kwargs)
        summary = load_lab.run()
        total = summary["total"]
        points.append({
            "scale": float(multiplier),
            "offered": total["offered"],
            "completed": total["completed"],
            "goodput": total["goodput"],
            "rejected": total["rejected"],
            "failed": total["failed"],
            "goodput_rate": total["goodput_rate"],
            "latency": total["latency"],
        })
    return {"seed": seed, "duration": duration, "points": points}
