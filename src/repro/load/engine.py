"""Open-loop multi-tenant traffic against a SenSORCER lab.

*Open loop* is the property that matters: arrival times are drawn from a
seeded Poisson process (or a fixed trace) and **do not slow down when the
system is busy**. A closed-loop driver (issue, wait, issue again)
self-throttles and can never push a federation past saturation; real
sensor fleets, dashboards and cron-driven pollers do not wait for each
other. Under open-loop load an unprotected system's queues grow without
bound — which is exactly the regime the overload-control plane
(:mod:`repro.overload`) must turn into graceful degradation.

Determinism: each tenant's arrival gaps come from its own
:func:`~repro.util.rng.substream` (``seed / "load" / tenant``), so adding
a tenant, changing another tenant's rate, or injecting a burst never
perturbs anyone else's arrival sequence. Requests are fired as numbered
processes on the sim clock; everything downstream inherits the kernel's
tie-break discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.interfaces import FACADE
from ..observability import metrics_registry
from ..overload import rejection_marker
from ..resilience import Deadline
from ..sorcer.accessor import ServiceAccessor
from ..sorcer.context import ServiceContext
from ..sorcer.exerter import Exerter
from ..sorcer.exertion import Task
from ..snapshot.registry import register_participant
from ..sorcer.signature import Signature
from ..util.rng import substream

__all__ = ["TenantSpec", "OpenLoopEngine"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's offered load.

    ``rate`` is requests/second into the facade (before any scale or
    burst factor); ``targets`` are the sensor names it reads, round-robin.
    ``deadline`` is each request's end-to-end budget — a request that
    completes after it counts as offered and completed but not as goodput.
    """

    name: str
    rate: float
    weight: float = 1.0
    deadline: float = 2.0
    retries: int = 0
    targets: tuple = ()


class OpenLoopEngine:
    """Seeded Poisson/trace-driven requestors for a set of tenants.

    ``trace`` (optional) maps tenant name -> iterable of *absolute*
    arrival times, replacing that tenant's Poisson process — replay a
    recorded workload, or hand-craft a pathological one.
    """

    def __init__(self, host, tenants, seed: int = 0, duration: float = 8.0,
                 scale: float = 1.0, facade_name: Optional[str] = None,
                 trace: Optional[dict] = None, drain_poll: float = 0.25):
        self.host = host
        self.env = host.env
        self.tenants = tuple(tenants)
        if not self.tenants:
            raise ValueError("need at least one tenant")
        self.seed = int(seed)
        self.duration = float(duration)
        self.scale = float(scale)
        self.facade_name = facade_name
        self.trace = dict(trace or {})
        self.drain_poll = float(drain_poll)
        #: The facade lookup is identical for every request — cache it so
        #: the LUS is not itself an (unmetered) overload victim.
        self.exerter = Exerter(host, ServiceAccessor(host, cache_ttl=5.0))
        #: tenant -> (factor, until): a chaos-injected offered-load spike.
        self._bursts: dict[str, tuple] = {}
        self.inflight = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        names = [spec.name for spec in self.tenants]
        self._offered = {n: 0 for n in names}
        self._completed = {n: 0 for n in names}
        self._goodput = {n: 0 for n in names}
        self._failed = {n: 0 for n in names}
        self._rejected: dict[str, dict] = {n: {} for n in names}
        registry = metrics_registry(host.network)
        self._m_offered = {n: registry.counter("load.offered", tenant=n)
                           for n in names}
        self._m_goodput = {n: registry.counter("load.goodput", tenant=n)
                           for n in names}
        self._hist = {n: registry.histogram("load.latency", tenant=n)
                      for n in names}
        self._hist_all = registry.histogram("load.latency", tenant="_total")
        register_participant(self.env, "load.engine", self.checkpoint_state)

    def checkpoint_state(self) -> dict:
        """Snapshot section: per-tenant counters, bursts, open-loop gate."""
        return {
            "bursts": {tenant: list(burst) for tenant, burst
                       in sorted(self._bursts.items())},
            "completed": dict(sorted(self._completed.items())),
            "failed": dict(sorted(self._failed.items())),
            "finished_at": self.finished_at,
            "goodput": dict(sorted(self._goodput.items())),
            "inflight": self.inflight,
            "offered": dict(sorted(self._offered.items())),
            "rejected": {tenant: dict(sorted(reasons.items()))
                         for tenant, reasons
                         in sorted(self._rejected.items())},
            "started_at": self.started_at,
        }

    # -- chaos hook -------------------------------------------------------------

    def burst(self, tenant: str, factor: float, until: float) -> None:
        """Multiply ``tenant``'s offered rate by ``factor`` until sim time
        ``until`` (the ``tenant-burst`` chaos fault). Overlapping bursts
        compose by worst case: the larger factor and the later expiry."""
        factor = max(1.0, float(factor))
        until = float(until)
        current = self._bursts.get(tenant)
        if current is not None and self.env.now < current[1]:
            factor = max(factor, current[0])
            until = max(until, current[1])
        self._bursts[tenant] = (factor, until)

    def burst_factor(self, tenant: str) -> float:
        entry = self._bursts.get(tenant)
        if entry is None or self.env.now >= entry[1]:
            return 1.0
        return entry[0]

    # -- traffic ---------------------------------------------------------------

    def _request(self, spec: TenantSpec, index: int):
        target = spec.targets[index % len(spec.targets)]
        t0 = self.env.now
        ctx = ServiceContext(f"load-{spec.name}-{index}")
        ctx.put_in_value("arg/name", target)
        task = Task(f"load-{spec.name}-{index}",
                    Signature(FACADE, "getValue",
                              provider_name=self.facade_name),
                    ctx, principal=spec.name)
        task.control.retries = spec.retries
        task.control.deadline = Deadline.after(t0, spec.deadline)
        task.control.provider_wait = min(1.0, spec.deadline)
        try:
            result = yield self.env.process(self.exerter.exert(task))
        finally:
            self.inflight -= 1
        elapsed = self.env.now - t0
        name = spec.name
        if result.is_failed:
            marker = rejection_marker(result.context)
            if marker is not None:
                reason = marker.get("reason", "?")
                by_reason = self._rejected[name]
                by_reason[reason] = by_reason.get(reason, 0) + 1
            else:
                self._failed[name] += 1
            return
        self._completed[name] += 1
        self._hist[name].observe(elapsed)
        self._hist_all.observe(elapsed)
        if elapsed <= spec.deadline:
            self._goodput[name] += 1
            self._m_goodput[name].inc()

    def _arrivals(self, spec: TenantSpec):
        rng = substream(self.seed, "load", spec.name)
        end = self.started_at + self.duration
        trace = self.trace.get(spec.name)
        if trace is not None:
            times = iter(sorted(float(t) for t in trace))
        index = 0
        while True:
            if trace is not None:
                at = next(times, None)
                if at is None or at >= end:
                    break
                gap = max(0.0, at - self.env.now)
            else:
                rate = spec.rate * self.scale * self.burst_factor(spec.name)
                if rate <= 0:
                    break
                gap = float(rng.exponential(1.0 / rate))
            yield self.env.timeout(gap)
            if self.env.now >= end:
                break
            self._offered[spec.name] += 1
            self._m_offered[spec.name].inc()
            self.inflight += 1
            self.env.process(self._request(spec, index),
                             name=f"load:{spec.name}:{index}")
            index += 1

    def run(self):
        """Drive the full campaign (a generator — run as a process):
        start every tenant's arrival process, wait for all arrivals to
        stop, then drain the in-flight tail."""
        self.started_at = self.env.now
        procs = [self.env.process(self._arrivals(spec),
                                  name=f"load-arrivals:{spec.name}")
                 for spec in self.tenants]
        yield self.env.all_of(procs)
        while self.inflight > 0:
            yield self.env.timeout(self.drain_poll)
        self.finished_at = self.env.now

    # -- results ---------------------------------------------------------------

    def _quantiles(self, hist) -> dict:
        out = {}
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            value = hist.quantile_interpolated(q)
            out[label] = round(value, 6) if value is not None else None
        return out

    def summary(self) -> dict:
        """JSON-ready accounting; every request is exactly one of
        completed / rejected / failed once the engine has drained."""
        tenants = {}
        total = {"offered": 0, "completed": 0, "goodput": 0, "failed": 0,
                 "rejected": 0}
        for spec in self.tenants:
            name = spec.name
            rejected = dict(sorted(self._rejected[name].items()))
            entry = {
                "offered": self._offered[name],
                "completed": self._completed[name],
                "goodput": self._goodput[name],
                "failed": self._failed[name],
                "rejected": rejected,
                "rejected_total": sum(rejected.values()),
                "rate": round(spec.rate * self.scale, 6),
                "weight": spec.weight,
                "deadline": spec.deadline,
                "latency": self._quantiles(self._hist[name]),
            }
            tenants[name] = entry
            total["offered"] += entry["offered"]
            total["completed"] += entry["completed"]
            total["goodput"] += entry["goodput"]
            total["failed"] += entry["failed"]
            total["rejected"] += entry["rejected_total"]
        total["latency"] = self._quantiles(self._hist_all)
        total["goodput_rate"] = (
            round(total["goodput"] / total["offered"], 6)
            if total["offered"] else None)
        return {
            "seed": self.seed,
            "scale": self.scale,
            "duration": self.duration,
            "inflight": self.inflight,
            "deadline_max": max(spec.deadline for spec in self.tenants),
            "tenants": dict(sorted(tenants.items())),
            "total": total,
        }
