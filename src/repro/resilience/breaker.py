"""Circuit breakers — skip dead providers in O(1) instead of O(timeout).

Without a breaker, every exertion attempt against a partitioned provider
burns a full ``invocation_timeout`` before failing over; with many
candidates behind the same partition a single query stalls for the *sum*
of timeouts. A per-provider breaker remembers recent failures:

* **closed** — calls flow; ``failure_threshold`` consecutive failures open it;
* **open** — calls are refused instantly until ``reset_timeout`` elapses;
* **half-open** — up to ``half_open_probes`` trial calls are let through;
  one success closes the breaker, one failure re-opens it.

Providers are keyed by service id (stable across the provider's life and
what the exerter's candidate items carry).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional

__all__ = ["BreakerState", "CircuitBreaker", "BreakerRegistry", "CircuitOpenError"]


class CircuitOpenError(Exception):
    """Every candidate provider is currently open-circuit."""


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One provider's failure memory (closed → open → half-open)."""

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 10.0,
                 half_open_probes: int = 1,
                 on_transition: Optional[Callable] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = max(1, half_open_probes)
        self.on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._last_probe_at: Optional[float] = None
        #: Counters for observability.
        self.opens = 0
        self.refusals = 0

    # -- state machine --------------------------------------------------------

    def _transition(self, state: BreakerState, now: float) -> None:
        if state is self.state:
            return
        old, self.state = self.state, state
        if state is BreakerState.OPEN:
            self.opened_at = now
            self.opens += 1
        if state is not BreakerState.HALF_OPEN:
            self._probes_in_flight = 0
        if self.on_transition is not None:
            self.on_transition(old, state, now)

    def try_acquire(self, now: float) -> bool:
        """May a call be issued now? Half-open acquisition counts a probe;
        pair every ``True`` with a later ``record_success``/``record_failure``."""
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and now - self.opened_at >= self.reset_timeout:
                self._transition(BreakerState.HALF_OPEN, now)
            else:
                self.refusals += 1
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_in_flight >= self.half_open_probes:
                # Stale-probe reclaim: a probe whose caller never recorded
                # an outcome (crashed mid-call, outcome path skipped) must
                # not pin the slot forever. After a full reset_timeout of
                # silence the slot is taken back.
                if (self._last_probe_at is not None
                        and now - self._last_probe_at >= self.reset_timeout):
                    self._probes_in_flight = 0
                else:
                    self.refusals += 1
                    return False
            self._probes_in_flight += 1
            self._last_probe_at = now
        return True

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, now)
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._transition(BreakerState.OPEN, now)


class BreakerRegistry:
    """Per-provider breakers sharing one configuration.

    ``enabled=False`` turns the registry into a pass-through (for ablation
    benchmarks: breaker-on vs breaker-off under the same fault script).
    Transitions are reported to ``events`` (a
    :class:`~repro.resilience.events.ResilienceEvents`) when attached.
    """

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 10.0,
                 half_open_probes: int = 1, enabled: bool = True,
                 events=None):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.enabled = enabled
        self.events = events
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker_for(self, key: str) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            def report(old, new, now, _key=key):
                if self.events is not None:
                    self.events.emit(f"breaker_{new.value}", key=_key,
                                     was=old.value)
            breaker = CircuitBreaker(self.failure_threshold,
                                     self.reset_timeout,
                                     self.half_open_probes,
                                     on_transition=report)
            self._breakers[key] = breaker
        return breaker

    def state_of(self, key: str) -> BreakerState:
        breaker = self._breakers.get(key)
        return breaker.state if breaker is not None else BreakerState.CLOSED

    def try_acquire(self, key: str, now: float) -> bool:
        if not self.enabled:
            return True
        return self.breaker_for(key).try_acquire(now)

    def record_success(self, key: str, now: float) -> None:
        if self.enabled:
            self.breaker_for(key).record_success(now)

    def record_failure(self, key: str, now: float) -> None:
        if self.enabled:
            self.breaker_for(key).record_failure(now)

    def snapshot(self) -> dict:
        return {key: breaker.state.value
                for key, breaker in sorted(self._breakers.items())}

    def states(self) -> dict:
        """Detailed per-breaker view for the management plane."""
        return {key: {"state": breaker.state.value,
                      "consecutive_failures": breaker.consecutive_failures,
                      "opens": breaker.opens,
                      "refusals": breaker.refusals}
                for key, breaker in sorted(self._breakers.items())}

    def checkpoint_state(self) -> dict:
        """Snapshot section: full per-breaker timing state (not just the
        management-plane view — ``opened_at`` and probe slots decide how
        a restored breaker behaves at the reset-timeout edge)."""
        return {key: {
            "consecutive_failures": breaker.consecutive_failures,
            "opened_at": breaker.opened_at,
            "opens": breaker.opens,
            "probes_in_flight": breaker._probes_in_flight,
            "refusals": breaker.refusals,
            "state": breaker.state.value,
        } for key, breaker in sorted(self._breakers.items())}
