"""Deadlines — end-to-end time budgets for exertions.

Without a deadline, a nested CSP→ESP call tree compounds timeouts: every
hop waits its own ``provider_wait`` plus ``retries × invocation_timeout``,
so the caller's worst case multiplies with depth. A :class:`Deadline` is an
*absolute* expiry on the shared sim clock; each hop clamps its local waits
to the remaining budget and forwards the same expiry, so the end-to-end
bound is the caller's — never more.

The expiry travels two ways: requestor-side in
:class:`~repro.sorcer.exertion.ControlContext.deadline`, and across the
provider boundary as a plain float at ``DEADLINE_PATH`` in the service
context (operations only see the context, mirroring how the CSP's cycle
guard travels at ``composite/visited``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DEADLINE_PATH", "Deadline", "DeadlineExceeded"]

#: Service-context path carrying the absolute expiry across provider hops.
DEADLINE_PATH = "resilience/deadline"


class DeadlineExceeded(Exception):
    """The exertion's time budget ran out before a result was produced."""


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry time on the simulation clock."""

    expires_at: float

    @classmethod
    def after(cls, now: float, budget: float) -> "Deadline":
        """A deadline ``budget`` seconds from ``now``."""
        return cls(now + max(0.0, budget))

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def clamp(self, timeout: float, now: float) -> float:
        """The smaller of ``timeout`` and the remaining budget."""
        return min(timeout, self.remaining(now))

    def check(self, now: float, what: str = "exertion") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired(now):
            raise DeadlineExceeded(
                f"{what} deadline expired {now - self.expires_at:.3f}s ago "
                f"(expires_at={self.expires_at:.3f})")
