"""Retry policies — exponential backoff with deterministic jitter.

Jitter keeps a fleet of requestors from retrying in lock-step (the thundering
herd a synchronized backoff produces), but a wall-clock or global-RNG jitter
would make simulation traces irreproducible. Delays are therefore drawn from
a caller-supplied :func:`numpy.random.Generator` seeded stably (see
:func:`backoff_rng`), so identical scenario seeds replay identical delays.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["RetryPolicy", "backoff_rng"]


def backoff_rng(name: str, salt: int = 0) -> np.random.Generator:
    """A stable RNG for jitter, derived from a name (host name, usually).

    Independent of construction order and of every other RNG in the run, so
    adding a retry somewhere cannot perturb unrelated random streams.
    """
    return np.random.default_rng([zlib.crc32(name.encode("utf-8")), salt, 0x5EED])


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base_delay * multiplier**attempt``, capped.

    ``jitter`` is the fraction of each delay that is randomized *downward*
    (a "decorrelated shave"): with jitter 0.5 the actual delay lands
    uniformly in ``[0.5 * d, d]``. Shaving down rather than up keeps the
    policy's ``max_delay`` an honest upper bound for deadline math.
    """

    base_delay: float = 0.2
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delay(self, attempt: int,
              rng: Optional[np.random.Generator] = None) -> float:
        """Delay before retry number ``attempt`` (0-based: the wait after
        the first failure is ``delay(0)``)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** max(0, attempt))
        if self.jitter <= 0.0 or rng is None or raw <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * float(rng.random()))

    def delay_before_retry(self, attempt: int,
                           rng: Optional[np.random.Generator] = None,
                           deadline=None, now: float = 0.0) -> Optional[float]:
        """The backoff to sleep before retry ``attempt`` — or ``None`` when
        the retry is pointless because the deadline would expire during (or
        immediately after) the sleep.

        A retry scheduled past its own deadline burns a provider slot on
        work whose answer nobody can use; under overload that wasted slot
        is amplification. Checking *before* sleeping (rather than clamping
        the sleep to the remaining budget) abandons such retries outright.

        The jitter draw happens whether or not the retry is abandoned, so
        the RNG stream stays aligned with runs where the deadline was
        looser — abandoning a retry must not reshuffle later delays.
        """
        delay = self.delay(attempt, rng)
        if deadline is not None and deadline.remaining(now) <= delay:
            return None
        return delay

    def total_budget(self, attempts: int) -> float:
        """Upper bound on the summed backoff across ``attempts`` retries."""
        return sum(min(self.max_delay, self.base_delay * self.multiplier ** a)
                   for a in range(max(0, attempts)))
