"""Retry budgets — the client-side cap on retry amplification.

Backoff spaces retries out in *time*; a retry budget caps them in
*volume*. Without one, N requestors each retrying R times turn one
provider brownout into ``N × (R+1)`` offered load — the classic retry
storm that converts an overload into an outage. The budget is a token
bucket refilled by *successes*: each success deposits ``deposit_ratio``
tokens, each retry spends one. In steady state retries are thus bounded
to a fraction of successful traffic; when nothing succeeds, the bucket
drains and retries stop entirely instead of piling on.

One budget is shared per host (all exerters on a requestor host draw
from it), mirroring how circuit breakers attach via
:func:`~repro.resilience.breaker.breaker_registry`.
"""

from __future__ import annotations

from ..snapshot.registry import register_participant

__all__ = ["RetryBudget", "retry_budget_of"]


class RetryBudget:
    """Token bucket refilled by successes, spent by retries."""

    __slots__ = ("tokens", "deposit_ratio", "cap", "spent", "denied")

    def __init__(self, initial: float = 50.0, deposit_ratio: float = 0.1,
                 cap: float = 100.0):
        if initial < 0 or cap <= 0 or not 0.0 <= deposit_ratio <= 1.0:
            raise ValueError("need initial >= 0, cap > 0, ratio in [0, 1]")
        self.tokens = min(float(initial), float(cap))
        self.deposit_ratio = float(deposit_ratio)
        self.cap = float(cap)
        self.spent = 0
        self.denied = 0

    def deposit(self) -> None:
        """Record one success; earns ``deposit_ratio`` of a retry token."""
        self.tokens = min(self.cap, self.tokens + self.deposit_ratio)

    def try_spend(self) -> bool:
        """Take one retry token; ``False`` means the retry must be dropped."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False

    def snapshot(self) -> dict:
        return {"tokens": round(self.tokens, 6), "cap": self.cap,
                "deposit_ratio": self.deposit_ratio,
                "spent": self.spent, "denied": self.denied}


def retry_budget_of(host) -> RetryBudget:
    """The host's shared retry budget (created on first use)."""
    budget = getattr(host, "_retry_budget", None)
    if budget is None:
        budget = RetryBudget()
        host._retry_budget = budget
        # Tests hand in bare host stand-ins; only a host on a simulated
        # network joins the snapshot.
        env = getattr(host, "env", None)
        if env is not None:
            register_participant(env, f"resilience.budget.{host.name}",
                                 budget.snapshot)
    return budget
