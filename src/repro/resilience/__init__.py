"""Resilience layer — the failure-handling policies the paper leaves implicit.

The paper's availability claim ("a request can be passed on to the
equivalent available service provider", §IV.D) needs more than failover to
hold up under churn: retries must back off instead of hammering, a caller's
patience must be an explicit end-to-end budget rather than a product of
nested timeouts, dead providers must be skipped in O(1) instead of burning
a full timeout per attempt, and a composite should be able to keep
answering with bounded-stale data while a child is partitioned away.

Components (each usable on its own):

* :class:`RetryPolicy` — exponential backoff with *deterministic* seeded
  jitter (all delays come from the sim clock + a stable per-host RNG, so
  identical seeds replay identical traces);
* :class:`Deadline` — an absolute sim-time expiry carried in
  :class:`~repro.sorcer.exertion.ControlContext` and propagated through
  nested CSP→ESP hops via the service context (``DEADLINE_PATH``);
* :class:`CircuitBreaker` / :class:`BreakerRegistry` — per-provider
  closed → open → half-open breakers consulted by the exerter;
* :class:`ResilienceEvents` — retry/breaker/stale/deadline events recorded
  through :class:`~repro.metrics.Recorder` for benchmarks and the browser.
"""

from .breaker import BreakerRegistry, BreakerState, CircuitBreaker, CircuitOpenError
from .budget import RetryBudget, retry_budget_of
from .deadline import DEADLINE_PATH, Deadline, DeadlineExceeded
from .events import ResilienceEvents, resilience_events
from .policy import RetryPolicy, backoff_rng

__all__ = [
    "BreakerRegistry",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEADLINE_PATH",
    "Deadline",
    "DeadlineExceeded",
    "ResilienceEvents",
    "RetryBudget",
    "RetryPolicy",
    "backoff_rng",
    "resilience_events",
    "retry_budget_of",
]
