"""Resilience event stream — what the failure machinery did and when.

Every resilience decision (retry scheduled, breaker opened/half-open/closed,
stale substitution, deadline exceeded, lease renewal retried) is emitted
here. Counters land in the run's shared
:class:`~repro.observability.MetricsRegistry` (``resilience.<kind>``);
the timestamped event trace stays in a :class:`~repro.metrics.Recorder`
so whole traces still compare with plain ``==``. Benchmarks assert on the
counters; determinism tests compare whole traces; the browser can render
the trace as a timeline.

One stream exists per :class:`~repro.net.network.Network` (lazily created,
like per-host RPC endpoints) so every component in a run — exerters on any
host, lease renewal services, CSPs — shares a single ordered trace.
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..metrics.recorder import Recorder
from ..observability.registry import MetricsRegistry
from ..sim import Environment
from ..snapshot.registry import register_participant

__all__ = ["ResilienceEvents", "resilience_events"]


class ResilienceEvents:
    """Clock-stamped emitter over a :class:`Recorder` + metrics registry."""

    def __init__(self, env: Environment, recorder: Optional[Recorder] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.env = env
        self.recorder = recorder if recorder is not None else Recorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._listeners: list = []
        # emit() runs per kernel event on fault-heavy paths; resolving the
        # counter through the registry costs an f-string plus two dict
        # lookups each time, so handles are memoized per kind.
        self._counters: dict = {}

    def subscribe(self, listener) -> None:
        """Call ``listener(kind, fields)`` synchronously on every emit —
        this is how the health model hears about lease expiries without
        the jini layer knowing the health model exists."""
        self._listeners.append(listener)

    def emit(self, kind: str, **fields) -> None:
        counter = self._counters.get(kind)
        if counter is None:
            counter = self._counters[kind] = self.metrics.counter(
                f"resilience.{kind}")
        counter.inc()
        self.recorder.event(kind, self.env.now, **fields)
        for listener in self._listeners:
            listener(kind, fields)

    def count(self, kind: str) -> float:
        return self.metrics.value(f"resilience.{kind}")

    @property
    def trace(self) -> list:
        """The full ordered event trace: ``(time, kind, fields)`` tuples."""
        return self.recorder.events()


def resilience_events(network) -> ResilienceEvents:
    """The network's shared resilience event stream (created on first use),
    counting into the network's shared metrics registry."""
    events = getattr(network, "_resilience_events", None)
    if events is None:
        from ..observability.registry import metrics_registry
        events = ResilienceEvents(network.env,
                                  metrics=metrics_registry(network))
        network._resilience_events = events

        def _events_state() -> dict:
            # Counters already live in the "metrics" section; pin the
            # ordered trace itself by length + checksum.
            trace = events.trace
            return {"count": len(trace),
                    "crc32": zlib.crc32(repr(trace).encode("utf-8"))}

        register_participant(network.env, "resilience.events", _events_state)
    return events
