"""Small shared utilities (identifier generation)."""

from .ids import IdSource

__all__ = ["IdSource"]
