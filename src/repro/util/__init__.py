"""Small shared utilities (identifier generation, crash-safe writes)."""

from .atomicio import AtomicFile, atomic_write_bytes, atomic_write_text
from .ids import IdSource

__all__ = ["AtomicFile", "IdSource", "atomic_write_bytes",
           "atomic_write_text"]
