"""Named RNG substreams — one scenario seed, many independent streams.

Every source of randomness in a run (probe fault hazards, chaos plans,
latency jitter added by injectors, ...) must be *compositional*: creating a
new stream, or drawing more from one, cannot perturb the sequence any other
stream produces. A single shared generator breaks that the moment a new
consumer is added; per-stream ad-hoc seeds (``default_rng(0)`` here,
``default_rng(seed + 7)`` there) collide silently.

:func:`substream` is the sanctioned scheme: a generator derived from the
scenario seed plus a *path* of names, hashed into independent entropy
(``substream(2009, "chaos", "plan")`` and ``substream(2009,
"sensors.faults", "Neem-Sensor")`` never share state, by construction).
The determinism lint's DET005 rule flags RNG construction outside this
helper (and :func:`repro.resilience.policy.backoff_rng`, its older
name-keyed sibling).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["substream", "stream_hash"]

#: Domain-separation constant so ``substream(s)`` differs from a plain
#: ``default_rng(s)``.
_DOMAIN = 0x5EED5_0B57

_MASK = 0xFFFFFFFF


def stream_hash(*names) -> int:
    """Stable 32-bit hash of a name path (order-sensitive)."""
    digest = 0
    for name in names:
        digest = zlib.crc32(str(name).encode("utf-8"), digest)
    return digest & _MASK


def substream(seed: int, *names) -> np.random.Generator:
    """An independent generator for stream ``names`` under ``seed``.

    The entropy is ``[seed, DOMAIN, crc32(name_0), crc32(name_0/name_1),
    ...]`` — every distinct name path gets its own stream, and two calls
    with the same arguments return generators producing identical
    sequences (streams are values, not shared state).
    """
    entropy = [int(seed) & 0xFFFFFFFFFFFFFFFF, _DOMAIN]
    digest = 0
    for name in names:
        digest = zlib.crc32(str(name).encode("utf-8"), digest)
        entropy.append(digest & _MASK)
    return np.random.default_rng(entropy)
