"""Crash-safe file writes — tmp + fsync + rename, shared by every artifact.

A snapshot, a lint baseline or a benchmark report that a crash can tear
is worse than no file at all: the reader sees syntactically broken (or,
nastier, syntactically valid but truncated) content. Every durable
artifact the CLI writes goes through this module instead of a bare
``open``/``write_text``:

1. the content is written to ``<name>.tmp.<pid>`` in the destination
   directory (same filesystem, so the rename below is atomic);
2. the file descriptor is flushed and ``fsync``-ed (the data is on disk,
   not in the page cache);
3. the temp file is atomically renamed over the destination;
4. the containing directory is fsync-ed where the platform allows it, so
   the rename itself survives a power cut.

A crash at any point leaves either the old file or the new file — never
a prefix of the new one. The stray ``.tmp.<pid>`` from a mid-write crash
is inert (nothing ever reads temp names).

:class:`AtomicFile` is the streaming variant with an explicit
``close()``/``abort()`` protocol; the ``repro lint`` RES006 rule checks
that handles of this class are released on every path, Interrupt edges
included.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

__all__ = ["AtomicFile", "atomic_write_bytes", "atomic_write_text"]


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry after a rename (best effort: some
    platforms/filesystems refuse O_RDONLY directory fds)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


class AtomicFile:
    """A write handle whose content appears atomically on ``close()``.

    Writes accumulate in a same-directory temp file; ``close()`` fsyncs
    and renames it over ``path``; ``abort()`` (or ``close(commit=False)``)
    removes the temp file and leaves any existing ``path`` untouched.
    Usable as a context manager: the ``with`` body committing normally
    publishes the file, an exception aborts it.
    """

    def __init__(self, path: Union[str, Path], mode: str = "w",
                 encoding: Optional[str] = "utf-8"):
        if mode not in ("w", "wb"):
            raise ValueError(f"AtomicFile mode must be 'w' or 'wb', got {mode!r}")
        self.path = Path(path)
        self._tmp = self.path.with_name(
            f"{self.path.name}.tmp.{os.getpid()}")
        kwargs = {} if mode == "wb" else {"encoding": encoding}
        self._fh = open(self._tmp, mode, **kwargs)
        self._done = False

    def write(self, data) -> int:
        return self._fh.write(data)

    def close(self, commit: bool = True) -> None:
        """Publish (default) or discard the accumulated content."""
        if self._done:
            return
        self._done = True
        if commit:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            os.replace(self._tmp, self.path)
            _fsync_dir(self.path.parent)
        else:
            self._fh.close()
            try:
                os.unlink(self._tmp)
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def abort(self) -> None:
        """Discard: remove the temp file, leave the destination untouched."""
        self.close(commit=False)

    def __enter__(self) -> "AtomicFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(commit=exc_type is None)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` crash-safely (tmp + fsync + rename)."""
    handle = AtomicFile(path, mode="wb")
    try:
        handle.write(data)
    except BaseException:
        handle.abort()
        raise
    handle.close()


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` crash-safely (tmp + fsync + rename)."""
    atomic_write_bytes(path, text.encode(encoding))
