"""Deterministic service/lease/event identifiers.

Jini identifies services by 128-bit ``ServiceID``. For reproducibility we
derive ids from a per-network counter plus a seeded generator, formatted
like the uuids in the paper's Fig 2 (e.g.
``267c67a0-dd67-4b95-beb0-e6763e117b03``)."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["IdSource"]


class IdSource:
    """Produces unique, reproducible identifier strings."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng if rng is not None else np.random.default_rng(0xCAFE)
        # A plain int rather than itertools.count: the snapshot capture
        # reads the position without consuming a value.
        self._next = 1

    def _take(self) -> int:
        seq = self._next
        self._next += 1
        return seq

    @property
    def issued(self) -> int:
        """How many identifiers have been handed out so far."""
        return self._next - 1

    def uuid(self) -> str:
        """A uuid-shaped string: random hex plus an embedded sequence number."""
        seq = self._take()
        words = self._rng.integers(0, 2**32, size=3, dtype=np.uint64)
        return (f"{int(words[0]):08x}-{int(words[1]) & 0xFFFF:04x}-"
                f"4{(int(words[1]) >> 16) & 0xFFF:03x}-"
                f"{0x8000 | (int(words[2]) & 0x3FFF):04x}-{seq:012x}")

    def sequence(self) -> int:
        """A plain increasing integer (lease ids, event ids)."""
        return self._take()
