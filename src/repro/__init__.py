"""SenSORCER reproduction — a framework for managing sensor-federated
networks (Bhosale & Sobolewski, ICPP Workshops 2009) rebuilt in Python on a
deterministic discrete-event simulation substrate.

Layers (bottom up):

* :mod:`repro.sim` — discrete-event kernel;
* :mod:`repro.net` — simulated network, multicast, RPC, wire accounting;
* :mod:`repro.jini` — discovery/join, lookup, leases, events, transactions;
* :mod:`repro.rio` — cybernodes, provision monitor, QoS, selection, SLA;
* :mod:`repro.sorcer` — exertions, contexts, signatures, Jobber/Spacer,
  exertion space;
* :mod:`repro.expr` — the compute-expression language (Groovy substitute);
* :mod:`repro.sensors` — environment model, probes, Sun SPOT, faults;
* :mod:`repro.resilience` — retry/backoff policies, deadlines, circuit
  breakers and the resilience event stream;
* :mod:`repro.core` — SenSORCER proper: ESP, CSP, façade, browser,
  network manager, provisioner;
* :mod:`repro.baselines` — direct-IP collection and TCI/SSP/ASP;
* :mod:`repro.scenarios` — canned deployments (the paper-lab of Fig 2);
* :mod:`repro.metrics` — experiment recording and tables;
* :mod:`repro.chaos` — seeded fault campaigns, end-to-end invariants and
  failure-schedule shrinking over all of the above.

Quick start::

    from repro.scenarios import build_paper_lab

    lab = build_paper_lab(seed=2009)
    lab.settle(6.0)

    def experiment():
        yield from lab.browser.compose_service(
            "Composite-Service", ["Neem-Sensor", "Jade-Sensor"])
        yield from lab.browser.add_expression("Composite-Service", "(a+b)/2")
        value = yield from lab.browser.get_value("Composite-Service")
        return value

    print(lab.env.run(until=lab.env.process(experiment())))
"""

__version__ = "0.1.0"

import importlib

#: Re-exported subpackages, resolved lazily (PEP 562). Laziness matters:
#: the static analysis surface (``repro lint``, :mod:`repro.analysis`) is
#: stdlib-only and must import in environments without numpy/scenario
#: dependencies installed.
_SUBPACKAGES = frozenset({
    "analysis",
    "baselines",
    "chaos",
    "core",
    "expr",
    "jini",
    "metrics",
    "net",
    "observability",
    "resilience",
    "rio",
    "scenarios",
    "sensors",
    "sim",
    "snapshot",
    "sorcer",
})

__all__ = ["__version__", *sorted(_SUBPACKAGES)]


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _SUBPACKAGES)
